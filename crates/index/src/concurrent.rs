//! Baseline: a traditional concurrent B+ tree with node splits
//! (paper §VI-A).
//!
//! The paper compares the template tree against "a traditional concurrent
//! B+ tree implemented with exactly the same data structures … the only
//! difference is that it may split nodes during insertions and follows a
//! widely adopted concurrency protocol [Bayer & Schkolnick 1977]". This
//! module implements that baseline: pessimistic latch crabbing, where an
//! insert write-latches the path from the root and releases ancestors as
//! soon as the current node is *safe* (non-full), so cascading splits always
//! hold every latch they need.
//!
//! Split time is accounted separately in [`IndexStats`] — it is the
//! dominant term of Figure 7(b)'s breakdown for this tree.

use crate::stats::{IndexStats, StatsSnapshot};
use crate::traits::TupleIndex;
use parking_lot::lock_api::ArcRwLockWriteGuard;
use parking_lot::{Mutex, RawRwLock, RwLock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use waterwheel_core::{Key, KeyInterval, TimeInterval, Tuple};

type NodeRef = Arc<RwLock<Node>>;
type WriteGuard = ArcRwLockWriteGuard<RawRwLock, Node>;

enum Node {
    Inner {
        /// Separator keys; child `i` holds keys `< keys[i]`, child `i+1`
        /// keys `≥ keys[i]`.
        keys: Vec<Key>,
        children: Vec<NodeRef>,
    },
    Leaf {
        /// Entries sorted by `(key, ts)`.
        entries: Vec<Tuple>,
        /// Right sibling, for range scans.
        next: Option<NodeRef>,
    },
}

impl Node {
    fn is_full(&self, fanout: usize, leaf_capacity: usize) -> bool {
        match self {
            Node::Inner { children, .. } => children.len() >= fanout,
            Node::Leaf { entries, .. } => entries.len() >= leaf_capacity,
        }
    }
}

/// A traditional concurrent B+ tree with latch-crabbing inserts.
pub struct ConcurrentBTree {
    root: Mutex<NodeRef>,
    fanout: usize,
    leaf_capacity: usize,
    count: AtomicUsize,
    stats: Arc<IndexStats>,
}

impl ConcurrentBTree {
    /// Creates an empty tree. `fanout` bounds inner-node children,
    /// `leaf_capacity` bounds entries per leaf; both must be ≥ 2.
    pub fn new(fanout: usize, leaf_capacity: usize) -> Self {
        assert!(fanout >= 2 && leaf_capacity >= 2);
        Self {
            root: Mutex::new(Arc::new(RwLock::new(Node::Leaf {
                entries: Vec::new(),
                next: None,
            }))),
            fanout,
            leaf_capacity,
            count: AtomicUsize::new(0),
            stats: Arc::new(IndexStats::default()),
        }
    }

    /// Splits the full node behind `guard`, returning the separator key and
    /// the new right sibling. The caller must hold the parent latch (or the
    /// root lock) — guaranteed by the crabbing protocol.
    fn split(&self, guard: &mut WriteGuard) -> (Key, NodeRef) {
        let t0 = Instant::now();
        let (sep, right) = match &mut **guard {
            Node::Leaf { entries, next } => {
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].key;
                let right = Arc::new(RwLock::new(Node::Leaf {
                    entries: right_entries,
                    next: next.take(),
                }));
                *next = Some(Arc::clone(&right));
                (sep, right)
            }
            Node::Inner { keys, children } => {
                let mid = children.len() / 2;
                // keys[mid - 1] moves up as the separator.
                let right_children = children.split_off(mid);
                let mut right_keys = keys.split_off(mid - 1);
                let sep = right_keys.remove(0);
                debug_assert_eq!(right_keys.len() + 1, right_children.len());
                let right = Arc::new(RwLock::new(Node::Inner {
                    keys: right_keys,
                    children: right_children,
                }));
                (sep, right)
            }
        };
        self.stats.add(&self.stats.split_ns, t0.elapsed());
        self.stats.splits.fetch_add(1, Ordering::Relaxed);
        (sep, right)
    }

    /// Descends with write latches, releasing ancestors at safe nodes, and
    /// inserts the tuple, splitting on the way back as needed.
    fn insert_crabbing(&self, tuple: Tuple) {
        // The root pointer lock is the topmost "latch": held until the root
        // is known safe so a root split can swap the pointer.
        let mut root_ptr = Some(self.root.lock());
        let root = Arc::clone(root_ptr.as_ref().unwrap());
        let mut path: Vec<(WriteGuard, usize)> = Vec::new();
        let mut current = root.write_arc();

        if !current.is_full(self.fanout, self.leaf_capacity) {
            root_ptr = None; // root safe: release the pointer lock
        }

        // Descend to the leaf.
        #[allow(clippy::while_let_loop)]
        loop {
            let slot = match &*current {
                Node::Inner { keys, .. } => keys.partition_point(|&s| s <= tuple.key),
                Node::Leaf { .. } => break,
            };
            let child = match &*current {
                Node::Inner { children, .. } => Arc::clone(&children[slot]),
                Node::Leaf { .. } => unreachable!(),
            };
            let child_guard = child.write_arc();
            if child_guard.is_full(self.fanout, self.leaf_capacity) {
                // Unsafe child: its split may propagate here, keep the latch.
                path.push((current, slot));
            } else {
                // Safe child: no split can propagate past it — release every
                // ancestor latch (and the root-pointer lock).
                path.clear();
                drop(current);
                root_ptr = None;
            }
            current = child_guard;
        }

        // Insert into the leaf.
        if let Node::Leaf { entries, .. } = &mut *current {
            let pos = entries.partition_point(|e| (e.key, e.ts) <= (tuple.key, tuple.ts));
            entries.insert(pos, tuple);
        }

        // Split upwards while nodes overflow.
        let mut over = if current.is_full(self.fanout, self.leaf_capacity) {
            Some(current)
        } else {
            None
        };
        while let Some(mut full) = over.take() {
            // Full beyond capacity means it has exceeded the bound by one —
            // split when strictly over capacity.
            let must_split = match &*full {
                Node::Leaf { entries, .. } => entries.len() > self.leaf_capacity,
                Node::Inner { children, .. } => children.len() > self.fanout,
            };
            if !must_split {
                break;
            }
            let (sep, right) = self.split(&mut full);
            drop(full);
            match path.pop() {
                Some((mut parent, slot)) => {
                    if let Node::Inner { keys, children } = &mut *parent {
                        keys.insert(slot, sep);
                        children.insert(slot + 1, right);
                    }
                    over = Some(parent);
                }
                None => {
                    // Root split: the root-pointer lock is still held
                    // (crabbing guarantees it, since the root was unsafe).
                    let mut rp = root_ptr.take().expect("root lock held for root split");
                    let old_root = Arc::clone(&rp);
                    *rp = Arc::new(RwLock::new(Node::Inner {
                        keys: vec![sep],
                        children: vec![old_root, right],
                    }));
                    break;
                }
            }
        }
    }
}

impl TupleIndex for ConcurrentBTree {
    fn insert(&self, tuple: Tuple) {
        let t0 = Instant::now();
        self.insert_crabbing(tuple);
        self.count.fetch_add(1, Ordering::AcqRel);
        let elapsed = t0.elapsed();
        // insert_ns records the *whole* path; Figure 7(b)'s "pure insert"
        // is insert − split.
        self.stats.add(&self.stats.insert_ns, elapsed);
    }

    fn query(
        &self,
        keys: &KeyInterval,
        times: &TimeInterval,
        predicate: Option<&(dyn Fn(&Tuple) -> bool + Sync)>,
    ) -> Vec<Tuple> {
        // Read-latch crabbing down to the first qualifying leaf.
        let root = Arc::clone(&*self.root.lock());
        let mut node = root.read_arc();
        #[allow(clippy::while_let_loop)]
        loop {
            let child = match &*node {
                Node::Inner {
                    keys: seps,
                    children,
                } => {
                    // Strict comparison: a run of duplicate keys may have
                    // been split across leaves, with the separator equal to
                    // the key itself; descend to the *leftmost* leaf that
                    // can hold `keys.lo()` and rely on the chain scan.
                    let slot = seps.partition_point(|&s| s < keys.lo());
                    Arc::clone(&children[slot])
                }
                Node::Leaf { .. } => break,
            };
            node = child.read_arc();
        }
        // Scan the leaf chain.
        let mut out = Vec::new();
        loop {
            let next = match &*node {
                Node::Leaf { entries, next } => {
                    self.stats.leaves_scanned.fetch_add(1, Ordering::Relaxed);
                    let start = entries.partition_point(|e| e.key < keys.lo());
                    let mut done = false;
                    for e in &entries[start..] {
                        if e.key > keys.hi() {
                            done = true;
                            break;
                        }
                        if times.contains(e.ts) && predicate.is_none_or(|p| p(e)) {
                            out.push(e.clone());
                        }
                    }
                    // Also stop if this leaf's max key already exceeds hi.
                    if done || entries.last().is_some_and(|e| e.key > keys.hi()) {
                        None
                    } else {
                        next.clone()
                    }
                }
                Node::Inner { .. } => unreachable!("leaf chain contains inner node"),
            };
            match next {
                Some(n) => node = n.read_arc(),
                None => break,
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn name(&self) -> &'static str {
        "concurrent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::query_sorted;

    fn tree() -> ConcurrentBTree {
        ConcurrentBTree::new(4, 4)
    }

    #[test]
    fn insert_and_point_query() {
        let t = tree();
        for i in 0..200u64 {
            t.insert(Tuple::bare(i, i));
        }
        assert_eq!(t.len(), 200);
        for i in (0..200u64).step_by(17) {
            let hits = t.query(&KeyInterval::point(i), &TimeInterval::full(), None);
            assert_eq!(hits.len(), 1, "key {i}");
            assert_eq!(hits[0].key, i);
        }
    }

    #[test]
    fn range_query_spans_leaf_chain() {
        let t = tree();
        for i in (0..500u64).rev() {
            t.insert(Tuple::bare(i, i));
        }
        let hits = query_sorted(&t, &KeyInterval::new(100, 300), &TimeInterval::full());
        assert_eq!(hits.len(), 201);
        assert_eq!(hits[0].key, 100);
        assert_eq!(hits[200].key, 300);
    }

    #[test]
    fn splits_are_counted() {
        let t = tree();
        for i in 0..100u64 {
            t.insert(Tuple::bare(i, i));
        }
        let s = t.stats();
        assert!(s.splits > 0, "no splits in 100 inserts with capacity 4");
        assert!(s.split > std::time::Duration::ZERO);
    }

    #[test]
    fn duplicate_keys_survive_splits() {
        let t = tree();
        for i in 0..64u64 {
            t.insert(Tuple::bare(7, i));
        }
        let hits = t.query(&KeyInterval::point(7), &TimeInterval::full(), None);
        assert_eq!(hits.len(), 64);
    }

    #[test]
    fn time_filter_applies() {
        let t = tree();
        for i in 0..100u64 {
            t.insert(Tuple::bare(i, i * 2));
        }
        let hits = t.query(&KeyInterval::full(), &TimeInterval::new(0, 50), None);
        assert_eq!(hits.len(), 26);
    }

    #[test]
    fn concurrent_inserts_do_not_lose_tuples() {
        use std::thread;
        let t = Arc::new(ConcurrentBTree::new(8, 16));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let t = Arc::clone(&t);
                thread::spawn(move || {
                    for i in 0..1_000u64 {
                        t.insert(Tuple::bare(w * 100_000 + i * 7, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 4_000);
        let hits = t.query(&KeyInterval::full(), &TimeInterval::full(), None);
        assert_eq!(hits.len(), 4_000);
        // Keys are globally sorted across the leaf chain.
        assert!(hits.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn reverse_and_random_order_agree_with_btreemap() {
        let t = tree();
        let mut expected = std::collections::BTreeMap::new();
        let mut x: u64 = 0x12345;
        for i in 0..400u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % 1000;
            t.insert(Tuple::bare(key, i));
            expected.entry(key).or_insert_with(Vec::new).push(i);
        }
        for key in [0u64, 500, 999, 123] {
            let hits = t.query(&KeyInterval::point(key), &TimeInterval::full(), None);
            let want = expected.get(&key).map_or(0, Vec::len);
            assert_eq!(hits.len(), want, "key {key}");
        }
    }
}
