//! The immutable output of flushing an in-memory tree (paper §III-A).
//!
//! When an indexing server's in-memory B+ tree reaches the chunk-size
//! threshold it is *sealed*: leaves are detached in key order together with
//! the template's leaf boundaries and the per-leaf temporal bloom filters.
//! The storage crate serializes a [`SealedTree`] into the on-disk chunk
//! format; the tree itself keeps its template and continues with empty
//! leaves.

use crate::bloom::TimeBloom;
use waterwheel_core::{Key, Region, TimeInterval, Tuple};

/// One leaf of a sealed tree: its tuples sorted by `(key, ts)` plus the
/// pruning metadata a chunk query needs before touching the tuples.
#[derive(Clone, Debug)]
pub struct SealedLeaf {
    /// Tuples sorted by `(key, ts)`.
    pub entries: Vec<Tuple>,
    /// Temporal bloom filter over the leaf's mini-ranges, if enabled.
    pub bloom: Option<TimeBloom>,
    /// Minimum/maximum timestamp among `entries` (valid iff non-empty).
    pub time_range: Option<TimeInterval>,
}

impl SealedLeaf {
    /// Serialized tuple-byte footprint of this leaf.
    pub fn byte_size(&self) -> usize {
        self.entries.iter().map(Tuple::encoded_len).sum()
    }
}

/// A sealed in-memory tree, ready for chunk serialization.
#[derive(Clone, Debug)]
pub struct SealedTree {
    /// Leaves in key order.
    pub leaves: Vec<SealedLeaf>,
    /// Separator keys between adjacent leaves (`leaves.len() − 1` entries):
    /// leaf `i` holds keys `< separators[i]`, leaf `i+1` keys `≥`.
    pub separators: Vec<Key>,
    /// The key–time rectangle covered by the sealed data. The key interval
    /// is the indexing server's *assigned* interval; the time interval is
    /// the exact min/max of the sealed tuples.
    pub region: Region,
    /// Total tuple count.
    pub count: usize,
}

impl SealedTree {
    /// All tuples across all leaves, in key order (consumes the seal).
    pub fn into_tuples(self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.count);
        for leaf in self.leaves {
            out.extend(leaf.entries);
        }
        out
    }

    /// Total serialized tuple bytes.
    pub fn byte_size(&self) -> usize {
        self.leaves.iter().map(SealedLeaf::byte_size).sum()
    }

    /// Checks the structural invariants a seal must satisfy; used by tests
    /// and debug assertions in the storage layer.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.separators.len() + 1 != self.leaves.len() {
            return Err(format!(
                "{} separators for {} leaves",
                self.separators.len(),
                self.leaves.len()
            ));
        }
        if !self.separators.windows(2).all(|w| w[0] < w[1]) {
            return Err("separators not strictly increasing".into());
        }
        let mut total = 0;
        for (i, leaf) in self.leaves.iter().enumerate() {
            total += leaf.entries.len();
            if !leaf
                .entries
                .windows(2)
                .all(|w| (w[0].key, w[0].ts) <= (w[1].key, w[1].ts))
            {
                return Err(format!("leaf {i} not sorted"));
            }
            for t in &leaf.entries {
                if i > 0 && t.key < self.separators[i - 1] {
                    return Err(format!("leaf {i} contains key below its separator"));
                }
                if i < self.separators.len() && t.key >= self.separators[i] {
                    return Err(format!("leaf {i} contains key above its separator"));
                }
                if !self.region.contains_tuple(t) {
                    return Err(format!("tuple outside sealed region in leaf {i}"));
                }
            }
        }
        if total != self.count {
            return Err(format!("count {} != sum of leaves {}", self.count, total));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwheel_core::KeyInterval;

    fn leaf(entries: Vec<Tuple>) -> SealedLeaf {
        let time_range = entries
            .iter()
            .map(|t| t.ts)
            .fold(None::<TimeInterval>, |acc, ts| {
                Some(match acc {
                    None => TimeInterval::point(ts),
                    Some(mut i) => {
                        i.extend_to(ts);
                        i
                    }
                })
            });
        SealedLeaf {
            entries,
            bloom: None,
            time_range,
        }
    }

    fn valid_seal() -> SealedTree {
        SealedTree {
            leaves: vec![
                leaf(vec![Tuple::bare(1, 10), Tuple::bare(4, 12)]),
                leaf(vec![Tuple::bare(5, 11), Tuple::bare(9, 15)]),
            ],
            separators: vec![5],
            region: Region::new(KeyInterval::new(0, 10), TimeInterval::new(10, 15)),
            count: 4,
        }
    }

    #[test]
    fn valid_seal_passes_invariants() {
        valid_seal().check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_misrouted_keys() {
        let mut s = valid_seal();
        s.leaves[0].entries.push(Tuple::bare(7, 10)); // 7 ≥ separator 5
        s.count += 1;
        assert!(s.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_bad_count() {
        let mut s = valid_seal();
        s.count = 99;
        assert!(s.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_unsorted_leaf() {
        let mut s = valid_seal();
        s.leaves[1].entries.reverse();
        assert!(s.check_invariants().is_err());
    }

    #[test]
    fn into_tuples_preserves_key_order() {
        let tuples = valid_seal().into_tuples();
        let keys: Vec<_> = tuples.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![1, 4, 5, 9]);
    }

    #[test]
    fn byte_size_sums_leaves() {
        let s = valid_seal();
        assert_eq!(s.byte_size(), 4 * Tuple::bare(0, 0).encoded_len());
    }
}
