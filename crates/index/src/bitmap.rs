//! Compressed bitmaps for secondary indexing (paper §VIII).
//!
//! The paper's future work proposes "secondary index structure by bitmap
//! and bloom filters, to enable index retrieval on non-key and non-temporal
//! attributes". This module provides the bitmap half: a roaring-style
//! two-level bitmap over `u32` row/leaf ids, with per-64Ki-chunk containers
//! that switch between a sorted array (sparse) and a packed bitset (dense).
//!
//! Used by the secondary attribute index to record, per attribute value,
//! which leaves of a chunk contain tuples with that value.

use waterwheel_core::codec::{Decoder, Encoder};
use waterwheel_core::{Result, WwError};

/// Container density threshold: ≤ this many entries stays an array.
const ARRAY_MAX: usize = 4_096;
/// Values per container.
const SPAN: u32 = 1 << 16;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Container {
    /// Sorted, deduplicated low-16-bit values.
    Array(Vec<u16>),
    /// 65 536-bit bitset.
    Bits(Box<[u64; 1024]>),
}

impl Container {
    fn new() -> Self {
        Container::Array(Vec::new())
    }

    fn len(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bits(b) => b.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(v) => match v.binary_search(&low) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, low);
                    if v.len() > ARRAY_MAX {
                        self.densify();
                    }
                    true
                }
            },
            Container::Bits(b) => {
                let (w, bit) = (low as usize / 64, low as usize % 64);
                let had = b[w] & (1 << bit) != 0;
                b[w] |= 1 << bit;
                !had
            }
        }
    }

    fn densify(&mut self) {
        if let Container::Array(v) = self {
            let mut bits = Box::new([0u64; 1024]);
            for &low in v.iter() {
                bits[low as usize / 64] |= 1 << (low % 64);
            }
            *self = Container::Bits(bits);
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Bits(b) => b[low as usize / 64] & (1 << (low % 64)) != 0,
        }
    }

    fn for_each(&self, base: u32, visit: &mut impl FnMut(u32)) {
        match self {
            Container::Array(v) => {
                for &low in v {
                    visit(base + low as u32);
                }
            }
            Container::Bits(b) => {
                for (w, &word) in b.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let bit = bits.trailing_zeros();
                        visit(base + (w as u32) * 64 + bit);
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    fn union_in_place(&mut self, other: &Container) {
        // Simple and correct: visit other's values and insert.
        let mut incoming = Vec::new();
        other.for_each(0, &mut |v| incoming.push(v as u16));
        for low in incoming {
            self.insert(low);
        }
    }

    fn intersect(&self, other: &Container) -> Container {
        let mut out = Container::new();
        self.for_each(0, &mut |v| {
            if other.contains(v as u16) {
                out.insert(v as u16);
            }
        });
        out
    }
}

/// A compressed bitmap over `u32` ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    /// `(high16, container)` pairs sorted by `high16`.
    containers: Vec<(u16, Container)>,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap holding the given ids.
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut b = Self::new();
        for id in ids {
            b.insert(id);
        }
        b
    }

    fn container_mut(&mut self, high: u16) -> &mut Container {
        match self.containers.binary_search_by_key(&high, |(h, _)| *h) {
            Ok(i) => &mut self.containers[i].1,
            Err(i) => {
                self.containers.insert(i, (high, Container::new()));
                &mut self.containers[i].1
            }
        }
    }

    fn container(&self, high: u16) -> Option<&Container> {
        self.containers
            .binary_search_by_key(&high, |(h, _)| *h)
            .ok()
            .map(|i| &self.containers[i].1)
    }

    /// Inserts an id; returns whether it was newly added.
    pub fn insert(&mut self, id: u32) -> bool {
        self.container_mut((id / SPAN) as u16)
            .insert((id % SPAN) as u16)
    }

    /// Whether the bitmap contains `id`.
    pub fn contains(&self, id: u32) -> bool {
        self.container((id / SPAN) as u16)
            .is_some_and(|c| c.contains((id % SPAN) as u16))
    }

    /// Number of ids stored.
    pub fn len(&self) -> usize {
        self.containers.iter().map(|(_, c)| c.len()).sum()
    }

    /// Whether no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All ids in ascending order.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        for (high, c) in &self.containers {
            c.for_each((*high as u32) * SPAN, &mut |v| out.push(v));
        }
        out
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Bitmap) {
        for (high, c) in &other.containers {
            self.container_mut(*high).union_in_place(c);
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        for (high, c) in &self.containers {
            if let Some(oc) = other.container(*high) {
                let both = c.intersect(oc);
                if both.len() > 0 {
                    out.containers.push((*high, both));
                }
            }
        }
        out
    }

    /// Serialized size estimate in bytes (cache/metadata accounting).
    pub fn approx_size(&self) -> usize {
        self.containers
            .iter()
            .map(|(_, c)| match c {
                Container::Array(v) => 8 + v.len() * 2,
                Container::Bits(_) => 8 + 8_192,
            })
            .sum()
    }

    /// Appends the bitmap to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32(self.containers.len() as u32);
        for (high, c) in &self.containers {
            out.put_u32(*high as u32);
            match c {
                Container::Array(v) => {
                    out.put_u32(0);
                    out.put_u32(v.len() as u32);
                    for &low in v {
                        out.put_u16(low);
                    }
                }
                Container::Bits(b) => {
                    out.put_u32(1);
                    for &w in b.iter() {
                        out.put_u64(w);
                    }
                }
            }
        }
    }

    /// Reads a bitmap written by [`encode`](Self::encode).
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.get_u32()? as usize;
        let mut containers = Vec::with_capacity(n);
        let mut last_high: Option<u16> = None;
        for _ in 0..n {
            let high = dec.get_u32()?;
            if high > u16::MAX as u32 {
                return Err(WwError::corrupt("bitmap", "container high bits overflow"));
            }
            let high = high as u16;
            if last_high.is_some_and(|l| high <= l) {
                return Err(WwError::corrupt("bitmap", "containers out of order"));
            }
            last_high = Some(high);
            let kind = dec.get_u32()?;
            let container = match kind {
                0 => {
                    let len = dec.get_u32()? as usize;
                    if len > ARRAY_MAX + 1 {
                        return Err(WwError::corrupt("bitmap", "oversized array container"));
                    }
                    let mut v = Vec::with_capacity(len);
                    let mut prev: Option<u16> = None;
                    for _ in 0..len {
                        let low = dec.get_u16()?;
                        if prev.is_some_and(|p| low <= p) {
                            return Err(WwError::corrupt("bitmap", "array values out of order"));
                        }
                        prev = Some(low);
                        v.push(low);
                    }
                    Container::Array(v)
                }
                1 => {
                    let mut bits = Box::new([0u64; 1024]);
                    for w in bits.iter_mut() {
                        *w = dec.get_u64()?;
                    }
                    Container::Bits(bits)
                }
                other => {
                    return Err(WwError::corrupt(
                        "bitmap",
                        format!("unknown container kind {other}"),
                    ))
                }
            };
            containers.push((high, container));
        }
        Ok(Self { containers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_roundtrip() {
        let mut b = Bitmap::new();
        assert!(b.insert(5));
        assert!(!b.insert(5));
        assert!(b.insert(1_000_000));
        assert!(b.contains(5));
        assert!(b.contains(1_000_000));
        assert!(!b.contains(6));
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_vec(), vec![5, 1_000_000]);
    }

    #[test]
    fn dense_container_promotion() {
        let mut b = Bitmap::new();
        for i in 0..(ARRAY_MAX as u32 + 100) {
            b.insert(i * 2); // same container until 2*(4096+100) < 65536
        }
        assert_eq!(b.len(), ARRAY_MAX + 100);
        for i in 0..(ARRAY_MAX as u32 + 100) {
            assert!(b.contains(i * 2));
            assert!(!b.contains(i * 2 + 1));
        }
        // Order preserved through promotion.
        let v = b.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn union_and_intersection() {
        let a = Bitmap::from_ids([1u32, 2, 3, 100_000]);
        let b = Bitmap::from_ids([3u32, 4, 100_000, 200_000]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4, 100_000, 200_000]);
        let i = a.intersect(&b);
        assert_eq!(i.to_vec(), vec![3, 100_000]);
        // Intersection with disjoint set is empty.
        assert!(a.intersect(&Bitmap::from_ids([9u32])).is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut b = Bitmap::from_ids([0u32, 7, 65_535, 65_536, 1_000_000]);
        // Include a dense container.
        for i in 0..(ARRAY_MAX as u32 + 10) {
            b.insert(3 * SPAN + i);
        }
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let got = Bitmap::decode(&mut Decoder::new(&buf, "test")).unwrap();
        assert_eq!(got, b);
        assert_eq!(got.to_vec(), b.to_vec());
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut b = Bitmap::from_ids([1u32, 2, 3]);
        let mut buf = Vec::new();
        b.encode(&mut buf);
        // Swap the order of two array values.
        let n = buf.len();
        buf.swap(n - 1, n - 3);
        buf.swap(n - 2, n - 4);
        assert!(Bitmap::decode(&mut Decoder::new(&buf, "test")).is_err());
        // Truncation is detected too.
        let mut buf2 = Vec::new();
        b.insert(9);
        b.encode(&mut buf2);
        buf2.truncate(buf2.len() - 1);
        assert!(Bitmap::decode(&mut Decoder::new(&buf2, "test")).is_err());
    }

    #[test]
    fn large_random_set_matches_btreeset() {
        use std::collections::BTreeSet;
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut b = Bitmap::new();
        let mut set = BTreeSet::new();
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let id = (x % 500_000) as u32;
            b.insert(id);
            set.insert(id);
        }
        assert_eq!(b.len(), set.len());
        assert_eq!(b.to_vec(), set.iter().copied().collect::<Vec<_>>());
    }
}
