//! Index-level configuration, derived from the system-wide config.

use waterwheel_core::SystemConfig;

/// Configuration of the per-leaf temporal bloom filters (paper §IV-B).
#[derive(Clone, Copy, Debug)]
pub struct BloomConfig {
    /// Width of one time mini-range in milliseconds. Tuples are mapped to
    /// `ts / mini_range_ms` buckets before insertion into the filter.
    pub mini_range_ms: u64,
    /// Bits allocated per expected entry.
    pub bits_per_entry: usize,
}

impl Default for BloomConfig {
    fn default() -> Self {
        Self {
            mini_range_ms: 1_000,
            bits_per_entry: 10,
        }
    }
}

/// Tunables for the in-memory index structures.
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Maximum children per inner node (and entries per baseline leaf).
    pub fanout: usize,
    /// Target tuples per leaf when building or rebuilding a template.
    pub leaf_capacity: usize,
    /// Skewness threshold that marks a template obsolete (paper §III-C: 0.2).
    pub skew_threshold: f64,
    /// Inserts between skewness checks.
    pub skew_check_interval: usize,
    /// Temporal bloom filters; `None` disables them (ablation knob).
    pub bloom: Option<BloomConfig>,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            fanout: 16,
            leaf_capacity: 64,
            skew_threshold: 0.2,
            skew_check_interval: 4096,
            bloom: Some(BloomConfig::default()),
        }
    }
}

impl IndexConfig {
    /// Derives the index configuration from the system configuration.
    pub fn from_system(sys: &SystemConfig) -> Self {
        Self {
            fanout: sys.btree_fanout,
            leaf_capacity: sys.leaf_capacity,
            skew_threshold: sys.skew_threshold,
            skew_check_interval: sys.skew_check_interval,
            bloom: sys.bloom_enabled.then_some(BloomConfig {
                mini_range_ms: 1_000,
                bits_per_entry: sys.bloom_bits_per_entry,
            }),
        }
    }

    /// Disables bloom filters (builder-style, for ablation benches).
    pub fn without_bloom(mut self) -> Self {
        self.bloom = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_system_respects_bloom_toggle() {
        let mut sys = SystemConfig::default();
        sys.bloom_enabled = false;
        assert!(IndexConfig::from_system(&sys).bloom.is_none());
        sys.bloom_enabled = true;
        sys.bloom_bits_per_entry = 12;
        let cfg = IndexConfig::from_system(&sys);
        assert_eq!(cfg.bloom.unwrap().bits_per_entry, 12);
    }

    #[test]
    fn without_bloom_clears_bloom() {
        assert!(IndexConfig::default().without_bloom().bloom.is_none());
    }
}
