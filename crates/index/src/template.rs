//! The template-based B+ tree (paper §III-B, §III-C).
//!
//! A conventional B+ tree pays for node splits on the insert path. The
//! template tree observes that when the key distribution is stable, the
//! inner-node structure of the *previous* chunk's tree is a near-optimal
//! structure for the next chunk too. So after a flush only the leaves are
//! cleared; the inner skeleton — the **template** — is retained and reused.
//!
//! During normal operation the template is strictly read-only: an insert
//! routes through it without taking any inner-node lock and only latches the
//! destination leaf. Reads likewise. The only structure-changing operations
//! are *template updates* (triggered by the skewness detector of §III-C) and
//! *seals* (chunk flushes), both of which take the tree-level write lock,
//! which is exactly the paper's "pause all tuple insertion threads on this
//! B+ tree".

use crate::bloom::TimeBloom;
use crate::config::IndexConfig;
use crate::sealed::{SealedLeaf, SealedTree};
use crate::skew;
use crate::stats::{IndexStats, StatsSnapshot};
use crate::traits::TupleIndex;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use waterwheel_core::{Key, KeyInterval, Region, TimeInterval, Timestamp, Tuple};

/// An inner node of the template: separator keys plus child slots.
///
/// Children are either other inner nodes (arena indices) or leaves (indices
/// into the tree's leaf vector); a node never mixes the two kinds.
#[derive(Clone, Debug)]
struct InnerNode {
    keys: Vec<Key>,
    children: Vec<u32>,
    children_are_leaves: bool,
}

/// The read-only inner skeleton.
#[derive(Clone, Debug)]
struct Template {
    /// Strictly increasing separator keys; `separators.len() + 1` leaves.
    separators: Vec<Key>,
    /// Arena of inner nodes; the root is the last entry. Empty when the
    /// tree has a single leaf.
    nodes: Vec<InnerNode>,
}

impl Template {
    /// Builds the inner skeleton bottom-up from separator keys, mirroring
    /// the paper's bulk-style template (re)construction (§III-C2): group
    /// `fanout` children per node, propagate the inter-group separators
    /// upward, stop when one node remains.
    fn build(separators: Vec<Key>, fanout: usize) -> Self {
        debug_assert!(separators.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(fanout >= 2);
        let leaf_count = separators.len() + 1;
        let mut nodes: Vec<InnerNode> = Vec::new();
        if leaf_count == 1 {
            return Self { separators, nodes };
        }
        // Level 0: children are leaves; `level_seps[i]` separates child i
        // from child i+1.
        let mut level_children: Vec<u32> = (0..leaf_count as u32).collect();
        let mut level_seps: Vec<Key> = separators.clone();
        let mut children_are_leaves = true;
        loop {
            let mut next_children: Vec<u32> = Vec::new();
            let mut next_seps: Vec<Key> = Vec::new();
            let mut i = 0;
            while i < level_children.len() {
                let end = (i + fanout).min(level_children.len());
                let node = InnerNode {
                    keys: level_seps[i..end - 1].to_vec(),
                    children: level_children[i..end].to_vec(),
                    children_are_leaves,
                };
                nodes.push(node);
                next_children.push((nodes.len() - 1) as u32);
                if end < level_children.len() {
                    next_seps.push(level_seps[end - 1]);
                }
                i = end;
            }
            if next_children.len() == 1 {
                return Self { separators, nodes };
            }
            level_children = next_children;
            level_seps = next_seps;
            children_are_leaves = false;
        }
    }

    /// Number of leaves the template routes to.
    fn leaf_count(&self) -> usize {
        self.separators.len() + 1
    }

    /// Routes a key to its leaf index by traversing the inner nodes from
    /// the root — the paper's insert path ("routed to the target leaf node
    /// by traversing the tree from root without any modifications to the
    /// non-leaf nodes").
    fn route(&self, key: Key) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut node = &self.nodes[self.nodes.len() - 1];
        loop {
            let slot = node.keys.partition_point(|&s| s <= key);
            let child = node.children[slot];
            if node.children_are_leaves {
                debug_assert_eq!(child as usize, skew::route(&self.separators, key));
                return child as usize;
            }
            node = &self.nodes[child as usize];
        }
    }

    /// Tree height in inner-node levels (0 for a single-leaf tree).
    fn height(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut h = 1;
        let mut node = &self.nodes[self.nodes.len() - 1];
        while !node.children_are_leaves {
            node = &self.nodes[node.children[0] as usize];
            h += 1;
        }
        h
    }
}

/// One leaf: latched tuple storage plus pruning metadata.
///
/// Min/max bounds are plain fields updated under the leaf latch — keeping
/// them here (rather than in tree-global atomics) keeps the hot insert path
/// free of CAS loops. The per-leaf temporal bloom filters the paper uses for
/// *chunk* subqueries (§IV-B) are built once at seal time, not maintained
/// per insert.
#[derive(Debug)]
struct LeafData {
    /// Tuples sorted by `(key, ts)`.
    entries: Vec<Tuple>,
    min_ts: Timestamp,
    max_ts: Timestamp,
    min_key: Key,
    max_key: Key,
}

impl LeafData {
    fn new(_cfg: &IndexConfig) -> Self {
        Self {
            entries: Vec::new(),
            min_ts: Timestamp::MAX,
            max_ts: 0,
            min_key: Key::MAX,
            max_key: 0,
        }
    }

    fn insert(&mut self, tuple: Tuple) {
        self.min_ts = self.min_ts.min(tuple.ts);
        self.max_ts = self.max_ts.max(tuple.ts);
        self.min_key = self.min_key.min(tuple.key);
        self.max_key = self.max_key.max(tuple.key);
        let pos = self
            .entries
            .partition_point(|e| (e.key, e.ts) <= (tuple.key, tuple.ts));
        self.entries.insert(pos, tuple);
    }

    fn reset(&mut self) {
        self.entries = Vec::new();
        self.min_ts = Timestamp::MAX;
        self.max_ts = 0;
        self.min_key = Key::MAX;
        self.max_key = 0;
    }
}

/// The protected interior: template plus leaves.
struct TreeCore {
    template: Template,
    leaves: Vec<RwLock<LeafData>>,
}

impl TreeCore {
    fn new_leaves(cfg: &IndexConfig, n: usize) -> Vec<RwLock<LeafData>> {
        (0..n).map(|_| RwLock::new(LeafData::new(cfg))).collect()
    }
}

/// The template-based B+ tree (paper §III-B).
///
/// Thread-safe: concurrent inserts and reads only contend on leaf latches;
/// template updates and seals pause everything via the tree-level lock.
pub struct TemplateBTree {
    cfg: IndexConfig,
    assigned: KeyInterval,
    core: RwLock<TreeCore>,
    count: AtomicUsize,
    bytes: AtomicUsize,
    since_skew_check: AtomicUsize,
    /// Skewness measured right after the last template rebuild. With
    /// duplicate-heavy keys no range partition can reach `S ≤ threshold`
    /// (runs of one key are indivisible), so re-triggering is gated on
    /// exceeding the *achievable* skew by the threshold, preventing rebuild
    /// thrash.
    last_rebuild_skew: AtomicU64,
    /// Tuple count at the last rebuild; overflow-triggered rebuilds require
    /// the tree to have doubled since, bounding rebuild work amortized.
    last_rebuild_count: AtomicUsize,
    stats: Arc<IndexStats>,
}

impl TemplateBTree {
    /// Creates an empty tree over the assigned key interval with a trivial
    /// single-leaf template; the first skew check or seal grows it.
    pub fn new(assigned: KeyInterval, cfg: IndexConfig) -> Self {
        Self::with_separators(assigned, cfg, Vec::new())
    }

    /// Creates a tree whose template is built from the given separators —
    /// used to recycle the structure of a previous chunk (paper §III-B) or
    /// to seed from a sampled distribution.
    pub fn with_separators(assigned: KeyInterval, cfg: IndexConfig, separators: Vec<Key>) -> Self {
        let template = Template::build(separators, cfg.fanout.max(2));
        let leaves = TreeCore::new_leaves(&cfg, template.leaf_count());
        Self {
            cfg,
            assigned,
            core: RwLock::new(TreeCore { template, leaves }),
            count: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            since_skew_check: AtomicUsize::new(0),
            last_rebuild_skew: AtomicU64::new(0f64.to_bits()),
            last_rebuild_count: AtomicUsize::new(0),
            stats: Arc::new(IndexStats::default()),
        }
    }

    /// The key interval this tree is responsible for.
    pub fn assigned_interval(&self) -> KeyInterval {
        self.assigned
    }

    /// Re-assigns the key interval (adaptive key partitioning, §III-D).
    /// Existing tuples are unaffected; the *actual* covered interval is
    /// tracked separately and reported by [`Self::region`].
    pub fn reassign_interval(&mut self, assigned: KeyInterval) {
        self.assigned = assigned;
    }

    /// Total accumulated tuple bytes (drives the chunk-size flush trigger).
    pub fn byte_size(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The exact key–time rectangle covered by the current contents, or
    /// `None` when empty. This is the "actual key interval" the metadata
    /// server tracks after a repartition (§III-D).
    pub fn region(&self) -> Option<Region> {
        if self.count.load(Ordering::Acquire) == 0 {
            return None;
        }
        let core = self.core.read();
        let (mut min_key, mut max_key) = (Key::MAX, 0);
        let (mut min_ts, mut max_ts) = (Timestamp::MAX, 0);
        for slot in &core.leaves {
            let leaf = slot.read();
            if leaf.entries.is_empty() {
                continue;
            }
            min_key = min_key.min(leaf.min_key);
            max_key = max_key.max(leaf.max_key);
            min_ts = min_ts.min(leaf.min_ts);
            max_ts = max_ts.max(leaf.max_ts);
        }
        if min_key > max_key {
            return None;
        }
        Some(Region::new(
            KeyInterval::new(min_key, max_key),
            TimeInterval::new(min_ts, max_ts),
        ))
    }

    /// Shared stats handle (benchmarks read it while threads insert).
    pub fn stats_handle(&self) -> Arc<IndexStats> {
        Arc::clone(&self.stats)
    }

    /// Per-leaf tuple counts (diagnostics and tests).
    pub fn leaf_counts(&self) -> Vec<usize> {
        let core = self.core.read();
        core.leaves.iter().map(|l| l.read().entries.len()).collect()
    }

    /// Current skewness factor `S(P, D)` of the leaf partition.
    pub fn skewness(&self) -> f64 {
        skew::skewness(&self.leaf_counts())
    }

    /// Current template height in inner-node levels.
    pub fn height(&self) -> usize {
        self.core.read().template.height()
    }

    /// Number of leaves in the current template.
    pub fn leaf_count(&self) -> usize {
        self.core.read().template.leaf_count()
    }

    fn ideal_leaf_count(&self, count: usize) -> usize {
        count.div_ceil(self.cfg.leaf_capacity).max(1)
    }

    /// Checks the skewness factor and rebuilds the template when it exceeds
    /// the threshold or the leaves have badly overflowed. Returns `true`
    /// when an update was performed. Called automatically from the insert
    /// path every `skew_check_interval` inserts; public for benchmarks.
    pub fn maybe_update_template(&self) -> bool {
        let counts = self.leaf_counts();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return false;
        }
        let s = skew::skewness(&counts);
        let baseline = f64::from_bits(self.last_rebuild_skew.load(Ordering::Relaxed));
        // Growth gate shared by both triggers: a rebuild costs O(n), so the
        // tree must have grown ≥ 25 % (and by at least one check interval)
        // since the last one — this is what keeps template updates the
        // "infrequent" event the paper measures (§VI-A3) instead of firing
        // on the statistical noise of max-leaf-vs-mean with many leaves.
        let last = self.last_rebuild_count.load(Ordering::Relaxed);
        let grown = total >= last + (last / 4).max(self.cfg.skew_check_interval.min(4_096));
        let skewed = s > baseline + self.cfg.skew_threshold && grown;
        // Leaves have badly overflowed *and* the tree has grown enough since
        // the last rebuild that another one can actually help.
        let overflowed =
            total > counts.len() * self.cfg.leaf_capacity * 2 && total >= 2 * last.max(1);
        if skewed || overflowed {
            self.update_template();
            true
        } else {
            false
        }
    }

    /// Rebuilds the template around the current key distribution
    /// (paper §III-C2, Equation 3) and redistributes the tuples.
    ///
    /// Pauses all inserts/reads for the duration (tree-level write lock).
    pub fn update_template(&self) {
        let t0 = Instant::now();
        let mut core = self.core.write();
        // Drain all leaves; concatenation is (key, ts)-sorted because leaf
        // key ranges are disjoint and each leaf is sorted.
        let mut entries: Vec<Tuple> = Vec::with_capacity(self.count.load(Ordering::Relaxed));
        for leaf in &core.leaves {
            entries.append(&mut leaf.write().entries);
        }
        debug_assert!(entries
            .windows(2)
            .all(|w| (w[0].key, w[0].ts) <= (w[1].key, w[1].ts)));
        let keys: Vec<Key> = entries.iter().map(|e| e.key).collect();
        let leaves = self.ideal_leaf_count(entries.len());
        let separators = skew::equal_depth_boundaries(&keys, leaves);
        core.template = Template::build(separators, self.cfg.fanout.max(2));
        core.leaves = TreeCore::new_leaves(&self.cfg, core.template.leaf_count());
        let mut rebuilt_counts = vec![0usize; core.template.leaf_count()];
        for t in entries {
            let li = core.template.route(t.key);
            rebuilt_counts[li] += 1;
            // Entries arrive in sorted order, so pushing keeps leaves sorted.
            let mut leaf = core.leaves[li].write();
            leaf.min_ts = leaf.min_ts.min(t.ts);
            leaf.max_ts = leaf.max_ts.max(t.ts);
            leaf.min_key = leaf.min_key.min(t.key);
            leaf.max_key = leaf.max_key.max(t.key);
            leaf.entries.push(t);
        }
        drop(core);
        let total: usize = rebuilt_counts.iter().sum();
        self.last_rebuild_skew
            .store(skew::skewness(&rebuilt_counts).to_bits(), Ordering::Relaxed);
        self.last_rebuild_count.store(total, Ordering::Relaxed);
        self.stats.add(&self.stats.build_ns, t0.elapsed());
        self.stats.template_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Seals the current contents as an immutable [`SealedTree`] and resets
    /// the leaves, retaining the template for the next chunk (§III-B:
    /// "we only eliminate the leaf nodes of the tree").
    ///
    /// Returns `None` when the tree is empty. When the template's leaf count
    /// has drifted far from the ideal for the sealed volume (bootstrap, or a
    /// large rate change), the template is refreshed from the sealed keys so
    /// the *next* chunk starts with a well-fitted structure.
    pub fn seal(&self) -> Option<SealedTree> {
        let mut core = self.core.write();
        let count = self.count.swap(0, Ordering::AcqRel);
        if count == 0 {
            return None;
        }
        self.bytes.store(0, Ordering::Relaxed);
        self.since_skew_check.store(0, Ordering::Relaxed);
        self.last_rebuild_skew
            .store(0f64.to_bits(), Ordering::Relaxed);
        self.last_rebuild_count.store(0, Ordering::Relaxed);

        let (mut min_ts, mut max_ts) = (Timestamp::MAX, 0);
        let (mut min_key, mut max_key) = (Key::MAX, 0);
        let mut leaves = Vec::with_capacity(core.leaves.len());
        let mut all_keys: Vec<Key> = Vec::with_capacity(count);
        for slot in &core.leaves {
            let mut leaf = slot.write();
            let (time_range, bloom) = if leaf.entries.is_empty() {
                (None, None)
            } else {
                min_ts = min_ts.min(leaf.min_ts);
                max_ts = max_ts.max(leaf.max_ts);
                min_key = min_key.min(leaf.min_key);
                max_key = max_key.max(leaf.max_key);
                // The paper's temporal bloom filters are a *chunk-side*
                // pruning structure (§IV-B); building them once at seal time
                // keeps the realtime insert path free of filter maintenance.
                let bloom = self.cfg.bloom.map(|b| {
                    let mut filter =
                        TimeBloom::new(b.mini_range_ms, leaf.entries.len(), b.bits_per_entry);
                    for e in &leaf.entries {
                        filter.insert(e.ts);
                    }
                    filter
                });
                (Some(TimeInterval::new(leaf.min_ts, leaf.max_ts)), bloom)
            };
            let entries = std::mem::take(&mut leaf.entries);
            leaf.reset();
            all_keys.extend(entries.iter().map(|e| e.key));
            leaves.push(SealedLeaf {
                entries,
                bloom,
                time_range,
            });
        }
        let separators = core.template.separators.clone();

        // Refresh the template for the next chunk when badly fitted.
        let ideal = self.ideal_leaf_count(count);
        let current = core.template.leaf_count();
        if current * 3 < ideal * 2 || ideal * 3 < current * 2 {
            let new_seps = skew::equal_depth_boundaries(&all_keys, ideal);
            core.template = Template::build(new_seps, self.cfg.fanout.max(2));
        }
        core.leaves = TreeCore::new_leaves(&self.cfg, core.template.leaf_count());
        drop(core);

        Some(SealedTree {
            leaves,
            separators,
            region: Region::new(
                KeyInterval::new(min_key, max_key),
                TimeInterval::new(min_ts, max_ts),
            ),
            count,
        })
    }
}

impl TupleIndex for TemplateBTree {
    fn insert(&self, tuple: Tuple) {
        let t0 = Instant::now();
        let key = tuple.key;
        let len = tuple.encoded_len();
        {
            // The count/byte updates must happen under the tree-level read
            // lock: `seal` swaps `count` under the write lock while draining
            // the leaves, so a counter bumped after the leaf insert but
            // outside the lock could be missed by one seal and then land on
            // the next — making `SealedTree::count` disagree with its
            // leaves in both directions.
            let core = self.core.read();
            let li = core.template.route(key);
            core.leaves[li].write().insert(tuple);
            self.count.fetch_add(1, Ordering::AcqRel);
            self.bytes.fetch_add(len, Ordering::Relaxed);
        }
        self.stats.add(&self.stats.insert_ns, t0.elapsed());
        // Periodic skewness check (paper §III-C1).
        if self.since_skew_check.fetch_add(1, Ordering::Relaxed) + 1 >= self.cfg.skew_check_interval
        {
            self.since_skew_check.store(0, Ordering::Relaxed);
            self.maybe_update_template();
        }
    }

    fn query(
        &self,
        keys: &KeyInterval,
        times: &TimeInterval,
        predicate: Option<&(dyn Fn(&Tuple) -> bool + Sync)>,
    ) -> Vec<Tuple> {
        let core = self.core.read();
        let lo_leaf = core.template.route(keys.lo());
        let hi_leaf = core.template.route(keys.hi());
        let mut out = Vec::new();
        for li in lo_leaf..=hi_leaf {
            let leaf = core.leaves[li].read();
            // Temporal pruning via the leaf's min/max bounds (the bloom
            // filters are chunk-side structures built at seal time, §IV-B).
            if leaf.entries.is_empty()
                || !TimeInterval::new(leaf.min_ts, leaf.max_ts).overlaps(times)
            {
                self.stats.bloom_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.stats.leaves_scanned.fetch_add(1, Ordering::Relaxed);
            let start = leaf.entries.partition_point(|e| e.key < keys.lo());
            for e in &leaf.entries[start..] {
                if e.key > keys.hi() {
                    break;
                }
                if times.contains(e.ts) && predicate.is_none_or(|p| p(e)) {
                    out.push(e.clone());
                }
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn name(&self) -> &'static str {
        "template"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IndexConfig {
        IndexConfig {
            fanout: 4,
            leaf_capacity: 8,
            skew_threshold: 0.2,
            skew_check_interval: 64,
            ..IndexConfig::default()
        }
    }

    fn tree() -> TemplateBTree {
        TemplateBTree::new(KeyInterval::full(), cfg())
    }

    #[test]
    fn template_build_and_route_agree_with_separators() {
        for leaf_count in [1usize, 2, 3, 4, 5, 16, 17, 64, 100] {
            let seps: Vec<Key> = (1..leaf_count as u64).map(|i| i * 10).collect();
            let t = Template::build(seps.clone(), 4);
            assert_eq!(t.leaf_count(), leaf_count);
            for key in 0..(leaf_count as u64 * 10 + 5) {
                assert_eq!(
                    t.route(key),
                    skew::route(&seps, key),
                    "leaf_count={leaf_count} key={key}"
                );
            }
        }
    }

    #[test]
    fn template_height_grows_logarithmically() {
        let seps: Vec<Key> = (1..64).collect();
        let t = Template::build(seps, 4);
        // 64 leaves, fanout 4 → 3 inner levels.
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn insert_and_query_roundtrip() {
        let t = tree();
        for i in 0..100u64 {
            t.insert(Tuple::bare(i * 3, 1000 + i));
        }
        assert_eq!(t.len(), 100);
        let hits = t.query(&KeyInterval::new(30, 60), &TimeInterval::full(), None);
        let mut keys: Vec<_> = hits.iter().map(|h| h.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![30, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60]);
    }

    #[test]
    fn query_respects_time_range_and_predicate() {
        let t = tree();
        for i in 0..50u64 {
            t.insert(Tuple::bare(i, i * 10));
        }
        let hits = t.query(&KeyInterval::full(), &TimeInterval::new(100, 200), None);
        assert_eq!(hits.len(), 11); // ts 100..=200 step 10
        let pred = |tp: &Tuple| tp.key.is_multiple_of(2);
        let hits = t.query(
            &KeyInterval::full(),
            &TimeInterval::new(100, 200),
            Some(&pred),
        );
        assert_eq!(hits.len(), 6);
    }

    #[test]
    fn skew_triggers_template_update_and_rebalances() {
        let t = tree();
        // Uniform warm-up so a multi-leaf template forms.
        for i in 0..512u64 {
            t.insert(Tuple::bare(i * 100, i));
        }
        assert!(t.leaf_count() > 1, "template should have grown");
        let updates_before = t.stats().template_updates;
        // Now hammer a narrow key range (distinct keys) to skew the
        // distribution; enough volume to clear the rebuild growth gate.
        for i in 0..2_048u64 {
            t.insert(Tuple::bare(50_000 + i, 10_000 + i));
        }
        let snap = t.stats();
        assert!(
            snap.template_updates > updates_before,
            "no update despite skew"
        );
        // Between (growth-gated) automatic rebuilds some residual skew is
        // expected with such tiny leaves; a rebuild must eliminate it.
        t.update_template();
        assert!(t.skewness() < 1.0, "still very skewed: {}", t.skewness());
        // No data lost through updates.
        assert_eq!(t.len(), 2_560);
        assert_eq!(
            t.query(&KeyInterval::full(), &TimeInterval::full(), None)
                .len(),
            2_560
        );
    }

    #[test]
    fn seal_retains_template_and_empties_leaves() {
        let t = tree();
        for i in 0..256u64 {
            t.insert(Tuple::bare(i * 7, i));
        }
        let leaf_count = t.leaf_count();
        let sealed = t.seal().expect("non-empty");
        sealed.check_invariants().unwrap();
        assert_eq!(sealed.count, 256);
        assert_eq!(t.len(), 0);
        assert_eq!(t.leaf_count(), leaf_count, "template must be retained");
        assert!(t
            .query(&KeyInterval::full(), &TimeInterval::full(), None)
            .is_empty());
        // Next chunk reuses the template.
        for i in 0..256u64 {
            t.insert(Tuple::bare(i * 7, 10_000 + i));
        }
        assert_eq!(t.len(), 256);
    }

    #[test]
    fn seal_empty_tree_returns_none() {
        assert!(tree().seal().is_none());
    }

    #[test]
    fn sealed_region_is_exact_hull() {
        let t = tree();
        t.insert(Tuple::bare(10, 500));
        t.insert(Tuple::bare(90, 100));
        let sealed = t.seal().unwrap();
        assert_eq!(sealed.region.keys, KeyInterval::new(10, 90));
        assert_eq!(sealed.region.times, TimeInterval::new(100, 500));
    }

    #[test]
    fn duplicate_keys_are_preserved() {
        let t = tree();
        for i in 0..100u64 {
            t.insert(Tuple::bare(42, i));
        }
        let hits = t.query(&KeyInterval::point(42), &TimeInterval::full(), None);
        assert_eq!(hits.len(), 100);
    }

    #[test]
    fn bloom_skips_temporally_disjoint_leaves() {
        let t = tree();
        // Two temporal batches in well-separated key ranges.
        for i in 0..256u64 {
            t.insert(Tuple::bare(i, 1_000 + i));
        }
        t.update_template();
        self_check_bloom(&t);
    }

    fn self_check_bloom(t: &TemplateBTree) {
        let before = t.stats().bloom_skips;
        // Query a time window long before any tuple: all leaves skippable.
        let hits = t.query(&KeyInterval::full(), &TimeInterval::new(0, 10), None);
        assert!(hits.is_empty());
        assert!(t.stats().bloom_skips > before, "bloom produced no skips");
    }

    #[test]
    fn concurrent_insert_and_query_is_linearizable_enough() {
        use std::thread;
        let t = Arc::new(tree());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let t = Arc::clone(&t);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        t.insert(Tuple::bare(w * 10_000 + i, i));
                    }
                })
            })
            .collect();
        // Interleave queries; they must never panic or return junk.
        for _ in 0..50 {
            let hits = t.query(&KeyInterval::new(0, 9_999), &TimeInterval::full(), None);
            assert!(hits.iter().all(|h| h.key < 10_000));
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(t.len(), 2_000);
        assert_eq!(
            t.query(&KeyInterval::full(), &TimeInterval::full(), None)
                .len(),
            2_000
        );
    }

    #[test]
    fn duplicate_heavy_keys_do_not_thrash_rebuilds() {
        // Every tuple shares one key: no range partition can balance, so
        // after at most a handful of (geometrically gated) rebuilds the
        // detector must go quiet instead of rebuilding on every check.
        let t = tree();
        for i in 0..4_096u64 {
            t.insert(Tuple::bare(7, i));
        }
        let updates = t.stats().template_updates;
        assert!(
            updates <= 12,
            "rebuild thrash: {updates} updates for 4096 one-key inserts"
        );
        assert_eq!(t.len(), 4_096);
        assert_eq!(
            t.query(&KeyInterval::point(7), &TimeInterval::full(), None)
                .len(),
            4_096
        );
    }

    #[test]
    fn reassign_interval_tracks_actual_region() {
        let mut t = tree();
        t.insert(Tuple::bare(500, 1));
        t.reassign_interval(KeyInterval::new(0, 100));
        // Actual region still reflects stored tuples, not the assignment.
        assert_eq!(t.region().unwrap().keys, KeyInterval::point(500));
        assert_eq!(t.assigned_interval(), KeyInterval::new(0, 100));
    }
}
