//! Instrumentation counters behind the paper's insertion-time breakdown
//! (Figure 7(b)) and template-update latency measurements (Figure 10).
//!
//! Counters are lock-free atomics so they can be bumped from concurrent
//! insertion threads without perturbing the measured workload.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared, thread-safe counters for one index instance.
#[derive(Debug, Default)]
pub struct IndexStats {
    /// Nanoseconds spent in the pure insert path (route + leaf update).
    pub insert_ns: AtomicU64,
    /// Nanoseconds spent splitting nodes (concurrent B+ tree only).
    pub split_ns: AtomicU64,
    /// Number of node splits performed.
    pub splits: AtomicU64,
    /// Nanoseconds spent sorting accumulated tuples (bulk-loading tree only).
    pub sort_ns: AtomicU64,
    /// Nanoseconds spent building index structure bottom-up (bulk tree) or
    /// rebuilding the template (template tree).
    pub build_ns: AtomicU64,
    /// Number of template updates performed (template tree only).
    pub template_updates: AtomicU64,
    /// Number of leaves skipped thanks to a bloom-filter miss.
    pub bloom_skips: AtomicU64,
    /// Number of leaves scanned by queries.
    pub leaves_scanned: AtomicU64,
}

impl IndexStats {
    /// Adds `d` to a duration counter.
    #[inline]
    pub fn add(&self, counter: &AtomicU64, d: Duration) {
        counter.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            insert: Duration::from_nanos(self.insert_ns.load(Ordering::Relaxed)),
            split: Duration::from_nanos(self.split_ns.load(Ordering::Relaxed)),
            splits: self.splits.load(Ordering::Relaxed),
            sort: Duration::from_nanos(self.sort_ns.load(Ordering::Relaxed)),
            build: Duration::from_nanos(self.build_ns.load(Ordering::Relaxed)),
            template_updates: self.template_updates.load(Ordering::Relaxed),
            bloom_skips: self.bloom_skips.load(Ordering::Relaxed),
            leaves_scanned: self.leaves_scanned.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in [
            &self.insert_ns,
            &self.split_ns,
            &self.splits,
            &self.sort_ns,
            &self.build_ns,
            &self.template_updates,
            &self.bloom_skips,
            &self.leaves_scanned,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`IndexStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Time in the pure insert path.
    pub insert: Duration,
    /// Time spent in node splits.
    pub split: Duration,
    /// Node splits performed.
    pub splits: u64,
    /// Time spent sorting (bulk loading).
    pub sort: Duration,
    /// Time spent building structure / rebuilding templates.
    pub build: Duration,
    /// Template updates performed.
    pub template_updates: u64,
    /// Leaves skipped by bloom filters.
    pub bloom_skips: u64,
    /// Leaves scanned by queries.
    pub leaves_scanned: u64,
}

impl StatsSnapshot {
    /// Total accounted insertion-side time (the Figure 7(b) stack height).
    pub fn total_insert_side(&self) -> Duration {
        self.insert + self.split + self.sort + self.build
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_snapshot_roundtrip() {
        let s = IndexStats::default();
        s.add(&s.insert_ns, Duration::from_micros(5));
        s.add(&s.split_ns, Duration::from_micros(7));
        s.splits.fetch_add(3, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.insert, Duration::from_micros(5));
        assert_eq!(snap.split, Duration::from_micros(7));
        assert_eq!(snap.splits, 3);
        assert_eq!(snap.total_insert_side(), Duration::from_micros(12));
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IndexStats::default();
        s.add(&s.build_ns, Duration::from_millis(1));
        s.template_updates.fetch_add(1, Ordering::Relaxed);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
