//! End-to-end multi-process cluster: four OS processes on loopback answer
//! exactly, survive per-role pings, and shut down without leaking
//! children.

use waterwheel_core::{AggregateKind, KeyInterval, ServerId, TimeInterval, Tuple};
use waterwheel_net::{COORDINATOR, META_SERVER};
use waterwheel_node::{ClusterSpec, Role};

fn fresh_root(name: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("ww-node-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn four_process_cluster_answers_exactly_and_shuts_down_clean() {
    let spec = ClusterSpec::new(fresh_root("exact"));
    let cluster = spec.launch(env!("CARGO_BIN_EXE_waterwheel-node")).unwrap();
    let client = cluster.client();

    // Every role answers a ping through its own listener.
    client.ping(ServerId(2_000)).unwrap();
    client.ping(COORDINATOR).unwrap();
    client.ping(ServerId(0)).unwrap();
    client.ping(ServerId(1_000)).unwrap();
    // The metadata role answers typed requests but not pings; an
    // InvalidState answer still proves the hop works.
    assert!(client.ping(META_SERVER).is_err());

    const N: u64 = 2_000;
    for i in 0..N {
        client
            .insert(Tuple::bare(i * 1_000_000, 1_000 + i))
            .unwrap();
    }
    client.flush().unwrap();

    let full = client
        .query(KeyInterval::full(), TimeInterval::full())
        .unwrap();
    assert_eq!(full.tuples.len() as u64, N, "full range lost tuples");
    assert!(full.subqueries >= 1);

    let narrow = client
        .query(
            KeyInterval::new(0, 100_000_000),
            TimeInterval::new(1_000, 1_050),
        )
        .unwrap();
    assert_eq!(narrow.tuples.len(), 51);

    // Exact aggregates across the process boundary, every kind.
    let over = |kind| {
        client
            .aggregate(KeyInterval::full(), TimeInterval::full(), kind)
            .unwrap()
    };
    assert_eq!(over(AggregateKind::Count).agg.count, N);
    assert_eq!(over(AggregateKind::Min).agg.min(), Some(0));
    assert_eq!(over(AggregateKind::Max).agg.max(), Some(0));
    // Default measure is payload length; bare tuples all measure 0.
    assert_eq!(over(AggregateKind::Sum).agg.sum, 0);
    assert_eq!(over(AggregateKind::Avg).value(), Some(0.0));

    // Data inserted after a flush is answered from indexing-server memory
    // (pumps drain the queue in the background; flush makes it exact).
    for i in N..N + 500 {
        client
            .insert(Tuple::bare(i * 1_000_000, 1_000 + i))
            .unwrap();
    }
    client.flush().unwrap();
    let full = client
        .query(KeyInterval::full(), TimeInterval::full())
        .unwrap();
    assert_eq!(full.tuples.len() as u64, N + 500);

    cluster.shutdown().expect("a node had to be killed");
}

#[test]
fn shutdown_actually_tears_the_listeners_down() {
    let spec = ClusterSpec::new(fresh_root("teardown"));
    let cluster = spec.launch(env!("CARGO_BIN_EXE_waterwheel-node")).unwrap();
    let gateway = cluster.addr(Role::Dispatcher).unwrap();
    let client = cluster.client();
    // A short-deadline probe for after the teardown: the transport keeps
    // re-connecting until the deadline, so a generous one would stall.
    let probe = cluster.client_with_timeout(std::time::Duration::from_millis(500), 0);
    client.insert(Tuple::bare(1, 1_000)).unwrap();
    cluster.shutdown().unwrap();
    // The gateway port no longer accepts connections.
    let refused =
        std::net::TcpStream::connect_timeout(&gateway, std::time::Duration::from_millis(500));
    assert!(refused.is_err(), "gateway still listening after shutdown");
    // And the old client observes the cluster as unreachable.
    let err = probe
        .query(KeyInterval::full(), TimeInterval::full())
        .unwrap_err();
    assert!(err.is_retryable(), "expected a delivery failure, got {err}");
}
