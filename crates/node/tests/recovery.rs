//! Kill-9 crash-recovery oracle: a cluster that loses its indexing (then
//! query) process to SIGKILL mid-ingest must, after restart and replay,
//! answer every query byte-exactly like an uninterrupted run.
//!
//! The crash window is the durability gap the WAL exists to close:
//! phase-B tuples are acked into the indexing process's queue WAL but
//! never flushed to chunks, so at kill time they live only in the WAL and
//! the process's (lost) in-memory trees. Recovery must resurrect exactly
//! those tuples — none lost, none doubled — from the persisted mq offset
//! and the replayed log.
//!
//! Scale with `WW_RECOVERY_N` (total tuples; CI smoke uses a small value).

use waterwheel_core::{AggregateKind, KeyInterval, TimeInterval, Tuple};
use waterwheel_node::{ClusterClient, ClusterSpec, Role, PAYLOAD_BYTE_ATTR};

fn fresh_root(name: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("ww-node-rec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// On-disk format versions of every sealed chunk under `root` (the header
/// stores the version as a little-endian u32 right after the 8-byte magic).
fn chunk_versions_on_disk(root: &std::path::Path) -> std::collections::BTreeSet<u32> {
    let mut versions = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(root.join("chunks")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "ww") {
            let bytes = std::fs::read(&path).unwrap();
            versions.insert(u32::from_le_bytes(bytes[8..12].try_into().unwrap()));
        }
    }
    versions
}

fn total_n() -> u64 {
    std::env::var("WW_RECOVERY_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_600)
}

/// Deterministic workload tuple: one payload byte (`i % 4`) doubles as
/// the well-known secondary attribute and gives aggregates a non-trivial
/// measure (payload length 1).
fn tuple(i: u64) -> Tuple {
    Tuple::new(i * 1_000_000, 1_000 + i, vec![(i % 4) as u8])
}

/// Every answer shape the oracle compares: range, narrow range, attribute
/// predicate, and all five aggregate kinds.
#[derive(Debug, PartialEq)]
struct Answers {
    full: Vec<Tuple>,
    narrow: Vec<Tuple>,
    attr: Vec<Tuple>,
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
    avg: Option<f64>,
}

fn canonical(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by(|a, b| {
        (a.key, a.ts, a.payload.as_ref() as &[u8]).cmp(&(b.key, b.ts, b.payload.as_ref()))
    });
    tuples
}

fn collect_answers(client: &ClusterClient, n: u64) -> Answers {
    let full = client
        .query(KeyInterval::full(), TimeInterval::full())
        .unwrap();
    let narrow = client
        .query(
            KeyInterval::new(0, 100_000_000),
            TimeInterval::new(1_000, 1_000 + n / 2),
        )
        .unwrap();
    let attr = client
        .query_attr(
            KeyInterval::full(),
            TimeInterval::full(),
            PAYLOAD_BYTE_ATTR,
            2,
        )
        .unwrap();
    let over = |kind| {
        client
            .aggregate(KeyInterval::full(), TimeInterval::full(), kind)
            .unwrap()
    };
    Answers {
        full: canonical(full.tuples),
        narrow: canonical(narrow.tuples),
        attr: canonical(attr.tuples),
        count: over(AggregateKind::Count).agg.count,
        sum: over(AggregateKind::Sum).agg.sum,
        min: over(AggregateKind::Min).agg.min(),
        max: over(AggregateKind::Max).agg.max(),
        avg: over(AggregateKind::Avg).value(),
    }
}

#[test]
fn kill_nine_recovery_answers_byte_exactly() {
    let n = total_n();
    // Phase boundaries: A is flushed to chunks, B is acked but unflushed
    // (the crash window), C lands after the restart.
    let (a_end, b_end) = (n * 2 / 5, n * 4 / 5);

    // Uninterrupted oracle run.
    let oracle_answers = {
        let spec = ClusterSpec::new(fresh_root("oracle"));
        let cluster = spec.launch(env!("CARGO_BIN_EXE_waterwheel-node")).unwrap();
        let client = cluster.client();
        for i in 0..a_end {
            client.insert(tuple(i)).unwrap();
        }
        client.flush().unwrap();
        for i in a_end..b_end {
            client.insert(tuple(i)).unwrap();
        }
        for i in b_end..n {
            client.insert(tuple(i)).unwrap();
        }
        client.flush().unwrap();
        let answers = collect_answers(&client, n);
        cluster.shutdown().unwrap();
        answers
    };
    assert_eq!(
        oracle_answers.full.len() as u64,
        n,
        "oracle run lost tuples"
    );
    assert_eq!(oracle_answers.count, n);

    // Interrupted run: same inserts, with the indexing process SIGKILLed
    // while phase B sits only in its WAL and memory. Phase A seals under
    // chunk format v1; the restarted indexing process writes v2, so the
    // recovered store mixes both on-disk formats and the oracle must hold
    // across the version-dispatched read path.
    let mut spec = ClusterSpec::new(fresh_root("crash"));
    spec.chunk_format_version = 1;
    let mut cluster = spec.launch(env!("CARGO_BIN_EXE_waterwheel-node")).unwrap();
    let client = cluster.client();
    for i in 0..a_end {
        client.insert(tuple(i)).unwrap();
    }
    client.flush().unwrap();
    for i in a_end..b_end {
        client.insert(tuple(i)).unwrap();
    }
    // No flush: phase B is durable only as acked WAL frames (full
    // batches) plus the gateway's buffered partial batches.
    cluster.kill_nine(Role::Indexing).unwrap();
    cluster.set_chunk_format_version(2);
    cluster.restart(Role::Indexing).unwrap();
    for i in b_end..n {
        client.insert(tuple(i)).unwrap();
    }
    client.flush().unwrap();

    let after_indexing_crash = collect_answers(&client, n);
    assert_eq!(
        after_indexing_crash, oracle_answers,
        "indexing kill -9 + replay diverged from the uninterrupted run"
    );
    // The recovered store must genuinely mix formats: v1 chunks sealed
    // before the crash, v2 chunks sealed by the restarted process.
    let versions = chunk_versions_on_disk(&spec.root);
    assert!(
        versions.contains(&1) && versions.contains(&2),
        "expected a mixed-version store, found formats {versions:?}"
    );

    // Now the stateless role: kill the query process and re-ask
    // everything; chunk reads must come back identical.
    cluster.kill_nine(Role::Query).unwrap();
    cluster.restart(Role::Query).unwrap();
    let after_query_crash = collect_answers(&client, n);
    assert_eq!(
        after_query_crash, oracle_answers,
        "query kill -9 + restart diverged from the uninterrupted run"
    );

    // Both killed roles were restarted, so the retirement is clean.
    cluster.shutdown().unwrap();
}
