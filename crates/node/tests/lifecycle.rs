//! Process-lifecycle hygiene: shutdown's kill fallback and the stdin-EOF
//! orphan watchdog. Whatever happens to the launcher, no stray
//! `waterwheel-node` process may outlive these tests.

use std::io::BufRead;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use waterwheel_node::{ClusterSpec, NodeConfig, Role};

fn fresh_root(name: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("ww-node-life-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Polls until `child` exits or the deadline passes; returns whether it
/// exited.
fn exits_within(child: &mut std::process::Child, limit: Duration) -> bool {
    let deadline = Instant::now() + limit;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return true,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            _ => return false,
        }
    }
}

#[test]
fn shutdown_survives_an_already_killed_role_and_reports_dirty() {
    let spec = ClusterSpec::new(fresh_root("dirty"));
    let mut cluster = spec.launch(env!("CARGO_BIN_EXE_waterwheel-node")).unwrap();
    let addrs: Vec<_> = Role::ALL
        .iter()
        .map(|&r| cluster.addr(r).unwrap())
        .collect();

    // SIGKILL the query role and retire the cluster without restarting
    // it: shutdown must skip the dead role (not stall RPCing into the
    // void), retire the rest, and report the retirement as dirty.
    cluster.kill_nine(Role::Query).unwrap();
    let started = Instant::now();
    let err = cluster.shutdown().unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "shutdown stalled on the killed role"
    );
    assert!(
        err.to_string().contains("killed"),
        "unexpected error: {err}"
    );

    // Nothing is left listening on any role's port.
    for addr in addrs {
        let probe = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        assert!(
            probe.is_err(),
            "{addr} still listening after dirty shutdown"
        );
    }
}

#[test]
fn stdin_eof_watchdog_reaps_an_orphaned_node() {
    // Spawn a single meta-role node directly (no launcher, no peers) the
    // way ClusterSpec would, then close its stdin pipe: the node must
    // treat the EOF as "my launcher died" and exit on its own.
    let nc = NodeConfig::new(Role::Meta, "127.0.0.1:0", fresh_root("orphan"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_waterwheel-node"));
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    nc.apply_env(&mut cmd);
    let mut child = cmd.spawn().unwrap();

    // Wait for the ready handshake so the drop below races nothing.
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let ready = lines
        .find_map(|l| {
            let l = l.ok()?;
            l.strip_prefix("WW_NODE_READY ").map(str::to_owned)
        })
        .expect("node never reported ready");
    let addr: std::net::SocketAddr = ready.trim().parse().unwrap();

    // The launcher "dies": its end of the stdin pipe closes.
    drop(child.stdin.take());

    let exited = exits_within(&mut child, Duration::from_secs(10));
    if !exited {
        // Don't leak the stray we are complaining about.
        let _ = child.kill();
        let _ = child.wait();
    }
    assert!(exited, "orphaned node ignored stdin EOF");
    let probe = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(probe.is_err(), "orphan's listener survived its exit");
}
