//! Live elasticity over TCP: grow and shrink the indexing tier while
//! ingest and queries keep running, and prove the answers never waver.
//!
//! The growth test is the wire half of the migration oracle: a frozen
//! prefix of the stream is queried *continuously* while `add_node` runs
//! the live migration state machine twice (2 → 4 indexing processes), a
//! twin cluster that never migrates ingests the identical stream, and
//! every window is compared byte-exact between the two — including after
//! a `kill -9` of a migration source post-cutover.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_core::{AggregateKind, KeyInterval, QueryResult, TimeInterval, Tuple};
use waterwheel_node::{ClusterClient, ClusterSpec, Role, PAYLOAD_BYTE_ATTR};

fn fresh_root(name: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("ww-elastic-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Spreads keys uniformly over the whole domain so every indexing server
/// owns a share under any uniform schema (Weyl sequence).
fn key_of(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn tuple_of(i: u64) -> Tuple {
    Tuple::new(key_of(i), 1_000 + i, vec![(i % 251) as u8])
}

/// Canonical order for byte-exact comparison: results arrive merged from
/// different subquery fan-outs on the two clusters.
fn canon(mut r: QueryResult) -> Vec<Tuple> {
    r.tuples
        .sort_by(|a, b| (a.key, a.ts, a.payload.as_ref()).cmp(&(b.key, b.ts, b.payload.as_ref())));
    r.tuples
}

/// Runs a query with retries across retryable (membership-epoch race,
/// transient routing) errors; anything else fails the test.
fn query_retry(
    client: &ClusterClient,
    keys: KeyInterval,
    times: TimeInterval,
    deadline: Duration,
) -> QueryResult {
    let until = Instant::now() + deadline;
    loop {
        match client.query(keys, times) {
            Ok(r) => return r,
            Err(e) if e.is_retryable() && Instant::now() < until => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("query failed non-retryably: {e}"),
        }
    }
}

/// Every comparison window the oracle checks: full scan, a key slice, a
/// time slice, and a joint slice.
fn windows() -> Vec<(KeyInterval, TimeInterval)> {
    vec![
        (KeyInterval::full(), TimeInterval::full()),
        (KeyInterval::new(0, u64::MAX / 3), TimeInterval::full()),
        (KeyInterval::full(), TimeInterval::new(1_100, 1_400)),
        (
            KeyInterval::new(u64::MAX / 4, u64::MAX / 2),
            TimeInterval::new(1_000, 1_700),
        ),
    ]
}

fn assert_twin_exact(grown: &ClusterClient, twin: &ClusterClient, what: &str) {
    for (keys, times) in windows() {
        let a = canon(query_retry(grown, keys, times, Duration::from_secs(30)));
        let b = canon(query_retry(twin, keys, times, Duration::from_secs(30)));
        assert_eq!(
            a.len(),
            b.len(),
            "{what}: window {keys:?}/{times:?} cardinality diverged"
        );
        assert_eq!(a, b, "{what}: window {keys:?}/{times:?} bytes diverged");
    }
    // Attr-eq through the secondary-index path (every node process
    // registers the payload-byte attribute).
    let a = canon(
        grown
            .query_attr(
                KeyInterval::full(),
                TimeInterval::full(),
                PAYLOAD_BYTE_ATTR,
                7,
            )
            .unwrap(),
    );
    let b = canon(
        twin.query_attr(
            KeyInterval::full(),
            TimeInterval::full(),
            PAYLOAD_BYTE_ATTR,
            7,
        )
        .unwrap(),
    );
    assert_eq!(a, b, "{what}: attr-eq window diverged");
    let a = grown
        .aggregate(
            KeyInterval::full(),
            TimeInterval::full(),
            AggregateKind::Count,
        )
        .unwrap();
    let b = twin
        .aggregate(
            KeyInterval::full(),
            TimeInterval::full(),
            AggregateKind::Count,
        )
        .unwrap();
    assert_eq!(a.agg.count, b.agg.count, "{what}: COUNT diverged");
}

#[test]
fn add_node_migrates_live_with_byte_exact_answers() {
    let root = fresh_root("add");
    let twin_root = fresh_root("add-twin");
    let mut spec = ClusterSpec::new(&root);
    spec.indexing_servers = 2;
    spec.indexing_processes = 2; // one server per process: per-slice = 1
    spec.query_servers = 2;
    spec.query_processes = 2;
    spec.chunk_size_bytes = 32 * 1_024;
    spec.heartbeat_interval = Duration::from_millis(100);
    spec.lease_ttl = Duration::from_millis(1_500);
    let mut twin_spec = spec.clone();
    twin_spec.root = twin_root.clone();

    let bin = env!("CARGO_BIN_EXE_waterwheel-node");
    let mut cluster = spec.launch(bin).unwrap();
    let twin = twin_spec.launch(bin).unwrap();
    let client = cluster.client();
    let twin_client = twin.client();

    // Frozen prefix: fully ingested, flushed, and acked before any
    // migration starts. Its windows are the invariant the continuous
    // oracle holds against the moving cluster.
    const FROZEN: u64 = 600;
    for i in 0..FROZEN {
        client.insert(tuple_of(i)).unwrap();
        twin_client.insert(tuple_of(i)).unwrap();
    }
    client.flush().unwrap();
    twin_client.flush().unwrap();

    // Continuous oracle: hammer the frozen windows while ownership moves.
    let stop = Arc::new(AtomicBool::new(false));
    let oracle = {
        let stop = Arc::clone(&stop);
        let client = cluster.client();
        std::thread::spawn(move || {
            let frozen_times = TimeInterval::new(1_000, 1_000 + FROZEN - 1);
            let mut rounds = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let full = query_retry(
                    &client,
                    KeyInterval::full(),
                    frozen_times,
                    Duration::from_secs(30),
                );
                assert_eq!(
                    full.tuples.len() as u64,
                    FROZEN,
                    "frozen window lost or duplicated tuples mid-migration"
                );
                let narrow = query_retry(
                    &client,
                    KeyInterval::new(0, u64::MAX / 3),
                    frozen_times,
                    Duration::from_secs(30),
                );
                let expect = (0..FROZEN).filter(|&i| key_of(i) <= u64::MAX / 3).count();
                assert_eq!(
                    narrow.tuples.len(),
                    expect,
                    "frozen key-slice diverged mid-migration"
                );
                rounds += 1;
            }
            rounds
        })
    };

    // Concurrent ingest: the stream keeps flowing into both clusters
    // while the grown one migrates.
    let ingested = Arc::new(AtomicU64::new(FROZEN));
    let ingest = {
        let stop = Arc::clone(&stop);
        let ingested = Arc::clone(&ingested);
        let client = cluster.client();
        let twin_client = twin.client();
        std::thread::spawn(move || {
            let mut i = FROZEN;
            while !stop.load(Ordering::SeqCst) && i < FROZEN + 2_000 {
                client.insert(tuple_of(i)).unwrap();
                twin_client.insert(tuple_of(i)).unwrap();
                ingested.store(i + 1, Ordering::SeqCst);
                i += 1;
            }
        })
    };

    // Grow 2 → 3 → 4 indexing processes, live. Each call runs the full
    // state machine: snapshot-ship, schema cut-over, straggler drain.
    let before = client.membership().unwrap();
    let e1 = cluster.add_node().unwrap();
    let e2 = cluster.add_node().unwrap();
    assert!(
        before.epoch < e1 && e1 < e2,
        "membership epoch must advance with each join+cutover ({} → {e1} → {e2})",
        before.epoch
    );

    // Let the oracle observe the post-cutover world too, then quiesce.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::SeqCst);
    ingest.join().unwrap();
    let rounds = oracle.join().unwrap();
    assert!(rounds > 0, "oracle never ran during the migration");

    // The grown cluster now spans 4 indexing processes; a fresh client
    // routes to all of them and the membership shows every joiner.
    let client = cluster.client();
    let view = client.membership().unwrap();
    assert_eq!(view.indexing_ids().len(), 4, "joiners missing from view");
    let total = ingested.load(Ordering::SeqCst);
    client.flush().unwrap();
    twin_client.flush().unwrap();
    let full = client
        .query(KeyInterval::full(), TimeInterval::full())
        .unwrap();
    assert_eq!(full.tuples.len() as u64, total, "grown cluster lost tuples");
    assert_twin_exact(&client, &twin_client, "post-migration");

    // Kill -9 a migration *source* (proc 0 hosted ServerId 0, which gave
    // up ranges at both cut-overs). Everything it ever held is sealed in
    // globally-reachable chunks; once its lease lapses and the epoch
    // bumps, answers come from the survivors — still byte-exact.
    cluster.kill_nine(Role::Indexing).unwrap();
    std::thread::sleep(spec.lease_ttl + Duration::from_millis(500));
    assert_twin_exact(&client, &twin_client, "post-kill-9-of-source");

    let _ = cluster.shutdown(); // the killed source makes this deliberately dirty
    twin.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&twin_root);
}

#[test]
fn drain_node_moves_ownership_before_retiring_the_process() {
    let root = fresh_root("drain");
    let mut spec = ClusterSpec::new(&root);
    spec.indexing_servers = 2;
    spec.indexing_processes = 2;
    spec.chunk_size_bytes = 32 * 1_024;
    spec.heartbeat_interval = Duration::from_millis(100);
    spec.lease_ttl = Duration::from_millis(1_500);
    let mut cluster = spec.launch(env!("CARGO_BIN_EXE_waterwheel-node")).unwrap();
    let client = cluster.client();

    const N: u64 = 500;
    for i in 0..N {
        client.insert(tuple_of(i)).unwrap();
    }
    client.flush().unwrap();

    let before = client.membership().unwrap();
    assert_eq!(before.indexing_ids().len(), 2);
    let epoch = cluster.drain_node().unwrap();
    assert!(epoch > before.epoch, "drain must advance the epoch");

    // The survivor owns everything: the stream keeps flowing and every
    // tuple — drained era and after — stays exactly queryable.
    let client = cluster.client();
    assert_eq!(
        client.membership().unwrap().indexing_ids().len(),
        1,
        "victim servers still in the membership after drain"
    );
    for i in N..N + 200 {
        client.insert(tuple_of(i)).unwrap();
    }
    client.flush().unwrap();
    let full = query_retry(
        &client,
        KeyInterval::full(),
        TimeInterval::full(),
        Duration::from_secs(30),
    );
    assert_eq!(full.tuples.len() as u64, N + 200, "drain lost tuples");
    let count = client
        .aggregate(
            KeyInterval::full(),
            TimeInterval::full(),
            AggregateKind::Count,
        )
        .unwrap();
    assert_eq!(count.agg.count, N + 200);

    cluster.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}
