//! Multi-process Waterwheel: the paper's deployment shape (§II-B,
//! Figure 3) with each server role in its own OS process, talking over
//! real TCP sockets via the `waterwheel-net` wire codec.
//!
//! Four roles partition the embedded system's objects:
//!
//! | Role | Binds | Owns |
//! |---|---|---|
//! | `meta` | `META_SERVER` | durable [`MetadataService`](waterwheel_meta::MetadataService), bootstrap partition schema |
//! | `indexing` | indexing ids `0..` | ingestion queue, in-memory trees, pumps, chunk flushing |
//! | `query` | query ids `1000..` | chunk subquery execution over the shared DFS root |
//! | `dispatcher` | dispatcher ids `2000..` + `COORDINATOR` | ingest routing, query decomposition, client gateway |
//!
//! Every process rebuilds the same deterministic layout (cluster
//! placement, server ids, uniform partition schema) from a handful of
//! counts, so no process needs the others' in-memory state — only their
//! addresses (a peer map) and the shared filesystem root where chunks and
//! metadata live.
//!
//! [`ClusterSpec::launch`](spec::ClusterSpec::launch) spawns the four
//! roles as children of the calling process and returns a
//! [`ClusterClient`](spec::ClusterClient) speaking the client RPC verbs
//! (`Ingest`, `Flush`, `ClientQuery`, `ClientAggregate`, `Shutdown`).
//! The `waterwheel-node` binary wraps the same runtime behind a CLI, and
//! its `smoke` subcommand runs a self-contained loopback cluster check.

#![warn(missing_docs)]

pub mod runtime;
pub mod spec;

pub use runtime::{run_node, NodeConfig, Role, PAYLOAD_BYTE_ATTR};
pub use spec::{ClusterClient, ClusterHandle, ClusterSpec};

/// If this process was spawned as a cluster node (the `WW_NODE_ROLE`
/// environment variable is set), runs the node role to completion and
/// exits — never returns. A no-op otherwise.
///
/// Call this first in `main` of any binary passed to
/// [`ClusterSpec::launch`](spec::ClusterSpec::launch): the launcher
/// re-executes that binary with the role environment set, so examples and
/// tests can self-host a cluster without a separate node executable.
pub fn maybe_run_child() {
    if std::env::var_os("WW_NODE_ROLE").is_none() {
        return;
    }
    let cfg = match NodeConfig::from_env() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("waterwheel-node: bad WW_NODE_* environment: {e}");
            std::process::exit(2);
        }
    };
    match run_node(cfg) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("waterwheel-node: {e}");
            std::process::exit(1);
        }
    }
}
