//! The per-process node runtime: rebuild the deterministic layout, bind
//! this role's handlers into a [`HandlerRegistry`], and serve them over a
//! TCP listener until a `Shutdown` RPC (or losing the launcher's stdin
//! pipe) tears the process down.

use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;
use waterwheel_cluster::{Cluster, LatencyModel};
use waterwheel_core::{KeyInterval, NodeId, Query, Result, ServerId, SystemConfig, WwError};
use waterwheel_meta::{MemberRole, MetadataService, PartitionSchema};
use waterwheel_mq::{Consumer, MessageQueue};
use waterwheel_net::{
    serve_meta, HandlerRegistry, MetaClient, Request, Response, RpcClient, TcpRpcServer,
    TcpTransport, Transport, WireStats, COORDINATOR, META_SERVER,
};
use waterwheel_server::{
    AttrRegistry, Coordinator, DispatchPolicy, Dispatcher, IndexingServer, QueryServer,
};
use waterwheel_storage::SimDfs;
use waterwheel_wal::FsyncPolicy;

/// Name of the ingestion topic (must match the embedded system's).
const INGEST_TOPIC: &str = "ingest";

/// The well-known secondary attribute (paper §VIII) every node process
/// registers deterministically: the first payload byte. Indexing
/// processes build bloom/bitmap indexes for it at flush time and the
/// coordinator prunes `attr == value` queries through them — no dynamic
/// registration RPC is needed because both sides rebuild the same
/// extractor from this constant.
pub const PAYLOAD_BYTE_ATTR: u16 = 1;

fn register_well_known_attrs(attrs: &AttrRegistry) {
    attrs.register(PAYLOAD_BYTE_ATTR, |t| {
        t.payload.first().map(|b| u64::from(*b))
    });
}

/// Which server group a node process hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The metadata service (ZooKeeper's seat, §II-B).
    Meta,
    /// All indexing servers plus the ingestion queue.
    Indexing,
    /// All query servers.
    Query,
    /// All dispatchers plus the query coordinator — the client gateway.
    Dispatcher,
}

impl Role {
    /// Every role, in launch order (dependencies first).
    pub const ALL: [Role; 4] = [Role::Meta, Role::Indexing, Role::Query, Role::Dispatcher];

    /// The CLI/env spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Meta => "meta",
            Role::Indexing => "indexing",
            Role::Query => "query",
            Role::Dispatcher => "dispatcher",
        }
    }

    /// Parses the CLI/env spelling.
    pub fn parse(s: &str) -> Option<Role> {
        Role::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything a node process needs to take its place in the cluster.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This process's role.
    pub role: Role,
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Shared filesystem root (chunks + metadata snapshot).
    pub root: PathBuf,
    /// Indexing-server count (identical in every process).
    pub indexing_servers: usize,
    /// Query-server count.
    pub query_servers: usize,
    /// Dispatcher count.
    pub dispatchers: usize,
    /// Simulated cluster nodes.
    pub nodes: usize,
    /// Chunk size driving flush boundaries.
    pub chunk_size_bytes: usize,
    /// Whether durable surfaces (queue WAL, chunk seals, metadata log)
    /// fsync on commit; see `SystemConfig::durability_fsync`.
    pub durability_fsync: bool,
    /// WAL segment size bounding log files and the metadata compaction
    /// threshold; see `SystemConfig::wal_segment_bytes`.
    pub wal_segment_bytes: usize,
    /// On-disk chunk format newly flushed chunks are written in; see
    /// `SystemConfig::chunk_format_version`. Readers dispatch per chunk,
    /// so a store may legitimately mix versions across restarts.
    pub chunk_format_version: u32,
    /// How many OS processes share the indexing role. Each hosts a
    /// contiguous `indexing_servers / indexing_processes` slice of the
    /// server ids, so growing the cluster by one process never moves an
    /// existing process's slice.
    pub indexing_processes: usize,
    /// How many OS processes share the query role (same slicing rule).
    pub query_processes: usize,
    /// Which slice of its role this process hosts (`0..processes`). Meta
    /// and dispatcher are single-process and ignore it.
    pub proc_index: usize,
    /// Membership lease renewal cadence (`SystemConfig::heartbeat_interval`).
    pub heartbeat_interval: Duration,
    /// Membership lease duration (`SystemConfig::lease_ttl`).
    pub lease_ttl: Duration,
    /// Addresses of the role processes this one calls into, as
    /// `(role, proc_index, addr)`.
    pub peers: Vec<(Role, usize, SocketAddr)>,
}

impl NodeConfig {
    /// A config with the given role/listen/root and default counts.
    pub fn new(role: Role, listen: impl Into<String>, root: impl Into<PathBuf>) -> Self {
        let cfg = SystemConfig::default();
        Self {
            role,
            listen: listen.into(),
            root: root.into(),
            indexing_servers: cfg.indexing_servers,
            query_servers: cfg.query_servers,
            dispatchers: cfg.dispatchers,
            nodes: 4,
            chunk_size_bytes: cfg.chunk_size_bytes,
            durability_fsync: cfg.durability_fsync,
            wal_segment_bytes: cfg.wal_segment_bytes,
            chunk_format_version: cfg.chunk_format_version,
            indexing_processes: 1,
            query_processes: 1,
            proc_index: 0,
            heartbeat_interval: cfg.heartbeat_interval,
            lease_ttl: cfg.lease_ttl,
            peers: Vec::new(),
        }
    }

    /// Reads the `WW_NODE_*` environment contract written by
    /// [`ClusterSpec::launch`](crate::spec::ClusterSpec::launch).
    pub fn from_env() -> std::result::Result<Self, String> {
        let var = |k: &str| std::env::var(k).map_err(|_| format!("{k} is not set"));
        let num = |k: &str| -> std::result::Result<usize, String> {
            var(k)?.parse().map_err(|e| format!("{k}: {e}"))
        };
        let role = var("WW_NODE_ROLE")?;
        let role = Role::parse(&role).ok_or_else(|| format!("unknown role {role:?}"))?;
        let mut peers = Vec::new();
        for part in var("WW_NODE_PEERS").unwrap_or_default().split(',') {
            if part.is_empty() {
                continue;
            }
            let (r, addr) = part
                .split_once('=')
                .ok_or_else(|| format!("peer {part:?} is not role[:proc]=addr"))?;
            // `role:IDX=addr` names one process of a multi-process role;
            // bare `role=addr` (older launchers) means its first process.
            let (r, idx) = match r.split_once(':') {
                Some((r, idx)) => (
                    r,
                    idx.parse::<usize>()
                        .map_err(|e| format!("peer {part:?}: {e}"))?,
                ),
                None => (r, 0),
            };
            let r = Role::parse(r).ok_or_else(|| format!("unknown peer role {r:?}"))?;
            let addr = addr.parse().map_err(|e| format!("peer {part:?}: {e}"))?;
            peers.push((r, idx, addr));
        }
        // Durability knobs are optional in the contract (older launchers
        // omit them): absent means the SystemConfig defaults.
        let defaults = SystemConfig::default();
        let durability_fsync = match std::env::var("WW_NODE_FSYNC") {
            Ok(v) => v != "0",
            Err(_) => defaults.durability_fsync,
        };
        let wal_segment_bytes = match std::env::var("WW_NODE_WAL_SEG") {
            Ok(v) => v.parse().map_err(|e| format!("WW_NODE_WAL_SEG: {e}"))?,
            Err(_) => defaults.wal_segment_bytes,
        };
        let chunk_format_version = match std::env::var("WW_NODE_CHUNK_FORMAT") {
            Ok(v) => v
                .parse()
                .map_err(|e| format!("WW_NODE_CHUNK_FORMAT: {e}"))?,
            Err(_) => defaults.chunk_format_version,
        };
        // Elasticity knobs are likewise optional: absent means one process
        // per role and the default lease cadence.
        let opt_num = |k: &str, default: usize| -> std::result::Result<usize, String> {
            match std::env::var(k) {
                Ok(v) => v.parse().map_err(|e| format!("{k}: {e}")),
                Err(_) => Ok(default),
            }
        };
        let opt_ms = |k: &str, default: Duration| -> std::result::Result<Duration, String> {
            match std::env::var(k) {
                Ok(v) => v
                    .parse()
                    .map(Duration::from_millis)
                    .map_err(|e| format!("{k}: {e}")),
                Err(_) => Ok(default),
            }
        };
        let indexing_processes = opt_num("WW_NODE_IX_PROCS", 1)?;
        let query_processes = opt_num("WW_NODE_QS_PROCS", 1)?;
        let proc_index = opt_num("WW_NODE_PROC", 0)?;
        let heartbeat_interval = opt_ms("WW_NODE_HB_MS", defaults.heartbeat_interval)?;
        let lease_ttl = opt_ms("WW_NODE_LEASE_MS", defaults.lease_ttl)?;
        Ok(Self {
            role,
            listen: var("WW_NODE_LISTEN")?,
            root: PathBuf::from(var("WW_NODE_ROOT")?),
            indexing_servers: num("WW_NODE_IX")?,
            query_servers: num("WW_NODE_QS")?,
            dispatchers: num("WW_NODE_DISP")?,
            nodes: num("WW_NODE_NODES")?,
            chunk_size_bytes: num("WW_NODE_CHUNK_BYTES")?,
            durability_fsync,
            wal_segment_bytes,
            chunk_format_version,
            indexing_processes,
            query_processes,
            proc_index,
            heartbeat_interval,
            lease_ttl,
            peers,
        })
    }

    /// Writes the environment contract onto a child command.
    pub fn apply_env(&self, cmd: &mut std::process::Command) {
        let peers: Vec<String> = self
            .peers
            .iter()
            .map(|(r, idx, a)| format!("{}:{idx}={a}", r.as_str()))
            .collect();
        cmd.env("WW_NODE_ROLE", self.role.as_str())
            .env("WW_NODE_LISTEN", &self.listen)
            .env("WW_NODE_ROOT", &self.root)
            .env("WW_NODE_IX", self.indexing_servers.to_string())
            .env("WW_NODE_QS", self.query_servers.to_string())
            .env("WW_NODE_DISP", self.dispatchers.to_string())
            .env("WW_NODE_NODES", self.nodes.to_string())
            .env("WW_NODE_CHUNK_BYTES", self.chunk_size_bytes.to_string())
            .env(
                "WW_NODE_FSYNC",
                if self.durability_fsync { "1" } else { "0" },
            )
            .env("WW_NODE_WAL_SEG", self.wal_segment_bytes.to_string())
            .env(
                "WW_NODE_CHUNK_FORMAT",
                self.chunk_format_version.to_string(),
            )
            .env("WW_NODE_IX_PROCS", self.indexing_processes.to_string())
            .env("WW_NODE_QS_PROCS", self.query_processes.to_string())
            .env("WW_NODE_PROC", self.proc_index.to_string())
            .env(
                "WW_NODE_HB_MS",
                self.heartbeat_interval.as_millis().to_string(),
            )
            .env("WW_NODE_LEASE_MS", self.lease_ttl.as_millis().to_string())
            .env("WW_NODE_PEERS", peers.join(","));
    }
}

/// Indexing-server ids for a cluster with `n` of them (`0..`).
pub fn indexing_ids(n: usize) -> Vec<ServerId> {
    (0..n as u32).map(ServerId).collect()
}

/// Query-server ids (`1000..`).
pub fn query_ids(n: usize) -> Vec<ServerId> {
    (0..n as u32).map(|i| ServerId(1_000 + i)).collect()
}

/// Dispatcher ids (`2000..`).
pub fn dispatcher_ids(n: usize) -> Vec<ServerId> {
    (0..n as u32).map(|i| ServerId(2_000 + i)).collect()
}

/// The contiguous slice of a role's server ids hosted by process `p` of
/// `n`. Launchers keep `ids.len()` divisible by `n`, so slices are
/// equal-sized — and because growth adds whole slices at the top, an
/// existing process's slice never moves when the cluster grows.
pub fn slice_ids(ids: &[ServerId], p: usize, n: usize) -> Vec<ServerId> {
    let per = ids.len() / n.max(1);
    ids.iter().skip(p * per).take(per).copied().collect()
}

/// The deterministic layout every process rebuilds identically: system
/// config, simulated cluster with server placement, and the id vectors.
struct Layout {
    cfg: SystemConfig,
    cluster: Cluster,
    ix_ids: Vec<ServerId>,
    qs_ids: Vec<ServerId>,
    disp_ids: Vec<ServerId>,
    ix_procs: usize,
    qs_procs: usize,
}

impl Layout {
    fn new(nc: &NodeConfig) -> Result<Self> {
        let mut cfg = SystemConfig::default();
        cfg.indexing_servers = nc.indexing_servers;
        cfg.query_servers = nc.query_servers;
        cfg.dispatchers = nc.dispatchers;
        cfg.chunk_size_bytes = nc.chunk_size_bytes;
        cfg.durability_fsync = nc.durability_fsync;
        cfg.wal_segment_bytes = nc.wal_segment_bytes;
        cfg.chunk_format_version = nc.chunk_format_version;
        cfg.heartbeat_interval = nc.heartbeat_interval;
        cfg.lease_ttl = nc.lease_ttl;
        // Nested flush RPCs (gateway → indexing pump-until-empty) can
        // outlive the embedded default; loopback never needs to give up
        // that early.
        cfg.rpc_timeout = std::time::Duration::from_secs(10);
        cfg.validate().map_err(WwError::Config)?;
        let ix_procs = nc.indexing_processes.max(1);
        let qs_procs = nc.query_processes.max(1);
        if cfg.indexing_servers % ix_procs != 0 || cfg.query_servers % qs_procs != 0 {
            return Err(WwError::Config(
                "server counts must divide evenly across role processes".into(),
            ));
        }
        let cluster = Cluster::new(nc.nodes.max(1));
        let ix_ids = indexing_ids(cfg.indexing_servers);
        let qs_ids = query_ids(cfg.query_servers);
        let disp_ids = dispatcher_ids(cfg.dispatchers);
        // Same placement order as the embedded builder: query servers
        // first, then indexing servers.
        cluster.place_servers_round_robin(qs_ids.iter().copied());
        cluster.place_servers_round_robin(ix_ids.iter().copied());
        Ok(Self {
            cfg,
            cluster,
            ix_ids,
            qs_ids,
            disp_ids,
            ix_procs,
            qs_procs,
        })
    }

    /// The indexing-server ids process `p` hosts.
    fn hosted_ix(&self, p: usize) -> Vec<ServerId> {
        slice_ids(&self.ix_ids, p, self.ix_procs)
    }

    /// The query-server ids process `p` hosts.
    fn hosted_qs(&self, p: usize) -> Vec<ServerId> {
        slice_ids(&self.qs_ids, p, self.qs_procs)
    }
}

/// Builds the client transport with the peer map routing every server id
/// to the process hosting it.
fn peer_transport(nc: &NodeConfig, layout: &Layout) -> Arc<TcpTransport> {
    let t = Arc::new(TcpTransport::with_options(
        Arc::new(WireStats::default()),
        waterwheel_net::TcpClientOptions {
            reactor_threads: layout.cfg.net_reactor_threads,
            pool_idle_timeout: layout.cfg.net_pool_idle_timeout,
            pool_max_connections: layout.cfg.net_pool_max_connections,
        },
    ));
    route_peers(&t, &nc.peers, layout);
    t
}

fn route_peers(t: &TcpTransport, peers: &[(Role, usize, SocketAddr)], layout: &Layout) {
    for &(role, idx, addr) in peers {
        match role {
            Role::Meta => t.add_peer(META_SERVER, addr),
            Role::Indexing => t.add_peers(layout.hosted_ix(idx), addr),
            Role::Query => t.add_peers(layout.hosted_qs(idx), addr),
            Role::Dispatcher => {
                t.add_peers(layout.disp_ids.iter().copied(), addr);
                t.add_peer(COORDINATOR, addr);
            }
        }
    }
}

/// Installs freshly announced `(server id, address)` routes on this
/// process's shared transport — how an already-running process learns
/// about servers that joined after it launched.
fn add_wire_peers(t: &TcpTransport, peers: &[(ServerId, String)]) -> Result<()> {
    for (id, addr) in peers {
        let addr: SocketAddr = addr.parse().map_err(|_| {
            WwError::InvalidState(format!("unparseable announced peer address {addr:?}"))
        })?;
        t.add_peer(*id, addr);
    }
    Ok(())
}

/// Receiver-side dedup for retried ingest batches, mirroring the embedded
/// system's exactly-once contract: a `(src, dst)` link's batch sequence
/// numbers land at most once.
struct BatchDedup {
    last_seq: Mutex<HashMap<(ServerId, ServerId), u64>>,
}

impl BatchDedup {
    fn new() -> Self {
        Self {
            last_seq: Mutex::new(HashMap::new()),
        }
    }

    /// Seeds the dedup table from recovered WAL markers: a restarted
    /// indexing process must recognise redeliveries of batches whose
    /// append was durable before the crash but whose ack was lost.
    fn seed(&self, src: ServerId, dst: ServerId, seq: u64) {
        let mut last = self.last_seq.lock();
        let e = last.entry((src, dst)).or_insert(seq);
        *e = (*e).max(seq);
    }

    fn apply_once(
        &self,
        src: ServerId,
        dst: ServerId,
        seq: u64,
        apply: impl FnOnce() -> Result<()>,
    ) -> Result<bool> {
        let mut last = self.last_seq.lock();
        if last.get(&(src, dst)).is_some_and(|&l| seq <= l) {
            return Ok(true);
        }
        apply()?;
        last.insert((src, dst), seq);
        Ok(false)
    }
}

/// Spawns the background thread renewing the membership leases of every
/// server this process hosts (ZooKeeper's ephemeral nodes, §II-B): a
/// heartbeat per interval while running, a graceful `leave` per server on
/// clean shutdown. Renewal errors are ignored — if the lease already
/// lapsed (a long stall), the metadata server has evicted this member and
/// the operator restarts the process rather than having it fight a
/// cluster that moved on. Callers hand this a *short-deadline, no-retry*
/// meta client: a heartbeat that misses one interval is harmless, and the
/// farewell `leave` must not stall process teardown when the metadata
/// server is already gone.
fn spawn_lease_keeper(
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    stop: &Arc<AtomicBool>,
    meta: MetaClient,
    ids: Vec<ServerId>,
    heartbeat: Duration,
    ttl: Duration,
) {
    let stop = Arc::clone(stop);
    handles.push(std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(heartbeat);
            for &id in &ids {
                let _ = meta.heartbeat(id, ttl);
            }
        }
        for &id in &ids {
            let _ = meta.leave(id);
        }
    }));
}

/// Fetches the partition schema from the metadata process (bootstrapped
/// there before it reports ready).
fn fetch_schema(meta: &MetaClient) -> Result<PartitionSchema> {
    meta.partition()?
        .ok_or_else(|| WwError::InvalidState("metadata process has no partition schema yet".into()))
}

/// The gateway side of the live key-range migration state machine
/// (`Request::MigrateUniform`): rebalance ownership uniformly across the
/// *current* indexing membership.
///
/// Three steps, answers stay byte-exact throughout:
///
/// 1. **snapshot ship** — seal every source server's in-memory tree into
///    chunks; sealed chunks are globally reachable through the shared DFS,
///    so the new owner serves them without a peer-to-peer copy;
/// 2. **cut over** — publish the bumped schema to the metadata server
///    (the durable cut-over record a crashed process recovers from), swap
///    it into the local dispatchers, and `Reassign` every indexing server
///    to its new interval. Tuples that raced the swap land on the old
///    owner and stay queryable from its in-memory overlap (§III-D);
/// 3. **straggler drain** — flush the sources once more so anything
///    dual-written during the window is sealed, then refresh the
///    coordinator's routing table.
fn migrate_to_uniform(
    meta: &MetaClient,
    dispatchers: &[Arc<Dispatcher>],
    coordinator: &Coordinator,
    control: &RpcClient,
    fallback_ix: &[ServerId],
) -> Result<Response> {
    let view = meta.membership()?;
    let mut ix = view.indexing_ids();
    if ix.is_empty() {
        ix = fallback_ix.to_vec();
    }
    let old = meta
        .partition()?
        .unwrap_or_else(|| PartitionSchema::uniform(&ix));
    let mut schema = PartitionSchema::uniform(&ix);
    schema.version = old.version + 1;
    let moves = waterwheel_server::diff_moves(&old, &schema);
    if moves.is_empty() {
        return Ok(Response::Migrated {
            epoch: view.epoch,
            ranges: 0,
        });
    }
    for d in dispatchers {
        d.flush_batches()?;
    }
    let sources: BTreeSet<ServerId> = moves.iter().map(|m| m.from).collect();
    for &src in &sources {
        dispatchers[0].flush(src)?;
    }
    meta.set_partition(schema.clone())?;
    for d in dispatchers {
        d.update_schema(schema.clone());
    }
    for &id in &ix {
        if let Some(interval) = schema.interval_of(id) {
            control
                .call(id, Request::Reassign { interval })?
                .into_ack()?;
        }
    }
    for &src in &sources {
        dispatchers[0].flush(src)?;
    }
    let epoch = coordinator.refresh_membership()?;
    Ok(Response::Migrated {
        epoch,
        ranges: moves.len() as u32,
    })
}

/// Runs one node role until shut down. Prints `WW_NODE_READY <addr>` once
/// the listener is accepting, answers RPCs, and returns after a
/// [`Request::Shutdown`] lands or the launcher's stdin pipe closes.
pub fn run_node(nc: NodeConfig) -> Result<()> {
    let layout = Layout::new(&nc)?;
    let registry = Arc::new(HandlerRegistry::new());
    // Every node process guards its handlers with the same class-aware
    // admission controller the embedded system installs: overload sheds
    // typed `Overloaded` answers instead of queueing without bound.
    registry.set_admission(Arc::new(waterwheel_server::AdmissionController::new(
        &layout.cfg,
    )));
    let wire = Arc::new(WireStats::default());
    let transport = peer_transport(&nc, &layout);
    let rpc_for = |src: ServerId| {
        RpcClient::new(
            Arc::clone(&transport) as Arc<dyn Transport>,
            src,
            &layout.cfg,
        )
    };
    // Lease traffic gets its own client: deadline of one heartbeat, no
    // retries. Losing a renewal is harmless (the next interval covers it),
    // and the farewell `leave` must not stall process teardown for a full
    // RPC deadline when the metadata process is already gone.
    let lease_rpc_for = |src: ServerId| {
        let mut cfg = layout.cfg.clone();
        cfg.rpc_timeout = cfg.heartbeat_interval;
        cfg.rpc_retries = 0;
        RpcClient::new(Arc::clone(&transport) as Arc<dyn Transport>, src, &cfg)
    };

    let pumps_stop = Arc::new(AtomicBool::new(false));
    let mut pump_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

    match nc.role {
        Role::Meta => {
            let meta = MetadataService::open_with(
                nc.root.join("meta.snapshot"),
                FsyncPolicy::from_flag(layout.cfg.durability_fsync),
                layout.cfg.wal_segment_bytes,
            )?;
            // Bootstrap the uniform schema exactly like the embedded
            // builder, so every later-starting role finds it.
            if meta.partition().is_none() {
                let mut s = PartitionSchema::uniform(&layout.ix_ids);
                s.version = 1;
                meta.set_partition(s)?;
            }
            // Lease sweeper: members that stop heartbeating (a kill -9'd
            // process, a partitioned node) are evicted after the TTL and
            // the membership epoch bumps, so routing tables converge on
            // the survivors without operator action.
            {
                let meta = meta.clone();
                let stop = Arc::clone(&pumps_stop);
                let hb = layout.cfg.heartbeat_interval;
                let grace = layout.cfg.lease_ttl;
                pump_handles.push(std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(hb);
                        let _ = meta.expire_lapsed_leases(grace);
                    }
                }));
            }
            serve_meta(&registry, meta);
        }
        Role::Indexing => {
            let hosted = layout.hosted_ix(nc.proc_index);
            // The §V durability boundary: the ingest queue is a WAL under
            // the node root. Acked batches commit (marker + tuples in one
            // frame) before the ack leaves, so a kill -9 after the ack
            // cannot lose them — the restarted process replays this log
            // from each server's durable offset. Each indexing process
            // owns its own queue directory (partition files must not be
            // shared across processes); the first keeps the legacy "mq"
            // name so single-process stores recover across upgrades.
            let policy = FsyncPolicy::from_flag(layout.cfg.durability_fsync);
            let mq_dir = if nc.proc_index == 0 {
                "mq".to_string()
            } else {
                format!("mq-p{}", nc.proc_index)
            };
            let mq = MessageQueue::durable_with(
                nc.root.join(mq_dir),
                policy,
                layout.cfg.wal_segment_bytes,
            )?;
            mq.create_topic(INGEST_TOPIC, layout.cfg.indexing_servers)?;
            let dfs = SimDfs::new(
                nc.root.join("chunks"),
                layout.cluster.clone(),
                layout.cfg.dfs_replication.min(nc.nodes.max(1)),
                LatencyModel::default(),
            )?
            .with_fsync(policy);
            let meta = MetaClient::new(rpc_for(hosted[0]));
            let schema = fetch_schema(&meta)?;
            let attrs = Arc::new(AttrRegistry::new());
            register_well_known_attrs(&attrs);
            let dedup = Arc::new(BatchDedup::new());
            for &id in &hosted {
                // Global queue-partition index: indexing ids are `0..n`,
                // so the raw id doubles as the partition number even when
                // this process hosts only a slice of them.
                let i = id.raw() as usize;
                // A server joining an elastic cluster may not be in the
                // published schema yet — it owns nothing until the first
                // `MigrateUniform` cut-over reassigns it, so any
                // placeholder interval works; `full()` keeps the template
                // tree's fan-out shape sensible.
                let interval = schema.interval_of(id).unwrap_or_else(KeyInterval::full);
                // Recovery: resume consuming at the offset the last chunk
                // registration persisted, and remember which batch
                // sequence numbers already landed in the WAL.
                let offset = meta.durable_offset(id)?;
                for (src, seq) in mq.recovered_seqs(INGEST_TOPIC, i)? {
                    dedup.seed(ServerId(src), id, seq);
                }
                let server = Arc::new(IndexingServer::new(
                    id,
                    interval,
                    layout.cfg.clone(),
                    Consumer::new(mq.clone(), INGEST_TOPIC, i, offset),
                    dfs.clone(),
                    MetaClient::new(rpc_for(id)),
                ));
                server.set_attr_registry(Arc::clone(&attrs));
                // Background pump: the Storm executor keeping freshly
                // queued tuples queryable without waiting for a flush.
                {
                    let server = Arc::clone(&server);
                    let stop = Arc::clone(&pumps_stop);
                    pump_handles.push(std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            match server.pump(1_024) {
                                Ok(0) | Err(_) => {
                                    std::thread::sleep(std::time::Duration::from_millis(1))
                                }
                                Ok(_) => {}
                            }
                        }
                    }));
                }
                let mq = mq.clone();
                let dedup = Arc::clone(&dedup);
                let transport = Arc::clone(&transport);
                registry.bind(id, move |env| match &env.payload {
                    Request::Ingest { tuple } => {
                        // Single-tuple ingest has no batch marker; force
                        // the record out of process buffers before acking
                        // so a kill -9 cannot take it back.
                        mq.append(INGEST_TOPIC, i, tuple.clone())?;
                        mq.sync()?;
                        Ok(Response::Ack)
                    }
                    Request::IngestBatch { seq, tuples } => {
                        // Marker + tuples land as one atomic WAL frame,
                        // committed before the ack: the durability point
                        // of the exactly-once contract.
                        let deduped = dedup.apply_once(env.src, id, *seq, || {
                            mq.append_batch_from(
                                INGEST_TOPIC,
                                i,
                                env.src.raw(),
                                *seq,
                                tuples.to_vec(),
                            )
                            .map(|_| ())
                        })?;
                        Ok(Response::AckBatch {
                            tuples: tuples.len() as u32,
                            deduped,
                        })
                    }
                    Request::Flush => {
                        // Seal everything queued so far: pump until the
                        // partition is drained, then flush the tree.
                        while server.pump(4_096)? > 0 {}
                        Ok(Response::Flushed(server.flush()?))
                    }
                    Request::InMemorySubquery { sq } => {
                        Ok(Response::Tuples(server.query_in_memory(sq)?))
                    }
                    Request::AggregateInMemory { slices, covered } => Ok(Response::Fold(
                        server.aggregate_in_memory(*slices, covered)?,
                    )),
                    Request::Reassign { interval } => {
                        // Migration cut-over: only the *assigned* interval
                        // changes; out-of-interval tuples already in memory
                        // stay queryable until flush (§III-D overlap).
                        server.reassign(*interval);
                        Ok(Response::Ack)
                    }
                    Request::RegisterPeers { peers } => {
                        add_wire_peers(&transport, peers)?;
                        Ok(Response::Ack)
                    }
                    Request::Ping => Ok(Response::Pong),
                    _ => Err(WwError::InvalidState(
                        "unsupported request for an indexing server".into(),
                    )),
                });
            }
            // Dynamic membership (Fig. 17): every hosted server registers
            // under a heartbeat lease before this process reports ready,
            // so a launcher that waits for the ready line can rely on the
            // membership epoch already covering it.
            for &id in &hosted {
                let node = layout.cluster.node_of(id).unwrap_or(NodeId(0));
                meta.join(id, MemberRole::Indexing, node, layout.cfg.lease_ttl)?;
            }
            spawn_lease_keeper(
                &mut pump_handles,
                &pumps_stop,
                MetaClient::new(lease_rpc_for(hosted[0])),
                hosted.clone(),
                layout.cfg.heartbeat_interval,
                layout.cfg.lease_ttl,
            );
        }
        Role::Query => {
            let hosted = layout.hosted_qs(nc.proc_index);
            let dfs = SimDfs::new(
                nc.root.join("chunks"),
                layout.cluster.clone(),
                layout.cfg.dfs_replication.min(nc.nodes.max(1)),
                LatencyModel::default(),
            )?;
            for &id in &hosted {
                let node = layout.cluster.node_of(id).unwrap_or(NodeId(0));
                let qs = Arc::new(QueryServer::with_config(id, node, dfs.clone(), &layout.cfg));
                let transport = Arc::clone(&transport);
                registry.bind(id, move |env| match &env.payload {
                    Request::ChunkSubquery {
                        sq,
                        chunk,
                        leaf_filter,
                    } => Ok(Response::Tuples(qs.execute_filtered(
                        sq,
                        *chunk,
                        leaf_filter.as_ref(),
                    )?)),
                    Request::ReadSummary { chunk } => {
                        Ok(Response::Summary(qs.read_summary(*chunk)?))
                    }
                    Request::RegisterPeers { peers } => {
                        add_wire_peers(&transport, peers)?;
                        Ok(Response::Ack)
                    }
                    Request::Ping => Ok(Response::Pong),
                    _ => Err(WwError::InvalidState(
                        "unsupported request for a query server".into(),
                    )),
                });
            }
            let meta = MetaClient::new(rpc_for(hosted[0]));
            for &id in &hosted {
                let node = layout.cluster.node_of(id).unwrap_or(NodeId(0));
                meta.join(id, MemberRole::Query, node, layout.cfg.lease_ttl)?;
            }
            spawn_lease_keeper(
                &mut pump_handles,
                &pumps_stop,
                MetaClient::new(lease_rpc_for(hosted[0])),
                hosted.clone(),
                layout.cfg.heartbeat_interval,
                layout.cfg.lease_ttl,
            );
        }
        Role::Dispatcher => {
            let meta = MetaClient::new(rpc_for(layout.disp_ids[0]));
            let schema = fetch_schema(&meta)?;
            let dispatchers: Arc<Vec<Arc<Dispatcher>>> = Arc::new(
                layout
                    .disp_ids
                    .iter()
                    .map(|&id| {
                        Arc::new(Dispatcher::new(
                            id,
                            rpc_for(id),
                            schema.clone(),
                            &layout.cfg,
                        ))
                    })
                    .collect(),
            );
            let gateway_dedup = Arc::new(BatchDedup::new());
            let ix_ids = layout.ix_ids.clone();
            for (i, &id) in layout.disp_ids.iter().enumerate() {
                let dispatchers = Arc::clone(&dispatchers);
                let dedup = Arc::clone(&gateway_dedup);
                let ix_ids = ix_ids.clone();
                let meta = meta.clone();
                registry.bind(id, move |env| match &env.payload {
                    Request::Ingest { tuple } => {
                        dispatchers[i].dispatch(tuple.clone())?;
                        Ok(Response::Ack)
                    }
                    Request::IngestBatch { seq, tuples } => {
                        let deduped = dedup.apply_once(env.src, id, *seq, || {
                            for t in tuples.iter() {
                                dispatchers[i].dispatch(t.clone())?;
                            }
                            Ok(())
                        })?;
                        Ok(Response::AckBatch {
                            tuples: tuples.len() as u32,
                            deduped,
                        })
                    }
                    Request::Flush => {
                        // The client's durability verb: push every
                        // buffered batch out, then seal every indexing
                        // server's memory into chunks. The server list
                        // comes from the live membership view so servers
                        // that joined after launch get flushed too.
                        for d in dispatchers.iter() {
                            d.flush_batches()?;
                        }
                        let live = meta
                            .membership()
                            .map(|v| v.indexing_ids())
                            .ok()
                            .filter(|v| !v.is_empty())
                            .unwrap_or_else(|| ix_ids.clone());
                        let mut chunks = Vec::new();
                        for &ix in &live {
                            chunks.extend(dispatchers[i].flush(ix)?);
                        }
                        Ok(Response::Flushed(chunks))
                    }
                    Request::Ping => Ok(Response::Pong),
                    _ => Err(WwError::InvalidState(
                        "unsupported request for a dispatcher".into(),
                    )),
                });
            }
            let coordinator = Arc::new(Coordinator::new(
                rpc_for(COORDINATOR),
                layout.cluster.clone(),
                layout.qs_ids.clone(),
                layout.ix_ids.clone(),
                layout.cfg.dfs_replication.min(nc.nodes.max(1)),
                DispatchPolicy::Lada,
                layout.cfg.clone(),
            ));
            // The same well-known attrs the indexing process indexes
            // under: `attr == value` client queries prune through them.
            let attrs = Arc::new(AttrRegistry::new());
            register_well_known_attrs(&attrs);
            coordinator.set_attr_registry(attrs);
            {
                let coordinator = Arc::clone(&coordinator);
                let dispatchers = Arc::clone(&dispatchers);
                let meta = meta.clone();
                let control = rpc_for(COORDINATOR);
                let transport = Arc::clone(&transport);
                let fallback_ix = layout.ix_ids.clone();
                registry.bind(COORDINATOR, move |env| match &env.payload {
                    Request::ClientQuery {
                        keys,
                        times,
                        attr_eq,
                    } => {
                        let mut q = Query::range(*keys, *times);
                        if let Some((attr, value)) = attr_eq {
                            q = q.and_attr_eq(*attr, *value);
                        }
                        Ok(Response::Query(coordinator.execute(&q)?))
                    }
                    Request::ClientAggregate { keys, times, kind } => {
                        let aq = Query::range(*keys, *times).aggregate(*kind);
                        Ok(Response::Aggregate(coordinator.execute_aggregate(&aq)?))
                    }
                    Request::RegisterPeers { peers } => {
                        add_wire_peers(&transport, peers)?;
                        Ok(Response::Ack)
                    }
                    Request::MigrateUniform => migrate_to_uniform(
                        &meta,
                        &dispatchers,
                        &coordinator,
                        &control,
                        &fallback_ix,
                    ),
                    Request::Ping => Ok(Response::Pong),
                    _ => Err(WwError::InvalidState(
                        "unsupported request for the coordinator".into(),
                    )),
                });
            }
            // Routing freshness: poll the membership epoch at the
            // heartbeat cadence so servers joining (or being evicted)
            // after launch reach the coordinator's routing table without
            // waiting for a query to fail first.
            {
                let coordinator = Arc::clone(&coordinator);
                let stop = Arc::clone(&pumps_stop);
                let hb = layout.cfg.heartbeat_interval;
                pump_handles.push(std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(hb);
                        let _ = coordinator.refresh_membership();
                    }
                }));
            }
        }
    }

    // The stop latch: tripped by a Shutdown RPC (acknowledged before the
    // hook runs) or by the launcher's stdin pipe closing — the watchdog
    // that reaps orphaned children if the parent dies without saying
    // goodbye.
    let stop = Arc::new((StdMutex::new(false), Condvar::new()));
    let trip = |stop: &Arc<(StdMutex<bool>, Condvar)>| {
        let (lock, cv) = &**stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    };
    // A restarted process re-claims the exact port its peers route to;
    // besides SO_REUSEADDR (set by the listener) give the kernel a moment
    // to finish tearing down the predecessor's socket.
    let server = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let hook = {
                let stop = Arc::clone(&stop);
                Box::new(move || trip(&stop)) as Box<dyn FnOnce() + Send>
            };
            match TcpRpcServer::bind_with(
                &nc.listen,
                Arc::clone(&registry),
                Arc::clone(&wire),
                Some(hook),
                waterwheel_net::TcpServerOptions {
                    reactor_threads: layout.cfg.net_reactor_threads,
                    workers: layout.cfg.net_server_workers,
                    overflow_retry_after: layout.cfg.admission_retry_after,
                    ..waterwheel_net::TcpServerOptions::default()
                },
            ) {
                Ok(s) => break s,
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
    };
    println!("WW_NODE_READY {}", server.local_addr());
    let _ = std::io::stdout().flush();
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.lock().read_line(&mut line) {
                    Ok(0) | Err(_) => break, // EOF: the launcher is gone.
                    Ok(_) => {}
                }
            }
            trip(&stop);
        });
    }

    let (lock, cv) = &*stop;
    let mut stopped = lock.lock().unwrap();
    while !*stopped {
        stopped = cv.wait(stopped).unwrap();
    }
    drop(stopped);
    pumps_stop.store(true, Ordering::SeqCst);
    for h in pump_handles {
        let _ = h.join();
    }
    drop(server);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_round_trip_their_spelling() {
        for role in Role::ALL {
            assert_eq!(Role::parse(role.as_str()), Some(role));
        }
        assert_eq!(Role::parse("zookeeper"), None);
    }

    #[test]
    fn id_layout_matches_the_embedded_system() {
        assert_eq!(indexing_ids(2), vec![ServerId(0), ServerId(1)]);
        assert_eq!(query_ids(1), vec![ServerId(1_000)]);
        assert_eq!(dispatcher_ids(2), vec![ServerId(2_000), ServerId(2_001)]);
    }

    #[test]
    fn env_contract_round_trips() {
        let mut nc = NodeConfig::new(Role::Query, "127.0.0.1:0", "/tmp/ww-env");
        nc.durability_fsync = false;
        nc.wal_segment_bytes = 65_536;
        nc.chunk_format_version = 1;
        nc.peers = vec![
            (Role::Meta, 0, "127.0.0.1:4100".parse().unwrap()),
            (Role::Indexing, 2, "127.0.0.1:4102".parse().unwrap()),
            (Role::Dispatcher, 0, "127.0.0.1:4101".parse().unwrap()),
        ];
        nc.indexing_processes = 3;
        nc.proc_index = 1;
        nc.heartbeat_interval = Duration::from_millis(250);
        nc.lease_ttl = Duration::from_millis(900);
        let mut cmd = std::process::Command::new("true");
        nc.apply_env(&mut cmd);
        // Replay the command's captured env through from_env's parser by
        // materializing it into this process (unique keys, test-local).
        for (k, v) in cmd.get_envs() {
            std::env::set_var(k, v.unwrap());
        }
        let back = NodeConfig::from_env().unwrap();
        assert_eq!(back.role, nc.role);
        assert_eq!(back.root, nc.root);
        assert_eq!(back.indexing_servers, nc.indexing_servers);
        assert_eq!(back.durability_fsync, nc.durability_fsync);
        assert_eq!(back.wal_segment_bytes, nc.wal_segment_bytes);
        assert_eq!(back.chunk_format_version, nc.chunk_format_version);
        assert_eq!(back.indexing_processes, nc.indexing_processes);
        assert_eq!(back.query_processes, nc.query_processes);
        assert_eq!(back.proc_index, nc.proc_index);
        assert_eq!(back.heartbeat_interval, nc.heartbeat_interval);
        assert_eq!(back.lease_ttl, nc.lease_ttl);
        assert_eq!(back.peers, nc.peers);
        for key in [
            "WW_NODE_ROLE",
            "WW_NODE_LISTEN",
            "WW_NODE_ROOT",
            "WW_NODE_IX",
            "WW_NODE_QS",
            "WW_NODE_DISP",
            "WW_NODE_NODES",
            "WW_NODE_CHUNK_BYTES",
            "WW_NODE_FSYNC",
            "WW_NODE_WAL_SEG",
            "WW_NODE_CHUNK_FORMAT",
            "WW_NODE_IX_PROCS",
            "WW_NODE_QS_PROCS",
            "WW_NODE_PROC",
            "WW_NODE_HB_MS",
            "WW_NODE_LEASE_MS",
            "WW_NODE_PEERS",
        ] {
            std::env::remove_var(key);
        }
    }

    #[test]
    fn slices_are_contiguous_and_stable_under_growth() {
        let four = indexing_ids(4);
        assert_eq!(slice_ids(&four, 0, 2), vec![ServerId(0), ServerId(1)]);
        assert_eq!(slice_ids(&four, 1, 2), vec![ServerId(2), ServerId(3)]);
        // Growing 2 → 3 processes (same per-process count) adds a new
        // slice at the top without moving an existing process's slice.
        let six = indexing_ids(6);
        assert_eq!(slice_ids(&six, 0, 3), slice_ids(&four, 0, 2));
        assert_eq!(slice_ids(&six, 1, 3), slice_ids(&four, 1, 2));
        assert_eq!(slice_ids(&six, 2, 3), vec![ServerId(4), ServerId(5)]);
    }

    #[test]
    fn batch_dedup_mirrors_the_embedded_contract() {
        let dedup = BatchDedup::new();
        let (a, b) = (ServerId(5_000), ServerId(2_000));
        assert!(!dedup.apply_once(a, b, 0, || Ok(())).unwrap());
        assert!(dedup
            .apply_once(a, b, 0, || panic!("must not re-apply"))
            .unwrap());
        assert!(dedup
            .apply_once(a, b, 1, || Err(WwError::Injected("boom")))
            .is_err());
        assert!(!dedup.apply_once(a, b, 1, || Ok(())).unwrap());
    }
}
