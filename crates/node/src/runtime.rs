//! The per-process node runtime: rebuild the deterministic layout, bind
//! this role's handlers into a [`HandlerRegistry`], and serve them over a
//! TCP listener until a `Shutdown` RPC (or losing the launcher's stdin
//! pipe) tears the process down.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use waterwheel_cluster::{Cluster, LatencyModel};
use waterwheel_core::{Query, Result, ServerId, SystemConfig, WwError};
use waterwheel_meta::{MetadataService, PartitionSchema};
use waterwheel_mq::{Consumer, MessageQueue};
use waterwheel_net::{
    serve_meta, HandlerRegistry, MetaClient, Request, Response, RpcClient, TcpRpcServer,
    TcpTransport, Transport, WireStats, COORDINATOR, META_SERVER,
};
use waterwheel_server::{
    AttrRegistry, Coordinator, DispatchPolicy, Dispatcher, IndexingServer, QueryServer,
};
use waterwheel_storage::SimDfs;
use waterwheel_wal::FsyncPolicy;

/// Name of the ingestion topic (must match the embedded system's).
const INGEST_TOPIC: &str = "ingest";

/// The well-known secondary attribute (paper §VIII) every node process
/// registers deterministically: the first payload byte. Indexing
/// processes build bloom/bitmap indexes for it at flush time and the
/// coordinator prunes `attr == value` queries through them — no dynamic
/// registration RPC is needed because both sides rebuild the same
/// extractor from this constant.
pub const PAYLOAD_BYTE_ATTR: u16 = 1;

fn register_well_known_attrs(attrs: &AttrRegistry) {
    attrs.register(PAYLOAD_BYTE_ATTR, |t| {
        t.payload.first().map(|b| u64::from(*b))
    });
}

/// Which server group a node process hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The metadata service (ZooKeeper's seat, §II-B).
    Meta,
    /// All indexing servers plus the ingestion queue.
    Indexing,
    /// All query servers.
    Query,
    /// All dispatchers plus the query coordinator — the client gateway.
    Dispatcher,
}

impl Role {
    /// Every role, in launch order (dependencies first).
    pub const ALL: [Role; 4] = [Role::Meta, Role::Indexing, Role::Query, Role::Dispatcher];

    /// The CLI/env spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Meta => "meta",
            Role::Indexing => "indexing",
            Role::Query => "query",
            Role::Dispatcher => "dispatcher",
        }
    }

    /// Parses the CLI/env spelling.
    pub fn parse(s: &str) -> Option<Role> {
        Role::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything a node process needs to take its place in the cluster.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This process's role.
    pub role: Role,
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Shared filesystem root (chunks + metadata snapshot).
    pub root: PathBuf,
    /// Indexing-server count (identical in every process).
    pub indexing_servers: usize,
    /// Query-server count.
    pub query_servers: usize,
    /// Dispatcher count.
    pub dispatchers: usize,
    /// Simulated cluster nodes.
    pub nodes: usize,
    /// Chunk size driving flush boundaries.
    pub chunk_size_bytes: usize,
    /// Whether durable surfaces (queue WAL, chunk seals, metadata log)
    /// fsync on commit; see `SystemConfig::durability_fsync`.
    pub durability_fsync: bool,
    /// WAL segment size bounding log files and the metadata compaction
    /// threshold; see `SystemConfig::wal_segment_bytes`.
    pub wal_segment_bytes: usize,
    /// On-disk chunk format newly flushed chunks are written in; see
    /// `SystemConfig::chunk_format_version`. Readers dispatch per chunk,
    /// so a store may legitimately mix versions across restarts.
    pub chunk_format_version: u32,
    /// Addresses of the roles this process calls into.
    pub peers: Vec<(Role, SocketAddr)>,
}

impl NodeConfig {
    /// A config with the given role/listen/root and default counts.
    pub fn new(role: Role, listen: impl Into<String>, root: impl Into<PathBuf>) -> Self {
        let cfg = SystemConfig::default();
        Self {
            role,
            listen: listen.into(),
            root: root.into(),
            indexing_servers: cfg.indexing_servers,
            query_servers: cfg.query_servers,
            dispatchers: cfg.dispatchers,
            nodes: 4,
            chunk_size_bytes: cfg.chunk_size_bytes,
            durability_fsync: cfg.durability_fsync,
            wal_segment_bytes: cfg.wal_segment_bytes,
            chunk_format_version: cfg.chunk_format_version,
            peers: Vec::new(),
        }
    }

    /// Reads the `WW_NODE_*` environment contract written by
    /// [`ClusterSpec::launch`](crate::spec::ClusterSpec::launch).
    pub fn from_env() -> std::result::Result<Self, String> {
        let var = |k: &str| std::env::var(k).map_err(|_| format!("{k} is not set"));
        let num = |k: &str| -> std::result::Result<usize, String> {
            var(k)?.parse().map_err(|e| format!("{k}: {e}"))
        };
        let role = var("WW_NODE_ROLE")?;
        let role = Role::parse(&role).ok_or_else(|| format!("unknown role {role:?}"))?;
        let mut peers = Vec::new();
        for part in var("WW_NODE_PEERS").unwrap_or_default().split(',') {
            if part.is_empty() {
                continue;
            }
            let (r, addr) = part
                .split_once('=')
                .ok_or_else(|| format!("peer {part:?} is not role=addr"))?;
            let r = Role::parse(r).ok_or_else(|| format!("unknown peer role {r:?}"))?;
            let addr = addr.parse().map_err(|e| format!("peer {part:?}: {e}"))?;
            peers.push((r, addr));
        }
        // Durability knobs are optional in the contract (older launchers
        // omit them): absent means the SystemConfig defaults.
        let defaults = SystemConfig::default();
        let durability_fsync = match std::env::var("WW_NODE_FSYNC") {
            Ok(v) => v != "0",
            Err(_) => defaults.durability_fsync,
        };
        let wal_segment_bytes = match std::env::var("WW_NODE_WAL_SEG") {
            Ok(v) => v.parse().map_err(|e| format!("WW_NODE_WAL_SEG: {e}"))?,
            Err(_) => defaults.wal_segment_bytes,
        };
        let chunk_format_version = match std::env::var("WW_NODE_CHUNK_FORMAT") {
            Ok(v) => v
                .parse()
                .map_err(|e| format!("WW_NODE_CHUNK_FORMAT: {e}"))?,
            Err(_) => defaults.chunk_format_version,
        };
        Ok(Self {
            role,
            listen: var("WW_NODE_LISTEN")?,
            root: PathBuf::from(var("WW_NODE_ROOT")?),
            indexing_servers: num("WW_NODE_IX")?,
            query_servers: num("WW_NODE_QS")?,
            dispatchers: num("WW_NODE_DISP")?,
            nodes: num("WW_NODE_NODES")?,
            chunk_size_bytes: num("WW_NODE_CHUNK_BYTES")?,
            durability_fsync,
            wal_segment_bytes,
            chunk_format_version,
            peers,
        })
    }

    /// Writes the environment contract onto a child command.
    pub fn apply_env(&self, cmd: &mut std::process::Command) {
        let peers: Vec<String> = self
            .peers
            .iter()
            .map(|(r, a)| format!("{}={a}", r.as_str()))
            .collect();
        cmd.env("WW_NODE_ROLE", self.role.as_str())
            .env("WW_NODE_LISTEN", &self.listen)
            .env("WW_NODE_ROOT", &self.root)
            .env("WW_NODE_IX", self.indexing_servers.to_string())
            .env("WW_NODE_QS", self.query_servers.to_string())
            .env("WW_NODE_DISP", self.dispatchers.to_string())
            .env("WW_NODE_NODES", self.nodes.to_string())
            .env("WW_NODE_CHUNK_BYTES", self.chunk_size_bytes.to_string())
            .env(
                "WW_NODE_FSYNC",
                if self.durability_fsync { "1" } else { "0" },
            )
            .env("WW_NODE_WAL_SEG", self.wal_segment_bytes.to_string())
            .env(
                "WW_NODE_CHUNK_FORMAT",
                self.chunk_format_version.to_string(),
            )
            .env("WW_NODE_PEERS", peers.join(","));
    }
}

/// Indexing-server ids for a cluster with `n` of them (`0..`).
pub fn indexing_ids(n: usize) -> Vec<ServerId> {
    (0..n as u32).map(ServerId).collect()
}

/// Query-server ids (`1000..`).
pub fn query_ids(n: usize) -> Vec<ServerId> {
    (0..n as u32).map(|i| ServerId(1_000 + i)).collect()
}

/// Dispatcher ids (`2000..`).
pub fn dispatcher_ids(n: usize) -> Vec<ServerId> {
    (0..n as u32).map(|i| ServerId(2_000 + i)).collect()
}

/// The deterministic layout every process rebuilds identically: system
/// config, simulated cluster with server placement, and the id vectors.
struct Layout {
    cfg: SystemConfig,
    cluster: Cluster,
    ix_ids: Vec<ServerId>,
    qs_ids: Vec<ServerId>,
    disp_ids: Vec<ServerId>,
}

impl Layout {
    fn new(nc: &NodeConfig) -> Result<Self> {
        let mut cfg = SystemConfig::default();
        cfg.indexing_servers = nc.indexing_servers;
        cfg.query_servers = nc.query_servers;
        cfg.dispatchers = nc.dispatchers;
        cfg.chunk_size_bytes = nc.chunk_size_bytes;
        cfg.durability_fsync = nc.durability_fsync;
        cfg.wal_segment_bytes = nc.wal_segment_bytes;
        cfg.chunk_format_version = nc.chunk_format_version;
        // Nested flush RPCs (gateway → indexing pump-until-empty) can
        // outlive the embedded default; loopback never needs to give up
        // that early.
        cfg.rpc_timeout = std::time::Duration::from_secs(10);
        cfg.validate().map_err(WwError::Config)?;
        let cluster = Cluster::new(nc.nodes.max(1));
        let ix_ids = indexing_ids(cfg.indexing_servers);
        let qs_ids = query_ids(cfg.query_servers);
        let disp_ids = dispatcher_ids(cfg.dispatchers);
        // Same placement order as the embedded builder: query servers
        // first, then indexing servers.
        cluster.place_servers_round_robin(qs_ids.iter().copied());
        cluster.place_servers_round_robin(ix_ids.iter().copied());
        Ok(Self {
            cfg,
            cluster,
            ix_ids,
            qs_ids,
            disp_ids,
        })
    }
}

/// Builds the client transport with the peer map routing every server id
/// to the process hosting it.
fn peer_transport(nc: &NodeConfig, layout: &Layout) -> Arc<TcpTransport> {
    let t = Arc::new(TcpTransport::with_options(
        Arc::new(WireStats::default()),
        waterwheel_net::TcpClientOptions {
            reactor_threads: layout.cfg.net_reactor_threads,
            pool_idle_timeout: layout.cfg.net_pool_idle_timeout,
            pool_max_connections: layout.cfg.net_pool_max_connections,
        },
    ));
    route_peers(&t, &nc.peers, layout);
    t
}

fn route_peers(t: &TcpTransport, peers: &[(Role, SocketAddr)], layout: &Layout) {
    for &(role, addr) in peers {
        match role {
            Role::Meta => t.add_peer(META_SERVER, addr),
            Role::Indexing => t.add_peers(layout.ix_ids.iter().copied(), addr),
            Role::Query => t.add_peers(layout.qs_ids.iter().copied(), addr),
            Role::Dispatcher => {
                t.add_peers(layout.disp_ids.iter().copied(), addr);
                t.add_peer(COORDINATOR, addr);
            }
        }
    }
}

/// Receiver-side dedup for retried ingest batches, mirroring the embedded
/// system's exactly-once contract: a `(src, dst)` link's batch sequence
/// numbers land at most once.
struct BatchDedup {
    last_seq: Mutex<HashMap<(ServerId, ServerId), u64>>,
}

impl BatchDedup {
    fn new() -> Self {
        Self {
            last_seq: Mutex::new(HashMap::new()),
        }
    }

    /// Seeds the dedup table from recovered WAL markers: a restarted
    /// indexing process must recognise redeliveries of batches whose
    /// append was durable before the crash but whose ack was lost.
    fn seed(&self, src: ServerId, dst: ServerId, seq: u64) {
        let mut last = self.last_seq.lock();
        let e = last.entry((src, dst)).or_insert(seq);
        *e = (*e).max(seq);
    }

    fn apply_once(
        &self,
        src: ServerId,
        dst: ServerId,
        seq: u64,
        apply: impl FnOnce() -> Result<()>,
    ) -> Result<bool> {
        let mut last = self.last_seq.lock();
        if last.get(&(src, dst)).is_some_and(|&l| seq <= l) {
            return Ok(true);
        }
        apply()?;
        last.insert((src, dst), seq);
        Ok(false)
    }
}

/// Fetches the partition schema from the metadata process (bootstrapped
/// there before it reports ready).
fn fetch_schema(meta: &MetaClient) -> Result<PartitionSchema> {
    meta.partition()?
        .ok_or_else(|| WwError::InvalidState("metadata process has no partition schema yet".into()))
}

/// Runs one node role until shut down. Prints `WW_NODE_READY <addr>` once
/// the listener is accepting, answers RPCs, and returns after a
/// [`Request::Shutdown`] lands or the launcher's stdin pipe closes.
pub fn run_node(nc: NodeConfig) -> Result<()> {
    let layout = Layout::new(&nc)?;
    let registry = Arc::new(HandlerRegistry::new());
    // Every node process guards its handlers with the same class-aware
    // admission controller the embedded system installs: overload sheds
    // typed `Overloaded` answers instead of queueing without bound.
    registry.set_admission(Arc::new(waterwheel_server::AdmissionController::new(
        &layout.cfg,
    )));
    let wire = Arc::new(WireStats::default());
    let transport = peer_transport(&nc, &layout);
    let rpc_for = |src: ServerId| {
        RpcClient::new(
            Arc::clone(&transport) as Arc<dyn Transport>,
            src,
            &layout.cfg,
        )
    };

    let pumps_stop = Arc::new(AtomicBool::new(false));
    let mut pump_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

    match nc.role {
        Role::Meta => {
            let meta = MetadataService::open_with(
                nc.root.join("meta.snapshot"),
                FsyncPolicy::from_flag(layout.cfg.durability_fsync),
                layout.cfg.wal_segment_bytes,
            )?;
            // Bootstrap the uniform schema exactly like the embedded
            // builder, so every later-starting role finds it.
            if meta.partition().is_none() {
                let mut s = PartitionSchema::uniform(&layout.ix_ids);
                s.version = 1;
                meta.set_partition(s)?;
            }
            serve_meta(&registry, meta);
        }
        Role::Indexing => {
            // The §V durability boundary: the ingest queue is a WAL under
            // the node root. Acked batches commit (marker + tuples in one
            // frame) before the ack leaves, so a kill -9 after the ack
            // cannot lose them — the restarted process replays this log
            // from each server's durable offset.
            let policy = FsyncPolicy::from_flag(layout.cfg.durability_fsync);
            let mq = MessageQueue::durable_with(
                nc.root.join("mq"),
                policy,
                layout.cfg.wal_segment_bytes,
            )?;
            mq.create_topic(INGEST_TOPIC, layout.cfg.indexing_servers)?;
            let dfs = SimDfs::new(
                nc.root.join("chunks"),
                layout.cluster.clone(),
                layout.cfg.dfs_replication.min(nc.nodes.max(1)),
                LatencyModel::default(),
            )?
            .with_fsync(policy);
            let meta = MetaClient::new(rpc_for(layout.ix_ids[0]));
            let schema = fetch_schema(&meta)?;
            let attrs = Arc::new(AttrRegistry::new());
            register_well_known_attrs(&attrs);
            let dedup = Arc::new(BatchDedup::new());
            for (i, &id) in layout.ix_ids.iter().enumerate() {
                let interval = schema
                    .interval_of(id)
                    .ok_or_else(|| WwError::not_found("partition interval for server", id))?;
                // Recovery: resume consuming at the offset the last chunk
                // registration persisted, and remember which batch
                // sequence numbers already landed in the WAL.
                let offset = meta.durable_offset(id)?;
                for (src, seq) in mq.recovered_seqs(INGEST_TOPIC, i)? {
                    dedup.seed(ServerId(src), id, seq);
                }
                let server = Arc::new(IndexingServer::new(
                    id,
                    interval,
                    layout.cfg.clone(),
                    Consumer::new(mq.clone(), INGEST_TOPIC, i, offset),
                    dfs.clone(),
                    MetaClient::new(rpc_for(id)),
                ));
                server.set_attr_registry(Arc::clone(&attrs));
                // Background pump: the Storm executor keeping freshly
                // queued tuples queryable without waiting for a flush.
                {
                    let server = Arc::clone(&server);
                    let stop = Arc::clone(&pumps_stop);
                    pump_handles.push(std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            match server.pump(1_024) {
                                Ok(0) | Err(_) => {
                                    std::thread::sleep(std::time::Duration::from_millis(1))
                                }
                                Ok(_) => {}
                            }
                        }
                    }));
                }
                let mq = mq.clone();
                let dedup = Arc::clone(&dedup);
                registry.bind(id, move |env| match &env.payload {
                    Request::Ingest { tuple } => {
                        // Single-tuple ingest has no batch marker; force
                        // the record out of process buffers before acking
                        // so a kill -9 cannot take it back.
                        mq.append(INGEST_TOPIC, i, tuple.clone())?;
                        mq.sync()?;
                        Ok(Response::Ack)
                    }
                    Request::IngestBatch { seq, tuples } => {
                        // Marker + tuples land as one atomic WAL frame,
                        // committed before the ack: the durability point
                        // of the exactly-once contract.
                        let deduped = dedup.apply_once(env.src, id, *seq, || {
                            mq.append_batch_from(
                                INGEST_TOPIC,
                                i,
                                env.src.raw(),
                                *seq,
                                tuples.to_vec(),
                            )
                            .map(|_| ())
                        })?;
                        Ok(Response::AckBatch {
                            tuples: tuples.len() as u32,
                            deduped,
                        })
                    }
                    Request::Flush => {
                        // Seal everything queued so far: pump until the
                        // partition is drained, then flush the tree.
                        while server.pump(4_096)? > 0 {}
                        Ok(Response::Flushed(server.flush()?))
                    }
                    Request::InMemorySubquery { sq } => {
                        Ok(Response::Tuples(server.query_in_memory(sq)?))
                    }
                    Request::AggregateInMemory { slices, covered } => Ok(Response::Fold(
                        server.aggregate_in_memory(*slices, covered)?,
                    )),
                    Request::Ping => Ok(Response::Pong),
                    _ => Err(WwError::InvalidState(
                        "unsupported request for an indexing server".into(),
                    )),
                });
            }
        }
        Role::Query => {
            let dfs = SimDfs::new(
                nc.root.join("chunks"),
                layout.cluster.clone(),
                layout.cfg.dfs_replication.min(nc.nodes.max(1)),
                LatencyModel::default(),
            )?;
            for &id in &layout.qs_ids {
                let node = layout
                    .cluster
                    .node_of(id)
                    .ok_or_else(|| WwError::not_found("cluster node for query server", id))?;
                let qs = Arc::new(QueryServer::with_config(id, node, dfs.clone(), &layout.cfg));
                registry.bind(id, move |env| match &env.payload {
                    Request::ChunkSubquery {
                        sq,
                        chunk,
                        leaf_filter,
                    } => Ok(Response::Tuples(qs.execute_filtered(
                        sq,
                        *chunk,
                        leaf_filter.as_ref(),
                    )?)),
                    Request::ReadSummary { chunk } => {
                        Ok(Response::Summary(qs.read_summary(*chunk)?))
                    }
                    Request::Ping => Ok(Response::Pong),
                    _ => Err(WwError::InvalidState(
                        "unsupported request for a query server".into(),
                    )),
                });
            }
        }
        Role::Dispatcher => {
            let meta = MetaClient::new(rpc_for(layout.disp_ids[0]));
            let schema = fetch_schema(&meta)?;
            let dispatchers: Arc<Vec<Arc<Dispatcher>>> = Arc::new(
                layout
                    .disp_ids
                    .iter()
                    .map(|&id| {
                        Arc::new(Dispatcher::new(
                            id,
                            rpc_for(id),
                            schema.clone(),
                            &layout.cfg,
                        ))
                    })
                    .collect(),
            );
            let gateway_dedup = Arc::new(BatchDedup::new());
            let ix_ids = layout.ix_ids.clone();
            for (i, &id) in layout.disp_ids.iter().enumerate() {
                let dispatchers = Arc::clone(&dispatchers);
                let dedup = Arc::clone(&gateway_dedup);
                let ix_ids = ix_ids.clone();
                registry.bind(id, move |env| match &env.payload {
                    Request::Ingest { tuple } => {
                        dispatchers[i].dispatch(tuple.clone())?;
                        Ok(Response::Ack)
                    }
                    Request::IngestBatch { seq, tuples } => {
                        let deduped = dedup.apply_once(env.src, id, *seq, || {
                            for t in tuples.iter() {
                                dispatchers[i].dispatch(t.clone())?;
                            }
                            Ok(())
                        })?;
                        Ok(Response::AckBatch {
                            tuples: tuples.len() as u32,
                            deduped,
                        })
                    }
                    Request::Flush => {
                        // The client's durability verb: push every
                        // buffered batch out, then seal every indexing
                        // server's memory into chunks.
                        for d in dispatchers.iter() {
                            d.flush_batches()?;
                        }
                        let mut chunks = Vec::new();
                        for &ix in &ix_ids {
                            chunks.extend(dispatchers[i].flush(ix)?);
                        }
                        Ok(Response::Flushed(chunks))
                    }
                    Request::Ping => Ok(Response::Pong),
                    _ => Err(WwError::InvalidState(
                        "unsupported request for a dispatcher".into(),
                    )),
                });
            }
            let coordinator = Arc::new(Coordinator::new(
                rpc_for(COORDINATOR),
                layout.cluster.clone(),
                layout.qs_ids.clone(),
                layout.ix_ids.clone(),
                layout.cfg.dfs_replication.min(nc.nodes.max(1)),
                DispatchPolicy::Lada,
                layout.cfg.clone(),
            ));
            // The same well-known attrs the indexing process indexes
            // under: `attr == value` client queries prune through them.
            let attrs = Arc::new(AttrRegistry::new());
            register_well_known_attrs(&attrs);
            coordinator.set_attr_registry(attrs);
            registry.bind(COORDINATOR, move |env| match &env.payload {
                Request::ClientQuery {
                    keys,
                    times,
                    attr_eq,
                } => {
                    let mut q = Query::range(*keys, *times);
                    if let Some((attr, value)) = attr_eq {
                        q = q.and_attr_eq(*attr, *value);
                    }
                    Ok(Response::Query(coordinator.execute(&q)?))
                }
                Request::ClientAggregate { keys, times, kind } => {
                    let aq = Query::range(*keys, *times).aggregate(*kind);
                    Ok(Response::Aggregate(coordinator.execute_aggregate(&aq)?))
                }
                Request::Ping => Ok(Response::Pong),
                _ => Err(WwError::InvalidState(
                    "unsupported request for the coordinator".into(),
                )),
            });
        }
    }

    // The stop latch: tripped by a Shutdown RPC (acknowledged before the
    // hook runs) or by the launcher's stdin pipe closing — the watchdog
    // that reaps orphaned children if the parent dies without saying
    // goodbye.
    let stop = Arc::new((StdMutex::new(false), Condvar::new()));
    let trip = |stop: &Arc<(StdMutex<bool>, Condvar)>| {
        let (lock, cv) = &**stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    };
    // A restarted process re-claims the exact port its peers route to;
    // besides SO_REUSEADDR (set by the listener) give the kernel a moment
    // to finish tearing down the predecessor's socket.
    let server = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let hook = {
                let stop = Arc::clone(&stop);
                Box::new(move || trip(&stop)) as Box<dyn FnOnce() + Send>
            };
            match TcpRpcServer::bind_with(
                &nc.listen,
                Arc::clone(&registry),
                Arc::clone(&wire),
                Some(hook),
                waterwheel_net::TcpServerOptions {
                    reactor_threads: layout.cfg.net_reactor_threads,
                    workers: layout.cfg.net_server_workers,
                    overflow_retry_after: layout.cfg.admission_retry_after,
                    ..waterwheel_net::TcpServerOptions::default()
                },
            ) {
                Ok(s) => break s,
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
    };
    println!("WW_NODE_READY {}", server.local_addr());
    let _ = std::io::stdout().flush();
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.lock().read_line(&mut line) {
                    Ok(0) | Err(_) => break, // EOF: the launcher is gone.
                    Ok(_) => {}
                }
            }
            trip(&stop);
        });
    }

    let (lock, cv) = &*stop;
    let mut stopped = lock.lock().unwrap();
    while !*stopped {
        stopped = cv.wait(stopped).unwrap();
    }
    drop(stopped);
    pumps_stop.store(true, Ordering::SeqCst);
    for h in pump_handles {
        let _ = h.join();
    }
    drop(server);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_round_trip_their_spelling() {
        for role in Role::ALL {
            assert_eq!(Role::parse(role.as_str()), Some(role));
        }
        assert_eq!(Role::parse("zookeeper"), None);
    }

    #[test]
    fn id_layout_matches_the_embedded_system() {
        assert_eq!(indexing_ids(2), vec![ServerId(0), ServerId(1)]);
        assert_eq!(query_ids(1), vec![ServerId(1_000)]);
        assert_eq!(dispatcher_ids(2), vec![ServerId(2_000), ServerId(2_001)]);
    }

    #[test]
    fn env_contract_round_trips() {
        let mut nc = NodeConfig::new(Role::Query, "127.0.0.1:0", "/tmp/ww-env");
        nc.durability_fsync = false;
        nc.wal_segment_bytes = 65_536;
        nc.chunk_format_version = 1;
        nc.peers = vec![
            (Role::Meta, "127.0.0.1:4100".parse().unwrap()),
            (Role::Dispatcher, "127.0.0.1:4101".parse().unwrap()),
        ];
        let mut cmd = std::process::Command::new("true");
        nc.apply_env(&mut cmd);
        // Replay the command's captured env through from_env's parser by
        // materializing it into this process (unique keys, test-local).
        for (k, v) in cmd.get_envs() {
            std::env::set_var(k, v.unwrap());
        }
        let back = NodeConfig::from_env().unwrap();
        assert_eq!(back.role, nc.role);
        assert_eq!(back.root, nc.root);
        assert_eq!(back.indexing_servers, nc.indexing_servers);
        assert_eq!(back.durability_fsync, nc.durability_fsync);
        assert_eq!(back.wal_segment_bytes, nc.wal_segment_bytes);
        assert_eq!(back.chunk_format_version, nc.chunk_format_version);
        assert_eq!(back.peers, nc.peers);
        for key in [
            "WW_NODE_ROLE",
            "WW_NODE_LISTEN",
            "WW_NODE_ROOT",
            "WW_NODE_IX",
            "WW_NODE_QS",
            "WW_NODE_DISP",
            "WW_NODE_NODES",
            "WW_NODE_CHUNK_BYTES",
            "WW_NODE_FSYNC",
            "WW_NODE_WAL_SEG",
            "WW_NODE_CHUNK_FORMAT",
            "WW_NODE_PEERS",
        ] {
            std::env::remove_var(key);
        }
    }

    #[test]
    fn batch_dedup_mirrors_the_embedded_contract() {
        let dedup = BatchDedup::new();
        let (a, b) = (ServerId(5_000), ServerId(2_000));
        assert!(!dedup.apply_once(a, b, 0, || Ok(())).unwrap());
        assert!(dedup
            .apply_once(a, b, 0, || panic!("must not re-apply"))
            .unwrap());
        assert!(dedup
            .apply_once(a, b, 1, || Err(WwError::Injected("boom")))
            .is_err());
        assert!(!dedup.apply_once(a, b, 1, || Ok(())).unwrap());
    }
}
