//! The `waterwheel-node` binary: run one cluster role, or `smoke` a whole
//! four-process loopback cluster end to end.
//!
//! ```text
//! waterwheel-node --role meta --listen 127.0.0.1:4100 --root /tmp/ww
//! waterwheel-node --role indexing --listen 127.0.0.1:0 --root /tmp/ww \
//!     --peer meta=127.0.0.1:4100 --ix 2 --qs 2 --disp 2
//! waterwheel-node smoke [--root DIR] [--tuples N]
//! ```
//!
//! Children spawned by the launcher are configured through `WW_NODE_*`
//! environment variables instead of flags; both paths funnel into the
//! same [`NodeConfig`].

use std::path::PathBuf;
use waterwheel_core::{AggregateKind, KeyInterval, TimeInterval, Tuple};
use waterwheel_node::{ClusterSpec, NodeConfig, Role};

fn main() {
    // Child processes of the launcher take this exit and never return.
    waterwheel_node::maybe_run_child();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("smoke") => smoke(&args[1..]),
        Some(_) => match parse_role_cli(&args) {
            Ok(cfg) => waterwheel_node::run_node(cfg).map_err(|e| e.to_string()),
            Err(e) => Err(e),
        },
        None => Err(usage()),
    };
    if let Err(e) = outcome {
        eprintln!("waterwheel-node: {e}");
        std::process::exit(1);
    }
}

fn usage() -> String {
    "usage: waterwheel-node --role <meta|indexing|query|dispatcher> --listen ADDR --root DIR \
     [--peer role=addr]... [--ix N] [--qs N] [--disp N] [--nodes N] [--chunk-bytes N]\n\
     \u{20}      waterwheel-node smoke [--root DIR] [--tuples N]"
        .into()
}

fn parse_role_cli(args: &[String]) -> Result<NodeConfig, String> {
    let mut role = None;
    let mut listen = None;
    let mut root = None;
    let mut peers = Vec::new();
    let mut counts: [Option<usize>; 5] = [None; 5];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--role" => {
                let v = value("--role")?;
                role = Some(Role::parse(v).ok_or_else(|| format!("unknown role {v:?}"))?);
            }
            "--listen" => listen = Some(value("--listen")?.clone()),
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--peer" => {
                let v = value("--peer")?;
                let (r, addr) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--peer {v:?} is not role[:proc]=addr"))?;
                // `role:IDX=addr` names one process of a multi-process
                // role; bare `role=addr` means its first process.
                let (r, idx) = match r.split_once(':') {
                    Some((r, idx)) => (
                        r,
                        idx.parse::<usize>()
                            .map_err(|e| format!("--peer {v:?}: {e}"))?,
                    ),
                    None => (r, 0),
                };
                let r = Role::parse(r).ok_or_else(|| format!("unknown peer role {r:?}"))?;
                let addr = addr.parse().map_err(|e| format!("--peer {v:?}: {e}"))?;
                peers.push((r, idx, addr));
            }
            "--ix" => counts[0] = Some(parse_num("--ix", value("--ix")?)?),
            "--qs" => counts[1] = Some(parse_num("--qs", value("--qs")?)?),
            "--disp" => counts[2] = Some(parse_num("--disp", value("--disp")?)?),
            "--nodes" => counts[3] = Some(parse_num("--nodes", value("--nodes")?)?),
            "--chunk-bytes" => {
                counts[4] = Some(parse_num("--chunk-bytes", value("--chunk-bytes")?)?)
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    let role = role.ok_or("--role is required")?;
    let listen = listen.ok_or("--listen is required")?;
    let root = root.ok_or("--root is required")?;
    let mut cfg = NodeConfig::new(role, listen, root);
    if let Some(n) = counts[0] {
        cfg.indexing_servers = n;
    }
    if let Some(n) = counts[1] {
        cfg.query_servers = n;
    }
    if let Some(n) = counts[2] {
        cfg.dispatchers = n;
    }
    if let Some(n) = counts[3] {
        cfg.nodes = n;
    }
    if let Some(n) = counts[4] {
        cfg.chunk_size_bytes = n;
    }
    cfg.peers = peers;
    Ok(cfg)
}

fn parse_num(name: &str, v: &str) -> Result<usize, String> {
    v.parse().map_err(|e| format!("{name}: {e}"))
}

/// Launches a four-process loopback cluster from this very binary,
/// drives an exact-answer workload through it, and shuts it down. Exits
/// nonzero on any mismatch — the CI multi-process gate.
fn smoke(args: &[String]) -> Result<(), String> {
    let mut root = None;
    let mut tuples = 2_000u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--tuples" => {
                tuples = value("--tuples")?
                    .parse()
                    .map_err(|e| format!("--tuples: {e}"))?
            }
            other => return Err(format!("unknown smoke flag {other:?}")),
        }
    }
    let root = root.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ww-node-smoke-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&root);

    let spec = ClusterSpec::new(&root);
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let cluster = spec.launch(exe).map_err(|e| e.to_string())?;
    let client = cluster.client();
    eprintln!(
        "smoke: 4 processes up (dispatcher gateway at {})",
        cluster.addr(Role::Dispatcher).unwrap()
    );

    for i in 0..tuples {
        client
            .insert(Tuple::bare(i * 1_000_000, 1_000 + i))
            .map_err(|e| format!("insert #{i}: {e}"))?;
    }
    client.flush().map_err(|e| format!("flush: {e}"))?;

    let full = client
        .query(KeyInterval::full(), TimeInterval::full())
        .map_err(|e| format!("full query: {e}"))?;
    check_eq("full-range tuple count", full.tuples.len() as u64, tuples)?;
    let narrow = client
        .query(
            KeyInterval::new(0, 100_000_000),
            TimeInterval::new(1_000, 1_050),
        )
        .map_err(|e| format!("narrow query: {e}"))?;
    check_eq("narrow tuple count", narrow.tuples.len() as u64, 51)?;
    let count = client
        .aggregate(
            KeyInterval::full(),
            TimeInterval::full(),
            AggregateKind::Count,
        )
        .map_err(|e| format!("aggregate: {e}"))?;
    check_eq("COUNT aggregate", count.agg.count, tuples)?;

    cluster.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    let _ = std::fs::remove_dir_all(&root);
    println!(
        "SMOKE OK: {tuples} tuples over 4 processes, exact range + aggregate answers, clean shutdown"
    );
    Ok(())
}

fn check_eq(what: &str, got: u64, want: u64) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: got {got}, want {want}"))
    }
}
