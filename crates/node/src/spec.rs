//! Launching and talking to a multi-process loopback cluster.
//!
//! [`ClusterSpec::launch`] spawns one OS process per [`Role`] (meta →
//! indexing → query → dispatcher, so each child's dependencies are
//! already listening), reads each child's `WW_NODE_READY <addr>`
//! handshake line, and threads the accumulated peer map into the next
//! child's environment. The returned [`ClusterHandle`] owns the children:
//! [`ClusterHandle::shutdown`] retires them via `Shutdown` RPCs (client
//! gateway first, metadata last) with a kill fallback, and dropping the
//! handle kills anything still running — tests never leak processes.

use crate::runtime::{dispatcher_ids, indexing_ids, query_ids, NodeConfig, Role};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_agg::AggregateAnswer;
use waterwheel_core::{
    AggregateKind, KeyInterval, QueryResult, Result, ServerId, SystemConfig, TimeInterval, Tuple,
    WwError,
};
use waterwheel_net::{
    Request, Response, RpcClient, TcpTransport, Transport, COORDINATOR, META_SERVER,
};

/// The source address external clients send from (outside every server
/// id range).
pub const CLIENT_ID: ServerId = ServerId(5_000);

/// Shape of a multi-process cluster: the shared filesystem root plus the
/// same counts the embedded builder takes.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Shared root (chunks, metadata snapshot) every process opens.
    pub root: PathBuf,
    /// Indexing-server count.
    pub indexing_servers: usize,
    /// Query-server count.
    pub query_servers: usize,
    /// Dispatcher count.
    pub dispatchers: usize,
    /// Simulated cluster nodes.
    pub nodes: usize,
    /// Chunk size driving flush boundaries.
    pub chunk_size_bytes: usize,
    /// Whether durable surfaces fsync on commit
    /// (`SystemConfig::durability_fsync`).
    pub durability_fsync: bool,
    /// WAL segment size (`SystemConfig::wal_segment_bytes`).
    pub wal_segment_bytes: usize,
    /// Chunk format newly flushed chunks are written in
    /// (`SystemConfig::chunk_format_version`); readers dispatch per
    /// chunk, so restarting with a different value yields a valid
    /// mixed-version store.
    pub chunk_format_version: u32,
}

impl ClusterSpec {
    /// A spec with small, test-friendly defaults.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let cfg = SystemConfig::default();
        Self {
            root: root.into(),
            indexing_servers: 2,
            query_servers: 2,
            dispatchers: 2,
            nodes: 4,
            chunk_size_bytes: cfg.chunk_size_bytes,
            durability_fsync: cfg.durability_fsync,
            wal_segment_bytes: cfg.wal_segment_bytes,
            chunk_format_version: cfg.chunk_format_version,
        }
    }

    fn node_config(&self, role: Role, peers: Vec<(Role, SocketAddr)>) -> NodeConfig {
        let mut nc = NodeConfig::new(role, "127.0.0.1:0", &self.root);
        nc.indexing_servers = self.indexing_servers;
        nc.query_servers = self.query_servers;
        nc.dispatchers = self.dispatchers;
        nc.nodes = self.nodes;
        nc.chunk_size_bytes = self.chunk_size_bytes;
        nc.durability_fsync = self.durability_fsync;
        nc.wal_segment_bytes = self.wal_segment_bytes;
        nc.chunk_format_version = self.chunk_format_version;
        nc.peers = peers;
        nc
    }

    /// Spawns the four role processes from `binary` (any executable whose
    /// `main` calls [`crate::maybe_run_child`] first — the
    /// `waterwheel-node` binary, or a self-hosting example/test).
    pub fn launch(&self, binary: impl AsRef<Path>) -> Result<ClusterHandle> {
        let binary = binary.as_ref();
        std::fs::create_dir_all(&self.root)?;
        let mut procs: Vec<NodeProc> = Vec::new();
        let mut peers: Vec<(Role, SocketAddr)> = Vec::new();
        for role in Role::ALL {
            let mut cmd = Command::new(binary);
            cmd.stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            self.node_config(role, peers.clone()).apply_env(&mut cmd);
            let mut child = cmd.spawn()?;
            let addr = match read_ready(&mut child) {
                Ok(addr) => addr,
                Err(e) => {
                    // Reap what already started; nothing must outlive a
                    // failed launch.
                    let _ = child.kill();
                    let _ = child.wait();
                    for mut p in procs {
                        let _ = p.child.kill();
                        let _ = p.child.wait();
                    }
                    return Err(e);
                }
            };
            peers.push((role, addr));
            procs.push(NodeProc {
                role,
                child,
                addr,
                killed: false,
            });
        }
        Ok(ClusterHandle {
            spec: self.clone(),
            binary: binary.to_path_buf(),
            procs,
        })
    }
}

/// Blocks until the child prints its `WW_NODE_READY <addr>` handshake.
fn read_ready(child: &mut Child) -> Result<SocketAddr> {
    let stdout = child.stdout.take().ok_or_else(|| {
        WwError::InvalidState("node child was spawned without a stdout pipe".into())
    })?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line?;
        if let Some(addr) = line.strip_prefix("WW_NODE_READY ") {
            return addr.trim().parse().map_err(|_| WwError::Corrupt {
                what: "node ready handshake",
                detail: format!("unparseable address {addr:?}"),
            });
        }
    }
    Err(WwError::InvalidState(
        "node process exited before reporting ready".into(),
    ))
}

struct NodeProc {
    role: Role,
    child: Child,
    addr: SocketAddr,
    /// SIGKILLed by [`ClusterHandle::kill_nine`] and already reaped:
    /// shutdown must not waste a deadline RPCing into the void.
    killed: bool,
}

/// A running multi-process cluster; owns the child processes.
pub struct ClusterHandle {
    spec: ClusterSpec,
    binary: PathBuf,
    procs: Vec<NodeProc>,
}

impl ClusterHandle {
    /// The listen address of a role's process.
    pub fn addr(&self, role: Role) -> Option<SocketAddr> {
        self.procs.iter().find(|p| p.role == role).map(|p| p.addr)
    }

    /// A client speaking the gateway RPC verbs against this cluster.
    pub fn client(&self) -> ClusterClient {
        // Client calls wrap whole pipeline stages (a Flush pumps every
        // queued tuple); give them room before a retry re-enters.
        self.client_with_timeout(Duration::from_secs(10), 2)
    }

    /// A client with an explicit per-attempt deadline and retry budget —
    /// probes that expect the cluster to be down want a short one, since
    /// the transport keeps re-connecting until the deadline expires.
    pub fn client_with_timeout(&self, timeout: Duration, retries: u32) -> ClusterClient {
        let peers: Vec<(Role, SocketAddr)> = self.procs.iter().map(|p| (p.role, p.addr)).collect();
        ClusterClient::connect(&self.spec, &peers, timeout, retries)
    }

    /// SIGKILLs a role's process mid-flight (`Child::kill` delivers
    /// SIGKILL on Unix — no grace, no cleanup handlers) and reaps it. The
    /// rest of the cluster keeps running degraded until [`Self::restart`]
    /// brings the role back at the same address. This is the crash-
    /// recovery rig's hammer: everything the process held only in memory
    /// or unsynced buffers is gone.
    pub fn kill_nine(&mut self, role: Role) -> Result<()> {
        let p = self
            .procs
            .iter_mut()
            .find(|p| p.role == role)
            .ok_or_else(|| WwError::InvalidState(format!("no {role} process to kill")))?;
        p.child.kill()?;
        p.child.wait()?;
        p.killed = true;
        Ok(())
    }

    /// Changes the chunk format that processes launched by later
    /// [`Self::restart`] calls write. Already-sealed chunks keep their
    /// format — readers dispatch per chunk — so flipping this across a
    /// restart produces a mixed-version store on purpose.
    pub fn set_chunk_format_version(&mut self, version: u32) {
        self.spec.chunk_format_version = version;
    }

    /// Respawns a role (after [`Self::kill_nine`]) at its **original
    /// address** — the rest of the cluster still routes there — with the
    /// full peer map, and blocks until the child reports ready. The
    /// restarted process recovers from durable state alone: queue WAL,
    /// metadata snapshot + log, and sealed chunk files.
    pub fn restart(&mut self, role: Role) -> Result<()> {
        let pos = self
            .procs
            .iter()
            .position(|p| p.role == role)
            .ok_or_else(|| WwError::InvalidState(format!("no {role} process to restart")))?;
        let peers: Vec<(Role, SocketAddr)> = self.procs.iter().map(|p| (p.role, p.addr)).collect();
        let old_addr = self.procs[pos].addr;
        let mut nc = self.spec.node_config(role, peers);
        nc.listen = old_addr.to_string();
        let mut cmd = Command::new(&self.binary);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        nc.apply_env(&mut cmd);
        let mut child = cmd.spawn()?;
        let addr = match read_ready(&mut child) {
            Ok(addr) => addr,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        if addr != old_addr {
            let _ = child.kill();
            let _ = child.wait();
            return Err(WwError::InvalidState(format!(
                "restarted {role} bound {addr}, expected {old_addr}"
            )));
        }
        self.procs[pos] = NodeProc {
            role,
            child,
            addr,
            killed: false,
        };
        Ok(())
    }

    /// Retires the cluster: `Shutdown` RPC per process — gateway first so
    /// nothing keeps dispatching into dying backends, metadata last —
    /// then waits for each child, killing any that ignore the request.
    /// Roles already SIGKILLed (and not restarted) are skipped rather
    /// than RPCed into the void. Returns an error if any child had to be
    /// killed or exited dirty.
    pub fn shutdown(mut self) -> Result<()> {
        let client = self.client();
        let mut clean = true;
        for role in [Role::Dispatcher, Role::Query, Role::Indexing, Role::Meta] {
            let alive = self.procs.iter().any(|p| p.role == role && !p.killed);
            if alive {
                clean &= client.shutdown_role(role).is_ok();
            } else {
                clean = false;
            }
        }
        for p in &mut self.procs {
            if p.killed {
                continue; // already reaped by kill_nine
            }
            clean &= wait_or_kill(&mut p.child, Duration::from_secs(10));
        }
        self.procs.clear();
        if clean {
            Ok(())
        } else {
            Err(WwError::InvalidState(
                "a node process had to be killed during shutdown".into(),
            ))
        }
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        for p in &mut self.procs {
            if p.child.try_wait().ok().flatten().is_none() {
                let _ = p.child.kill();
            }
            let _ = p.child.wait();
        }
    }
}

/// Waits for a child to exit cleanly within `grace`; kills it otherwise.
/// Returns whether the exit was clean (no kill, zero status).
fn wait_or_kill(child: &mut Child, grace: Duration) -> bool {
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return status.success(),
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return false;
            }
        }
    }
}

/// A typed client for a multi-process cluster: inserts through the
/// dispatcher gateway, queries through the coordinator, and shuts roles
/// down — all over one pooled TCP transport.
pub struct ClusterClient {
    rpc: RpcClient,
    disp_ids: Vec<ServerId>,
    qs_ids: Vec<ServerId>,
    ix_ids: Vec<ServerId>,
    next: AtomicUsize,
}

impl ClusterClient {
    fn connect(
        spec: &ClusterSpec,
        peers: &[(Role, SocketAddr)],
        timeout: Duration,
        retries: u32,
    ) -> Self {
        let disp_ids = dispatcher_ids(spec.dispatchers);
        let qs_ids = query_ids(spec.query_servers);
        let ix_ids = indexing_ids(spec.indexing_servers);
        let t = Arc::new(TcpTransport::new());
        for &(role, addr) in peers {
            match role {
                Role::Meta => t.add_peer(META_SERVER, addr),
                Role::Indexing => t.add_peers(ix_ids.iter().copied(), addr),
                Role::Query => t.add_peers(qs_ids.iter().copied(), addr),
                Role::Dispatcher => {
                    t.add_peers(disp_ids.iter().copied(), addr);
                    t.add_peer(COORDINATOR, addr);
                }
            }
        }
        let mut cfg = SystemConfig::default();
        cfg.rpc_timeout = timeout;
        cfg.rpc_retries = retries;
        let rpc = RpcClient::new(t as Arc<dyn Transport>, CLIENT_ID, &cfg);
        Self {
            rpc,
            disp_ids,
            qs_ids,
            ix_ids,
            next: AtomicUsize::new(0),
        }
    }

    /// Ingests one tuple (round-robin across dispatcher processes' ids).
    pub fn insert(&self, tuple: Tuple) -> Result<()> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.disp_ids.len();
        self.rpc
            .call(self.disp_ids[i], Request::Ingest { tuple })?
            .into_ack()
    }

    /// Flushes the whole pipeline: buffered batches, queued tuples, and
    /// in-memory trees all land in chunks before this returns.
    pub fn flush(&self) -> Result<()> {
        match self.rpc.call(self.disp_ids[0], Request::Flush)? {
            Response::Flushed(_) => Ok(()),
            _ => Err(WwError::InvalidState(
                "gateway answered Flush with the wrong variant".into(),
            )),
        }
    }

    /// Runs a temporal range query through the coordinator.
    pub fn query(&self, keys: KeyInterval, times: TimeInterval) -> Result<QueryResult> {
        self.rpc
            .call(
                COORDINATOR,
                Request::ClientQuery {
                    keys,
                    times,
                    attr_eq: None,
                },
            )?
            .into_query()
    }

    /// Runs a range query constrained to `attr == value` through the
    /// coordinator (paper §VIII; see
    /// [`PAYLOAD_BYTE_ATTR`](crate::runtime::PAYLOAD_BYTE_ATTR) for the
    /// attribute every node process registers).
    pub fn query_attr(
        &self,
        keys: KeyInterval,
        times: TimeInterval,
        attr: u16,
        value: u64,
    ) -> Result<QueryResult> {
        self.rpc
            .call(
                COORDINATOR,
                Request::ClientQuery {
                    keys,
                    times,
                    attr_eq: Some((attr, value)),
                },
            )?
            .into_query()
    }

    /// Runs a temporal aggregate query through the coordinator.
    pub fn aggregate(
        &self,
        keys: KeyInterval,
        times: TimeInterval,
        kind: AggregateKind,
    ) -> Result<AggregateAnswer> {
        self.rpc
            .call(COORDINATOR, Request::ClientAggregate { keys, times, kind })?
            .into_aggregate()
    }

    /// Pings one server id (any role).
    pub fn ping(&self, id: ServerId) -> Result<()> {
        match self.rpc.call(id, Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(WwError::InvalidState(
                "ping answered the wrong variant".into(),
            )),
        }
    }

    /// Asks a role's process to exit cleanly. The listener acknowledges
    /// before tearing down, so an `Ok` means the request landed.
    pub fn shutdown_role(&self, role: Role) -> Result<()> {
        let dst = match role {
            Role::Meta => META_SERVER,
            Role::Indexing => self.ix_ids[0],
            Role::Query => self.qs_ids[0],
            Role::Dispatcher => self.disp_ids[0],
        };
        self.rpc.call(dst, Request::Shutdown)?.into_ack()
    }
}
