//! Launching and talking to a multi-process loopback cluster.
//!
//! [`ClusterSpec::launch`] spawns the role processes (meta → indexing ×
//! `indexing_processes` → query × `query_processes` → dispatcher, so each
//! child's dependencies are already listening), reads each child's
//! `WW_NODE_READY <addr>` handshake line, and threads the accumulated
//! peer map into the next child's environment. The returned
//! [`ClusterHandle`] owns the children — and can reshape the cluster
//! live: [`ClusterHandle::add_node`] / [`ClusterHandle::drain_node`] grow
//! and shrink the indexing tier while ingest and queries keep running.
//! [`ClusterHandle::shutdown`] retires them via `Shutdown` RPCs (client
//! gateway first, metadata last) with a kill fallback, and dropping the
//! handle kills anything still running — tests never leak processes.

use crate::runtime::{dispatcher_ids, indexing_ids, query_ids, slice_ids, NodeConfig, Role};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_agg::AggregateAnswer;
use waterwheel_core::{
    AggregateKind, KeyInterval, QueryResult, Result, ServerId, SystemConfig, TimeInterval, Tuple,
    WwError,
};
use waterwheel_meta::MembershipView;
use waterwheel_net::{
    MetaRequest, MetaResponse, Request, Response, RpcClient, TcpTransport, Transport, COORDINATOR,
    META_SERVER,
};

/// The source address external clients send from (outside every server
/// id range).
pub const CLIENT_ID: ServerId = ServerId(5_000);

/// Shape of a multi-process cluster: the shared filesystem root plus the
/// same counts the embedded builder takes.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Shared root (chunks, metadata snapshot) every process opens.
    pub root: PathBuf,
    /// Indexing-server count.
    pub indexing_servers: usize,
    /// Query-server count.
    pub query_servers: usize,
    /// Dispatcher count.
    pub dispatchers: usize,
    /// Simulated cluster nodes.
    pub nodes: usize,
    /// Chunk size driving flush boundaries.
    pub chunk_size_bytes: usize,
    /// Whether durable surfaces fsync on commit
    /// (`SystemConfig::durability_fsync`).
    pub durability_fsync: bool,
    /// WAL segment size (`SystemConfig::wal_segment_bytes`).
    pub wal_segment_bytes: usize,
    /// Chunk format newly flushed chunks are written in
    /// (`SystemConfig::chunk_format_version`); readers dispatch per
    /// chunk, so restarting with a different value yields a valid
    /// mixed-version store.
    pub chunk_format_version: u32,
    /// OS processes sharing the indexing role; `indexing_servers` must
    /// divide evenly across them. [`ClusterHandle::add_node`] grows this
    /// count live.
    pub indexing_processes: usize,
    /// OS processes sharing the query role; `query_servers` must divide
    /// evenly across them.
    pub query_processes: usize,
    /// Membership lease renewal cadence
    /// (`SystemConfig::heartbeat_interval`).
    pub heartbeat_interval: Duration,
    /// Membership lease duration (`SystemConfig::lease_ttl`); a process
    /// that stops heartbeating for this long is evicted by the metadata
    /// server's sweeper.
    pub lease_ttl: Duration,
}

impl ClusterSpec {
    /// A spec with small, test-friendly defaults.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let cfg = SystemConfig::default();
        Self {
            root: root.into(),
            indexing_servers: 2,
            query_servers: 2,
            dispatchers: 2,
            nodes: 4,
            chunk_size_bytes: cfg.chunk_size_bytes,
            durability_fsync: cfg.durability_fsync,
            wal_segment_bytes: cfg.wal_segment_bytes,
            chunk_format_version: cfg.chunk_format_version,
            indexing_processes: 1,
            query_processes: 1,
            heartbeat_interval: cfg.heartbeat_interval,
            lease_ttl: cfg.lease_ttl,
        }
    }

    fn node_config(
        &self,
        role: Role,
        proc_index: usize,
        peers: Vec<(Role, usize, SocketAddr)>,
    ) -> NodeConfig {
        let mut nc = NodeConfig::new(role, "127.0.0.1:0", &self.root);
        nc.indexing_servers = self.indexing_servers;
        nc.query_servers = self.query_servers;
        nc.dispatchers = self.dispatchers;
        nc.nodes = self.nodes;
        nc.chunk_size_bytes = self.chunk_size_bytes;
        nc.durability_fsync = self.durability_fsync;
        nc.wal_segment_bytes = self.wal_segment_bytes;
        nc.chunk_format_version = self.chunk_format_version;
        nc.indexing_processes = self.indexing_processes;
        nc.query_processes = self.query_processes;
        nc.proc_index = proc_index;
        nc.heartbeat_interval = self.heartbeat_interval;
        nc.lease_ttl = self.lease_ttl;
        nc.peers = peers;
        nc
    }

    /// The launch plan: every `(role, proc_index)` in dependency order —
    /// meta first, then each indexing and query slice, the dispatcher
    /// gateway last.
    fn launch_order(&self) -> Vec<(Role, usize)> {
        let mut order = vec![(Role::Meta, 0)];
        order.extend((0..self.indexing_processes.max(1)).map(|p| (Role::Indexing, p)));
        order.extend((0..self.query_processes.max(1)).map(|p| (Role::Query, p)));
        order.push((Role::Dispatcher, 0));
        order
    }

    /// Spawns the role processes from `binary` (any executable whose
    /// `main` calls [`crate::maybe_run_child`] first — the
    /// `waterwheel-node` binary, or a self-hosting example/test).
    pub fn launch(&self, binary: impl AsRef<Path>) -> Result<ClusterHandle> {
        let binary = binary.as_ref();
        std::fs::create_dir_all(&self.root)?;
        let mut procs: Vec<NodeProc> = Vec::new();
        let mut peers: Vec<(Role, usize, SocketAddr)> = Vec::new();
        for (role, proc_index) in self.launch_order() {
            let mut cmd = Command::new(binary);
            cmd.stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit());
            self.node_config(role, proc_index, peers.clone())
                .apply_env(&mut cmd);
            let mut child = cmd.spawn()?;
            let addr = match read_ready(&mut child) {
                Ok(addr) => addr,
                Err(e) => {
                    // Reap what already started; nothing must outlive a
                    // failed launch.
                    let _ = child.kill();
                    let _ = child.wait();
                    for mut p in procs {
                        let _ = p.child.kill();
                        let _ = p.child.wait();
                    }
                    return Err(e);
                }
            };
            peers.push((role, proc_index, addr));
            procs.push(NodeProc {
                role,
                proc_index,
                child,
                addr,
                killed: false,
            });
        }
        Ok(ClusterHandle {
            spec: self.clone(),
            binary: binary.to_path_buf(),
            procs,
        })
    }
}

/// Blocks until the child prints its `WW_NODE_READY <addr>` handshake.
fn read_ready(child: &mut Child) -> Result<SocketAddr> {
    let stdout = child.stdout.take().ok_or_else(|| {
        WwError::InvalidState("node child was spawned without a stdout pipe".into())
    })?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line?;
        if let Some(addr) = line.strip_prefix("WW_NODE_READY ") {
            return addr.trim().parse().map_err(|_| WwError::Corrupt {
                what: "node ready handshake",
                detail: format!("unparseable address {addr:?}"),
            });
        }
    }
    Err(WwError::InvalidState(
        "node process exited before reporting ready".into(),
    ))
}

struct NodeProc {
    role: Role,
    proc_index: usize,
    child: Child,
    addr: SocketAddr,
    /// SIGKILLed by [`ClusterHandle::kill_nine`] and already reaped:
    /// shutdown must not waste a deadline RPCing into the void.
    killed: bool,
}

/// A running multi-process cluster; owns the child processes.
pub struct ClusterHandle {
    spec: ClusterSpec,
    binary: PathBuf,
    procs: Vec<NodeProc>,
}

impl ClusterHandle {
    /// The listen address of a role's process.
    pub fn addr(&self, role: Role) -> Option<SocketAddr> {
        self.procs.iter().find(|p| p.role == role).map(|p| p.addr)
    }

    /// A client speaking the gateway RPC verbs against this cluster.
    pub fn client(&self) -> ClusterClient {
        // Client calls wrap whole pipeline stages (a Flush pumps every
        // queued tuple); give them room before a retry re-enters.
        self.client_with_timeout(Duration::from_secs(10), 2)
    }

    /// A client with an explicit per-attempt deadline and retry budget —
    /// probes that expect the cluster to be down want a short one, since
    /// the transport keeps re-connecting until the deadline expires.
    pub fn client_with_timeout(&self, timeout: Duration, retries: u32) -> ClusterClient {
        let peers: Vec<(Role, usize, SocketAddr)> = self
            .procs
            .iter()
            .map(|p| (p.role, p.proc_index, p.addr))
            .collect();
        ClusterClient::connect(&self.spec, &peers, timeout, retries)
    }

    /// A client with its own source identity for batch ingest. Each
    /// concurrently-ingesting thread needs a distinct identity: the
    /// gateway dedups [`ClusterClient::insert_batch`] deliveries on
    /// `(client id, dispatcher id)` sequence watermarks, so two threads
    /// sharing one identity would shadow each other's batches.
    pub fn ingest_client(&self, lane: u32) -> ClusterClient {
        let peers: Vec<(Role, usize, SocketAddr)> = self
            .procs
            .iter()
            .map(|p| (p.role, p.proc_index, p.addr))
            .collect();
        ClusterClient::connect_as(
            &self.spec,
            &peers,
            Duration::from_secs(10),
            2,
            ServerId(CLIENT_ID.0 + 1 + lane),
        )
    }

    /// SIGKILLs a role's process mid-flight (`Child::kill` delivers
    /// SIGKILL on Unix — no grace, no cleanup handlers) and reaps it. The
    /// rest of the cluster keeps running degraded until [`Self::restart`]
    /// brings the role back at the same address. This is the crash-
    /// recovery rig's hammer: everything the process held only in memory
    /// or unsynced buffers is gone.
    pub fn kill_nine(&mut self, role: Role) -> Result<()> {
        let p = self
            .procs
            .iter_mut()
            .find(|p| p.role == role && p.proc_index == 0)
            .ok_or_else(|| WwError::InvalidState(format!("no {role} process to kill")))?;
        p.child.kill()?;
        p.child.wait()?;
        p.killed = true;
        Ok(())
    }

    /// Changes the chunk format that processes launched by later
    /// [`Self::restart`] calls write. Already-sealed chunks keep their
    /// format — readers dispatch per chunk — so flipping this across a
    /// restart produces a mixed-version store on purpose.
    pub fn set_chunk_format_version(&mut self, version: u32) {
        self.spec.chunk_format_version = version;
    }

    /// Respawns a role (after [`Self::kill_nine`]) at its **original
    /// address** — the rest of the cluster still routes there — with the
    /// full peer map, and blocks until the child reports ready. The
    /// restarted process recovers from durable state alone: queue WAL,
    /// metadata snapshot + log, and sealed chunk files.
    pub fn restart(&mut self, role: Role) -> Result<()> {
        let pos = self
            .procs
            .iter()
            .position(|p| p.role == role && p.proc_index == 0)
            .ok_or_else(|| WwError::InvalidState(format!("no {role} process to restart")))?;
        let peers: Vec<(Role, usize, SocketAddr)> = self
            .procs
            .iter()
            .map(|p| (p.role, p.proc_index, p.addr))
            .collect();
        let old_addr = self.procs[pos].addr;
        let mut nc = self.spec.node_config(role, 0, peers);
        nc.listen = old_addr.to_string();
        let mut cmd = Command::new(&self.binary);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        nc.apply_env(&mut cmd);
        let mut child = cmd.spawn()?;
        let addr = match read_ready(&mut child) {
            Ok(addr) => addr,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        if addr != old_addr {
            let _ = child.kill();
            let _ = child.wait();
            return Err(WwError::InvalidState(format!(
                "restarted {role} bound {addr}, expected {old_addr}"
            )));
        }
        self.procs[pos] = NodeProc {
            role,
            proc_index: 0,
            child,
            addr,
            killed: false,
        };
        Ok(())
    }

    /// The id of the first server hosted by `(role, proc_index)` — the
    /// representative a control RPC (shutdown, flush) addresses to reach
    /// that process.
    fn rep_id(&self, role: Role, proc_index: usize) -> ServerId {
        match role {
            Role::Meta => META_SERVER,
            Role::Dispatcher => dispatcher_ids(self.spec.dispatchers)[0],
            Role::Indexing => slice_ids(
                &indexing_ids(self.spec.indexing_servers),
                proc_index,
                self.spec.indexing_processes,
            )[0],
            Role::Query => slice_ids(
                &query_ids(self.spec.query_servers),
                proc_index,
                self.spec.query_processes,
            )[0],
        }
    }

    /// Grows the indexing tier by one OS process (Fig. 17 scale-out),
    /// live: spawns the process with `indexing_servers / indexing_processes`
    /// fresh server ids appended above the existing slices (so no existing
    /// process's slice moves), announces the new routes to the gateway, and
    /// runs the live migration state machine to rebalance key ownership
    /// onto the joiners. Ingest and queries keep running — and keep
    /// answering exactly — throughout. Returns the membership epoch after
    /// the cut-over.
    pub fn add_node(&mut self) -> Result<u64> {
        let per = self.spec.indexing_servers / self.spec.indexing_processes;
        let proc_index = self.spec.indexing_processes;
        let mut grown = self.spec.clone();
        grown.indexing_servers += per;
        grown.indexing_processes += 1;
        let peers: Vec<(Role, usize, SocketAddr)> = self
            .procs
            .iter()
            .map(|p| (p.role, p.proc_index, p.addr))
            .collect();
        let mut cmd = Command::new(&self.binary);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        grown
            .node_config(Role::Indexing, proc_index, peers)
            .apply_env(&mut cmd);
        let mut child = cmd.spawn()?;
        let addr = match read_ready(&mut child) {
            Ok(addr) => addr,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        self.procs.push(NodeProc {
            role: Role::Indexing,
            proc_index,
            child,
            addr,
            killed: false,
        });
        self.spec = grown;
        // The joiner registered its membership leases before reporting
        // ready; the rest of the cluster just needs routes to the new ids
        // before the rebalance reassigns ownership onto them.
        let client = self.client();
        let new_ids = slice_ids(
            &indexing_ids(self.spec.indexing_servers),
            proc_index,
            self.spec.indexing_processes,
        );
        client.register_peers(new_ids.iter().map(|&id| (id, addr.to_string())).collect())?;
        let (epoch, _ranges) = client.migrate_uniform()?;
        Ok(epoch)
    }

    /// Shrinks the indexing tier by one OS process, live: the last-added
    /// process's servers leave the membership, the migration state machine
    /// moves their key ranges (and seals their in-memory trees into
    /// globally-reachable chunks) onto the survivors, and only then is the
    /// process retired. Returns the membership epoch after the cut-over.
    pub fn drain_node(&mut self) -> Result<u64> {
        if self.spec.indexing_processes <= 1 {
            return Err(WwError::InvalidState(
                "cannot drain the last indexing process".into(),
            ));
        }
        let victim_proc = self.spec.indexing_processes - 1;
        let per = self.spec.indexing_servers / self.spec.indexing_processes;
        let victim_ids = slice_ids(
            &indexing_ids(self.spec.indexing_servers),
            victim_proc,
            self.spec.indexing_processes,
        );
        let client = self.client();
        // Leases first: the rebalance below reads the live membership, so
        // the victims must be gone from it before ownership is recomputed.
        for &id in &victim_ids {
            client.leave(id)?;
        }
        let (epoch, _ranges) = client.migrate_uniform()?;
        // Belt over the §III-D braces: the migration already sealed the
        // victims as sources, but one more drain closes the window for a
        // dispatch that raced the schema swap.
        for &id in &victim_ids {
            client.flush_server(id)?;
        }
        let _ = client.shutdown_server(victim_ids[0]);
        let pos = self
            .procs
            .iter()
            .position(|p| p.role == Role::Indexing && p.proc_index == victim_proc)
            .ok_or_else(|| WwError::InvalidState("no process hosts the drained slice".into()))?;
        let mut p = self.procs.remove(pos);
        wait_or_kill(&mut p.child, Duration::from_secs(10));
        self.spec.indexing_servers -= per;
        self.spec.indexing_processes -= 1;
        Ok(epoch)
    }

    /// Retires the cluster: `Shutdown` RPC per process — gateway first so
    /// nothing keeps dispatching into dying backends, metadata last —
    /// then waits for each child, killing any that ignore the request.
    /// Roles already SIGKILLed (and not restarted) are skipped rather
    /// than RPCed into the void. Returns an error if any child had to be
    /// killed or exited dirty.
    pub fn shutdown(mut self) -> Result<()> {
        let client = self.client();
        let mut clean = true;
        for role in [Role::Dispatcher, Role::Query, Role::Indexing, Role::Meta] {
            let targets: Vec<(usize, bool)> = self
                .procs
                .iter()
                .filter(|p| p.role == role)
                .map(|p| (p.proc_index, p.killed))
                .collect();
            for (proc_index, killed) in targets {
                if killed {
                    clean = false;
                } else {
                    clean &= client
                        .shutdown_server(self.rep_id(role, proc_index))
                        .is_ok();
                }
            }
            // Reap this tier before shutting down the ones it still talks
            // to: a retiring dispatcher refreshes its routing table against
            // meta, and retiring indexing/query processes send their
            // farewell `leave` there — tearing meta down first would leave
            // them blocking on a dead listener instead of exiting.
            for p in self
                .procs
                .iter_mut()
                .filter(|p| p.role == role && !p.killed)
            {
                clean &= wait_or_kill(&mut p.child, Duration::from_secs(10));
            }
        }
        self.procs.clear();
        if clean {
            Ok(())
        } else {
            Err(WwError::InvalidState(
                "a node process had to be killed during shutdown".into(),
            ))
        }
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        for p in &mut self.procs {
            if p.child.try_wait().ok().flatten().is_none() {
                let _ = p.child.kill();
            }
            let _ = p.child.wait();
        }
    }
}

/// Waits for a child to exit cleanly within `grace`; kills it otherwise.
/// Returns whether the exit was clean (no kill, zero status).
fn wait_or_kill(child: &mut Child, grace: Duration) -> bool {
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return status.success(),
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return false;
            }
        }
    }
}

/// A typed client for a multi-process cluster: inserts through the
/// dispatcher gateway, queries through the coordinator, and shuts roles
/// down — all over one pooled TCP transport.
pub struct ClusterClient {
    rpc: RpcClient,
    disp_ids: Vec<ServerId>,
    qs_ids: Vec<ServerId>,
    ix_ids: Vec<ServerId>,
    next: AtomicUsize,
    batch_seq: AtomicU64,
}

impl ClusterClient {
    fn connect(
        spec: &ClusterSpec,
        peers: &[(Role, usize, SocketAddr)],
        timeout: Duration,
        retries: u32,
    ) -> Self {
        Self::connect_as(spec, peers, timeout, retries, CLIENT_ID)
    }

    fn connect_as(
        spec: &ClusterSpec,
        peers: &[(Role, usize, SocketAddr)],
        timeout: Duration,
        retries: u32,
        src: ServerId,
    ) -> Self {
        let disp_ids = dispatcher_ids(spec.dispatchers);
        let qs_ids = query_ids(spec.query_servers);
        let ix_ids = indexing_ids(spec.indexing_servers);
        let t = Arc::new(TcpTransport::new());
        for &(role, idx, addr) in peers {
            match role {
                Role::Meta => t.add_peer(META_SERVER, addr),
                Role::Indexing => {
                    t.add_peers(slice_ids(&ix_ids, idx, spec.indexing_processes), addr)
                }
                Role::Query => t.add_peers(slice_ids(&qs_ids, idx, spec.query_processes), addr),
                Role::Dispatcher => {
                    t.add_peers(disp_ids.iter().copied(), addr);
                    t.add_peer(COORDINATOR, addr);
                }
            }
        }
        let mut cfg = SystemConfig::default();
        cfg.rpc_timeout = timeout;
        cfg.rpc_retries = retries;
        let rpc = RpcClient::new(t as Arc<dyn Transport>, src, &cfg);
        Self {
            rpc,
            disp_ids,
            qs_ids,
            ix_ids,
            next: AtomicUsize::new(0),
            batch_seq: AtomicU64::new(0),
        }
    }

    /// Ingests one tuple (round-robin across dispatcher processes' ids).
    pub fn insert(&self, tuple: Tuple) -> Result<()> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.disp_ids.len();
        self.rpc
            .call(self.disp_ids[i], Request::Ingest { tuple })?
            .into_ack()
    }

    /// Ingests a whole batch in one exactly-once RPC, returning how many
    /// tuples the gateway accepted. The batch carries this client's own
    /// monotonic sequence number, so a timed-out-and-retried delivery is
    /// recognised and never appended twice.
    ///
    /// The dedup key is `(client id, dispatcher id, seq)`: batches from
    /// one client must reach a given dispatcher in sequence order, so
    /// drive a client from a single thread (use
    /// [`ClusterHandle::ingest_client`] to give each ingesting thread its
    /// own identity).
    pub fn insert_batch(&self, tuples: Vec<Tuple>) -> Result<u32> {
        let seq = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let dst = self.disp_ids[seq as usize % self.disp_ids.len()];
        let (n, _deduped) = self
            .rpc
            .call(dst, Request::IngestBatch { seq, tuples })?
            .into_ack_batch()?;
        Ok(n)
    }

    /// Flushes the whole pipeline: buffered batches, queued tuples, and
    /// in-memory trees all land in chunks before this returns.
    pub fn flush(&self) -> Result<()> {
        match self.rpc.call(self.disp_ids[0], Request::Flush)? {
            Response::Flushed(_) => Ok(()),
            _ => Err(WwError::InvalidState(
                "gateway answered Flush with the wrong variant".into(),
            )),
        }
    }

    /// Runs a temporal range query through the coordinator.
    pub fn query(&self, keys: KeyInterval, times: TimeInterval) -> Result<QueryResult> {
        self.rpc
            .call(
                COORDINATOR,
                Request::ClientQuery {
                    keys,
                    times,
                    attr_eq: None,
                },
            )?
            .into_query()
    }

    /// Runs a range query constrained to `attr == value` through the
    /// coordinator (paper §VIII; see
    /// [`PAYLOAD_BYTE_ATTR`](crate::runtime::PAYLOAD_BYTE_ATTR) for the
    /// attribute every node process registers).
    pub fn query_attr(
        &self,
        keys: KeyInterval,
        times: TimeInterval,
        attr: u16,
        value: u64,
    ) -> Result<QueryResult> {
        self.rpc
            .call(
                COORDINATOR,
                Request::ClientQuery {
                    keys,
                    times,
                    attr_eq: Some((attr, value)),
                },
            )?
            .into_query()
    }

    /// Runs a temporal aggregate query through the coordinator.
    pub fn aggregate(
        &self,
        keys: KeyInterval,
        times: TimeInterval,
        kind: AggregateKind,
    ) -> Result<AggregateAnswer> {
        self.rpc
            .call(COORDINATOR, Request::ClientAggregate { keys, times, kind })?
            .into_aggregate()
    }

    /// Pings one server id (any role).
    pub fn ping(&self, id: ServerId) -> Result<()> {
        match self.rpc.call(id, Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(WwError::InvalidState(
                "ping answered the wrong variant".into(),
            )),
        }
    }

    /// Asks a role's first process to exit cleanly. The listener
    /// acknowledges before tearing down, so an `Ok` means the request
    /// landed.
    pub fn shutdown_role(&self, role: Role) -> Result<()> {
        let dst = match role {
            Role::Meta => META_SERVER,
            Role::Indexing => self.ix_ids[0],
            Role::Query => self.qs_ids[0],
            Role::Dispatcher => self.disp_ids[0],
        };
        self.shutdown_server(dst)
    }

    /// Asks the process hosting `id` to exit cleanly.
    pub fn shutdown_server(&self, id: ServerId) -> Result<()> {
        self.rpc.call(id, Request::Shutdown)?.into_ack()
    }

    /// Drains and seals one indexing server: pump its queue partition dry,
    /// then flush its in-memory tree into chunks.
    pub fn flush_server(&self, id: ServerId) -> Result<()> {
        self.rpc
            .call(id, Request::Flush)?
            .into_flushed()
            .map(|_| ())
    }

    /// Teaches the gateway process the socket addresses of servers that
    /// joined after it launched — routing to them works from the next RPC.
    pub fn register_peers(&self, peers: Vec<(ServerId, String)>) -> Result<()> {
        self.rpc
            .call(COORDINATOR, Request::RegisterPeers { peers })?
            .into_ack()
    }

    /// Runs the gateway's live migration state machine: rebalance key
    /// ownership uniformly across the current indexing membership. Returns
    /// `(membership epoch after the cut-over, ranges that moved)`; the call
    /// is idempotent when ownership is already uniform (`ranges == 0`).
    pub fn migrate_uniform(&self) -> Result<(u64, u32)> {
        self.rpc
            .call(COORDINATOR, Request::MigrateUniform)?
            .into_migrated()
    }

    /// Gracefully removes one server from the membership (its process may
    /// keep running — [`ClusterHandle::drain_node`] retires it after the
    /// rebalance). Returns the membership epoch after the departure.
    pub fn leave(&self, server: ServerId) -> Result<u64> {
        match self
            .rpc
            .call(META_SERVER, Request::Meta(MetaRequest::Leave { server }))?
            .into_meta()?
        {
            MetaResponse::Epoch(e) => Ok(e),
            _ => Err(WwError::InvalidState(
                "leave answered the wrong meta variant".into(),
            )),
        }
    }

    /// The metadata server's current epoch-numbered membership view.
    pub fn membership(&self) -> Result<MembershipView> {
        match self
            .rpc
            .call(META_SERVER, Request::Meta(MetaRequest::Membership))?
            .into_meta()?
        {
            MetaResponse::Membership(v) => Ok(v),
            _ => Err(WwError::InvalidState(
                "membership answered the wrong meta variant".into(),
            )),
        }
    }
}
