//! Property tests hardening the wire codec: every `Request`/`Response`
//! variant round-trips byte-exactly, and decoding adversarial input —
//! truncated, bit-flipped, or length-corrupted frames — returns `WwError`
//! without panicking or over-allocating.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_agg::{AggregateAnswer, FoldOutcome, PartialAgg};
use waterwheel_core::aggregate::AggregateKind;
use waterwheel_core::{
    ChunkId, KeyInterval, QueryId, QueryResult, Region, ServerId, SubQuery, SubQueryId,
    SubQueryTarget, TimeInterval, Tuple,
};
use waterwheel_index::secondary::{AttrProbe, ChunkAttrIndex};
use waterwheel_index::Bitmap;
use waterwheel_meta::{ChunkInfo, PartitionSchema, SummaryExtent};
use waterwheel_net::envelope::{Envelope, MetaRequest, MetaResponse, Request, Response};
use waterwheel_net::wire::{self, Frame};

/// A tiny deterministic generator seeded per property case; the shim's
/// strategies hand us the seed, plain code builds the variants.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn interval_keys(&mut self) -> KeyInterval {
        let a = self.next();
        let b = self.next();
        KeyInterval::new(a.min(b), a.max(b))
    }

    fn interval_times(&mut self) -> TimeInterval {
        let a = self.next();
        let b = self.next();
        TimeInterval::new(a.min(b), a.max(b))
    }

    fn region(&mut self) -> Region {
        Region::new(self.interval_keys(), self.interval_times())
    }

    fn tuple(&mut self) -> Tuple {
        let len = self.below(64) as usize;
        let payload: Vec<u8> = (0..len).map(|_| self.next() as u8).collect();
        Tuple::new(self.next(), self.next(), payload)
    }

    fn tuples(&mut self) -> Vec<Tuple> {
        let n = self.below(8) as usize;
        (0..n).map(|_| self.tuple()).collect()
    }

    fn bitmap(&mut self) -> Bitmap {
        let mut b = Bitmap::new();
        for _ in 0..self.below(20) {
            b.insert(self.below(512) as u32);
        }
        b
    }

    fn partial_agg(&mut self) -> PartialAgg {
        let mut agg = PartialAgg::default();
        for _ in 0..self.below(5) {
            agg.insert(self.below(1_000));
        }
        agg
    }

    fn agg_kind(&mut self) -> AggregateKind {
        AggregateKind::ALL[self.below(AggregateKind::ALL.len() as u64) as usize]
    }

    fn subquery(&mut self) -> SubQuery {
        SubQuery {
            id: SubQueryId {
                query: QueryId(self.next()),
                index: self.next() as u32,
            },
            keys: self.interval_keys(),
            times: self.interval_times(),
            predicate: None,
            measure_range: self.measure_range(),
            target: if self.below(2) == 0 {
                SubQueryTarget::InMemory(ServerId(self.next() as u32))
            } else {
                SubQueryTarget::Chunk(ChunkId(self.next()))
            },
        }
    }

    fn measure_range(&mut self) -> Option<(u64, u64)> {
        if self.below(2) == 0 {
            None
        } else {
            let a = self.next();
            let b = self.next();
            Some((a.min(b), a.max(b)))
        }
    }

    fn summary_extent(&mut self) -> SummaryExtent {
        SummaryExtent {
            cells: self.next(),
            bytes: self.next(),
            levels: self.next() as u8,
            slice_bits: self.below(16) as u8,
            measure_range: self.measure_range(),
        }
    }

    fn meta_request(&mut self) -> MetaRequest {
        match self.below(10) {
            0 => MetaRequest::UpdateMemoryRegion {
                server: ServerId(self.next() as u32),
                region: if self.below(2) == 0 {
                    None
                } else {
                    Some(self.region())
                },
            },
            1 => MetaRequest::AllocateChunkId,
            2 => MetaRequest::RegisterChunk {
                chunk: ChunkId(self.next()),
                info: ChunkInfo {
                    region: self.region(),
                    count: self.next(),
                    bytes: self.next(),
                    producer: ServerId(self.next() as u32),
                },
                durable_offset: self.next(),
            },
            3 => MetaRequest::RegisterSummary {
                chunk: ChunkId(self.next()),
                extent: self.summary_extent(),
            },
            4 => {
                let leaves = self.below(8) as usize;
                let mut leaf_values = Vec::with_capacity(leaves);
                for _ in 0..leaves {
                    let n = self.below(6) as usize;
                    let vals: Vec<u64> = (0..n).map(|_| self.below(100)).collect();
                    leaf_values.push(vals);
                }
                MetaRequest::RegisterAttrIndex {
                    chunk: ChunkId(self.next()),
                    attr: self.next() as u16,
                    index: ChunkAttrIndex::build(&leaf_values, 8),
                }
            }
            5 => MetaRequest::ChunksOverlapping {
                region: self.region(),
            },
            6 => MetaRequest::MemoryRegionsOverlapping {
                region: self.region(),
            },
            7 => MetaRequest::AttrProbe {
                chunk: ChunkId(self.next()),
                attr: self.next() as u16,
                value: self.next(),
            },
            8 => MetaRequest::SummaryExtent {
                chunk: ChunkId(self.next()),
            },
            _ => MetaRequest::Partition,
        }
    }

    fn request(&mut self) -> Request {
        match self.below(12) {
            0 => Request::Ingest {
                tuple: self.tuple(),
            },
            1 => Request::IngestBatch {
                seq: self.next(),
                tuples: self.tuples(),
            },
            2 => Request::Flush,
            3 => Request::InMemorySubquery {
                sq: self.subquery(),
            },
            4 => Request::AggregateInMemory {
                slices: {
                    let a = self.next() as u16;
                    let b = self.next() as u16;
                    (a.min(b), a.max(b))
                },
                covered: self.interval_times(),
            },
            5 => Request::ChunkSubquery {
                sq: self.subquery(),
                chunk: ChunkId(self.next()),
                leaf_filter: if self.below(2) == 0 {
                    None
                } else {
                    Some(self.bitmap())
                },
            },
            6 => Request::ReadSummary {
                chunk: ChunkId(self.next()),
            },
            7 => Request::Ping,
            8 => Request::Meta(self.meta_request()),
            9 => Request::ClientQuery {
                keys: self.interval_keys(),
                times: self.interval_times(),
                attr_eq: if self.below(2) == 0 {
                    None
                } else {
                    Some((self.next() as u16, self.next()))
                },
            },
            10 => Request::ClientAggregate {
                keys: self.interval_keys(),
                times: self.interval_times(),
                kind: self.agg_kind(),
            },
            _ => Request::Shutdown,
        }
    }

    fn meta_response(&mut self) -> MetaResponse {
        match self.below(7) {
            0 => MetaResponse::Ack,
            1 => MetaResponse::Allocated(ChunkId(self.next())),
            2 => MetaResponse::Chunks(
                (0..self.below(6))
                    .map(|_| (ChunkId(self.next()), self.region()))
                    .collect(),
            ),
            3 => MetaResponse::Regions(
                (0..self.below(6))
                    .map(|_| (ServerId(self.next() as u32), self.region()))
                    .collect(),
            ),
            4 => MetaResponse::Probe(match self.below(3) {
                0 => AttrProbe::Absent,
                1 => AttrProbe::Leaves(self.bitmap()),
                _ => AttrProbe::Unknown,
            }),
            5 => MetaResponse::Extent(if self.below(2) == 0 {
                None
            } else {
                Some(self.summary_extent())
            }),
            _ => MetaResponse::Partition(if self.below(2) == 0 {
                None
            } else {
                let n = 1 + self.below(8);
                Some(PartitionSchema::uniform(
                    &(0..n).map(|i| ServerId(i as u32)).collect::<Vec<_>>(),
                ))
            }),
        }
    }

    fn response(&mut self) -> Response {
        match self.below(9) {
            0 => Response::Ack,
            1 => Response::AckBatch {
                tuples: self.next() as u32,
                deduped: self.below(2) == 0,
            },
            2 => Response::Pong,
            3 => Response::Tuples(self.tuples()),
            4 => Response::Flushed((0..self.below(6)).map(|_| ChunkId(self.next())).collect()),
            5 => Response::Fold(FoldOutcome {
                agg: self.partial_agg(),
                cells_merged: self.next(),
                residues: (0..self.below(4)).map(|_| self.interval_times()).collect(),
            }),
            6 => Response::Meta(self.meta_response()),
            7 => Response::Query(QueryResult {
                query_id: QueryId(self.next()),
                tuples: self.tuples(),
                subqueries: self.next() as u32,
            }),
            _ => Response::Aggregate(AggregateAnswer {
                query_id: QueryId(self.next()),
                kind: self.agg_kind(),
                agg: self.partial_agg(),
                cells_merged: self.next(),
                scanned_tuples: self.next(),
            }),
        }
    }
}

fn envelope(gen: &mut Gen) -> Envelope {
    Envelope {
        src: ServerId(gen.next() as u32),
        dst: ServerId(gen.next() as u32),
        rpc_id: gen.next(),
        deadline: Instant::now() + Duration::from_millis(gen.below(100_000)),
        payload: gen.request(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_variant_round_trips(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let env = envelope(&mut gen);
        let corr = gen.next();
        let frame = wire::encode_request(corr, &env);
        let body = wire::read_frame(&mut &frame[..]).unwrap().unwrap();
        let Frame::Request { corr: got_corr, env: got } = wire::decode_frame(&body).unwrap()
        else {
            return Err(TestCaseError::fail("request decoded as a response"));
        };
        prop_assert_eq!(got_corr, corr);
        prop_assert_eq!(got.src, env.src);
        prop_assert_eq!(got.dst, env.dst);
        prop_assert_eq!(got.rpc_id, env.rpc_id);
        // Payloads carry no closures (the generator never sets predicates),
        // so the Debug rendering is a faithful structural comparison.
        prop_assert_eq!(format!("{:?}", got.payload), format!("{:?}", env.payload));
    }

    #[test]
    fn every_response_variant_round_trips(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let resp = gen.response();
        let corr = gen.next();
        let frame = wire::encode_response_ok(corr, &resp);
        let body = wire::read_frame(&mut &frame[..]).unwrap().unwrap();
        let Frame::Response { corr: got_corr, result } = wire::decode_frame(&body).unwrap()
        else {
            return Err(TestCaseError::fail("response decoded as a request"));
        };
        prop_assert_eq!(got_corr, corr);
        let got = result.unwrap();
        prop_assert_eq!(format!("{got:?}"), format!("{resp:?}"));
    }

    #[test]
    fn truncated_frames_fail_gracefully(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let frame = if gen.below(2) == 0 {
            wire::encode_request(gen.next(), &envelope(&mut gen))
        } else {
            wire::encode_response_ok(gen.next(), &gen.response())
        };
        let body = wire::read_frame(&mut &frame[..]).unwrap().unwrap();
        let cut = gen.below(body.len() as u64) as usize;
        // Any strict prefix is missing bytes some decoder needs: an error,
        // never a panic.
        prop_assert!(wire::decode_frame(&body[..cut]).is_err());
        // Truncating the raw stream (length prefix included) must also
        // surface as an error or clean EOF, never a panic.
        let stream_cut = gen.below(frame.len() as u64) as usize;
        let r = wire::read_frame(&mut &frame[..stream_cut]);
        prop_assert!(
            !matches!(r, Ok(Some(_))),
            "a truncated stream produced a whole frame"
        );
    }

    #[test]
    fn mutated_frames_never_panic(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let mut frame = if gen.below(2) == 0 {
            wire::encode_request(gen.next(), &envelope(&mut gen))
        } else {
            wire::encode_response_ok(gen.next(), &gen.response())
        };
        // Flip up to four random bytes anywhere in the frame — including
        // the length prefix and variant tags.
        for _ in 0..=gen.below(4) {
            let at = gen.below(frame.len() as u64) as usize;
            frame[at] ^= gen.next() as u8;
        }
        // Whatever comes out — a decoded frame, a decode error, or a short
        // read — the codec must not panic or reserve absurd buffers (the
        // frame-length cap rejects oversized announcements up front).
        if let Ok(Some(body)) = wire::read_frame(&mut &frame[..]) {
            let _ = wire::decode_frame(&body);
        }
    }

    #[test]
    fn error_frames_round_trip_their_taxonomy(seed in 0u64..u64::MAX) {
        use waterwheel_core::WwError;
        let mut gen = Gen(seed);
        let err = match gen.below(9) {
            0 => WwError::Io(std::io::Error::other("io")),
            1 => WwError::corrupt("thing", "detail"),
            2 => WwError::not_found("thing", gen.next()),
            3 => WwError::InvalidState("state".into()),
            4 => WwError::Config("config".into()),
            5 => WwError::Shutdown("who"),
            6 => WwError::Injected("what"),
            7 => WwError::Timeout("late"),
            _ => WwError::Unreachable("cut"),
        };
        let frame = wire::encode_response_err(gen.next(), &err);
        let body = wire::read_frame(&mut &frame[..]).unwrap().unwrap();
        let Frame::Response { result, .. } = wire::decode_frame(&body).unwrap() else {
            return Err(TestCaseError::fail("error frame decoded as a request"));
        };
        let got = result.unwrap_err();
        prop_assert_eq!(std::mem::discriminant(&got), std::mem::discriminant(&err));
        prop_assert_eq!(got.is_retryable(), err.is_retryable());
    }
}

/// Not a property, but belongs with the hardening suite: a frame whose
/// announced length is absurd must be rejected before any allocation, and
/// predicates survive as presence flags without poisoning the round trip.
#[test]
fn oversized_announcement_and_predicate_flag() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&(u32::MAX).to_le_bytes());
    frame.extend_from_slice(&[0u8; 32]);
    assert!(wire::read_frame(&mut &frame[..]).is_err());

    let env = Envelope {
        src: ServerId(0),
        dst: ServerId(1),
        rpc_id: 1,
        deadline: Instant::now() + Duration::from_secs(1),
        payload: Request::InMemorySubquery {
            sq: SubQuery {
                id: SubQueryId {
                    query: QueryId(1),
                    index: 0,
                },
                keys: KeyInterval::full(),
                times: TimeInterval::full(),
                predicate: Some(Arc::new(|t: &Tuple| t.key > 0)),
                measure_range: Some((3, 907)),
                target: SubQueryTarget::InMemory(ServerId(1)),
            },
        },
    };
    let frame = wire::encode_request(1, &env);
    let body = wire::read_frame(&mut &frame[..]).unwrap().unwrap();
    let Frame::Request { env: got, .. } = wire::decode_frame(&body).unwrap() else {
        panic!("expected a request frame");
    };
    match got.payload {
        Request::InMemorySubquery { sq } => assert!(sq.predicate.is_none()),
        other => panic!("wrong payload: {other:?}"),
    }
}
