//! Property tests for the reactor's incremental frame assembler: a byte
//! stream of concatenated frames, delivered in arbitrary slices (1-byte
//! reads, frames split mid-prefix or mid-body, several frames coalesced
//! into one read), must reassemble into exactly the frame bodies the
//! blocking [`wire::read_frame`] codec yields from the same stream.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use waterwheel_core::ServerId;
use waterwheel_net::envelope::{Envelope, Request, Response};
use waterwheel_net::reactor::FrameAssembler;
use waterwheel_net::wire;

/// Deterministic per-case generator (SplitMix64), same idiom as
/// `codec_hardening.rs`: the shim hands us a seed, plain code varies the
/// frames and split points.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// One encoded frame: a request or a response, with a payload whose
    /// size varies from empty-ish (Ping) to a few hundred bytes.
    fn frame(&mut self) -> Vec<u8> {
        let corr = self.next();
        match self.below(3) {
            0 => {
                let env = Envelope {
                    src: ServerId(self.next() as u32),
                    dst: ServerId(self.next() as u32),
                    rpc_id: self.next(),
                    deadline: Instant::now() + Duration::from_secs(1),
                    payload: Request::Ping,
                };
                wire::encode_request(corr, &env)
            }
            1 => wire::encode_response_ok(corr, &Response::Pong),
            _ => {
                let tuples = (0..self.below(16))
                    .map(|_| {
                        let len = self.below(48) as usize;
                        let payload: Vec<u8> = (0..len).map(|_| self.next() as u8).collect();
                        waterwheel_core::Tuple::new(self.next(), self.next(), payload)
                    })
                    .collect();
                wire::encode_response_ok(corr, &Response::Tuples(tuples))
            }
        }
    }
}

/// The oracle: run the blocking codec over the whole stream at once.
fn blocking_frames(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut cursor = stream;
    let mut out = Vec::new();
    while let Some(body) = wire::read_frame(&mut cursor).unwrap() {
        out.push(body);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_split_points_reassemble_exactly(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let frame_count = 1 + gen.below(8) as usize;
        let mut stream = Vec::new();
        for _ in 0..frame_count {
            stream.extend_from_slice(&gen.frame());
        }
        let expected = blocking_frames(&stream);
        prop_assert_eq!(expected.len(), frame_count);

        // Feed the same stream through the assembler in random slices:
        // chunk sizes from 1 byte (splitting the length prefix) to large
        // enough to coalesce several frames into one push.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let chunk = 1 + gen.below(stream.len() as u64 + 64) as usize;
            let end = (pos + chunk).min(stream.len());
            asm.push(&stream[pos..end]);
            pos = end;
            while let Some(body) = asm.next_frame().unwrap() {
                got.push(body);
            }
        }
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn one_byte_at_a_time_reassembles_exactly(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let mut stream = Vec::new();
        for _ in 0..3 {
            stream.extend_from_slice(&gen.frame());
        }
        let expected = blocking_frames(&stream);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &stream {
            asm.push(std::slice::from_ref(b));
            while let Some(body) = asm.next_frame().unwrap() {
                got.push(body);
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn truncated_streams_never_yield_a_partial_frame(seed in 0u64..u64::MAX) {
        let mut gen = Gen(seed);
        let frame = gen.frame();
        // Drop 1..=frame.len() trailing bytes: the assembler must hold the
        // incomplete frame back rather than emit a short body.
        let cut = 1 + gen.below(frame.len() as u64) as usize;
        let mut asm = FrameAssembler::new();
        asm.push(&frame[..frame.len() - cut]);
        prop_assert!(asm.next_frame().unwrap().is_none());
        // Completing the stream releases exactly the original body.
        asm.push(&frame[frame.len() - cut..]);
        let body = asm.next_frame().unwrap().expect("completed frame");
        prop_assert_eq!(&frame[4..], &body[..]);
    }
}
