//! Poll-based event loop driving every nonblocking TCP socket in a
//! process.
//!
//! The blocking transport spent one OS thread per pooled client
//! connection (a parked reader) and one per accepted server socket. This
//! module replaces all of them with a small fixed pool of reactor
//! threads (usually one) multiplexing readiness over epoll on Linux —
//! hand-rolled `extern "C"` bindings, same style as the `SO_REUSEADDR`
//! shim in `tcp.rs` — and a portable busy-poll fallback elsewhere.
//!
//! ## Readiness state machine
//!
//! Each registered connection moves through three states:
//!
//! ```text
//! IN           reading only: the outbound buffer is empty, every frame
//!              is written inline by the sender's own thread.
//! IN|OUT       a sender hit a partial write / `WouldBlock`; leftover
//!              bytes sit in the outbound buffer and the reactor owns
//!              the flush. Armed via an `Arm` op on the owning shard,
//!              never by senders calling `epoll_ctl` directly.
//! closed       EOF, I/O error, or a sink verdict: the reactor removes
//!              the socket from the poll set, shuts it down, and fires
//!              [`Sink::on_closed`] exactly once.
//! ```
//!
//! Inbound bytes feed a [`FrameAssembler`] (incremental version of
//! `wire::read_frame`) and complete frame bodies are handed to the
//! connection's [`Sink`]. All `epoll_ctl` mutation happens on the owning
//! shard thread via an op queue, so fd lifecycle races (close vs. arm)
//! cannot happen by construction.

use crate::tcp::WireStats;
use crate::wire::MAX_FRAME_LEN;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a shard wakes with no events to run housekeeping ticks
/// (idle-connection reaping and friends).
const TICK: Duration = Duration::from_millis(250);

/// Scratch read size per readiness event; frames larger than this simply
/// take several reads through the assembler.
const READ_CHUNK: usize = 64 * 1024;

// ---------------------------------------------------------------------------
// Incremental frame assembly
// ---------------------------------------------------------------------------

/// Incremental reassembler for the `wire.rs` frame format.
///
/// [`wire::read_frame`](crate::wire::read_frame) blocks until a whole
/// frame arrives; a reactor cannot. This type accepts bytes in whatever
/// chunks the socket produces — one byte at a time, half a frame, three
/// frames coalesced — and yields complete frame bodies in order. The
/// announced length is validated against [`MAX_FRAME_LEN`] as soon as the
/// four prefix bytes are present, before any body buffer grows.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read off a socket.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact consumed prefix before growing, so the buffer tracks the
        // unconsumed tail rather than the whole connection history.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, if one is fully buffered.
    ///
    /// Mirrors `wire::read_frame`: `Ok(None)` means "need more bytes",
    /// and an announced length past [`MAX_FRAME_LEN`] is rejected before
    /// allocation with the same `Corrupt` wording.
    pub fn next_frame(&mut self) -> waterwheel_core::Result<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(waterwheel_core::WwError::corrupt(
                "frame",
                format!("announced length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
            ));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let body = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        Ok(Some(body))
    }

    /// Bytes currently buffered but not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Sink: what the reactor delivers into
// ---------------------------------------------------------------------------

/// Receiver side of a registered connection.
///
/// The reactor calls [`Sink::on_frame`] for every complete frame body
/// (on a reactor thread — implementations must not block) and
/// [`Sink::on_closed`] exactly once when the connection leaves the poll
/// set for any reason.
pub trait Sink: Send + Sync {
    /// One complete frame body arrived. Returning `Err(reason)` makes
    /// the reactor close the connection with that reason.
    fn on_frame(&self, body: Vec<u8>) -> std::result::Result<(), &'static str>;

    /// The connection is gone: EOF, I/O error, sink verdict, or reactor
    /// shutdown. Fired exactly once, after the socket left the poll set.
    fn on_closed(&self, reason: &'static str);
}

// ---------------------------------------------------------------------------
// Connection handles
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct OutBuf {
    /// Bytes accepted by `send` but not yet written to the socket.
    queued: Vec<u8>,
    /// Whether EPOLLOUT is (or is about to be) armed for this socket.
    armed: bool,
}

#[derive(Debug)]
struct ConnInner {
    token: u64,
    shard: usize,
    stream: TcpStream,
    out: Mutex<OutBuf>,
    closed: AtomicBool,
    /// Set by the shard once the socket joined the poll set; senders
    /// queueing bytes before that must not request an arm (the shard
    /// arms at registration time based on the buffer).
    registered: AtomicBool,
}

/// Cloneable write/close handle for a connection registered with a
/// [`Reactor`].
///
/// `send` is safe from any thread: it writes inline while the socket
/// keeps up and spills into a reactor-flushed buffer on `WouldBlock`.
#[derive(Clone)]
pub struct ConnHandle {
    inner: Arc<ConnInner>,
    reactor: Weak<Reactor>,
}

impl std::fmt::Debug for ConnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnHandle")
            .field("token", &self.inner.token)
            .field("closed", &self.inner.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl ConnHandle {
    /// Queues one encoded frame for transmission. Bytes are written
    /// inline when the socket accepts them; leftovers are flushed by the
    /// reactor on writability. Fails once the connection is closed.
    pub fn send(&self, frame: &[u8]) -> io::Result<()> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection closed",
            ));
        }
        let mut out = self.inner.out.lock().unwrap_or_else(|e| e.into_inner());
        if out.queued.is_empty() {
            // Fast path: the socket has kept up so far; write inline from
            // the sender's thread and only involve the reactor on a
            // partial write.
            let mut off = 0;
            loop {
                if off == frame.len() {
                    return Ok(());
                }
                match (&self.inner.stream).write(&frame[off..]) {
                    Ok(0) => {
                        drop(out);
                        self.fail_socket();
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "socket refused bytes",
                        ));
                    }
                    Ok(n) => off += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        out.queued.extend_from_slice(&frame[off..]);
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        drop(out);
                        self.fail_socket();
                        return Err(e);
                    }
                }
            }
        } else {
            out.queued.extend_from_slice(frame);
        }
        // Leftover bytes: hand the flush to the reactor. Arming goes
        // through the shard's op queue so all epoll_ctl calls stay on the
        // shard thread; `armed` (under the out lock) dedupes requests.
        if !out.armed && self.inner.registered.load(Ordering::Acquire) {
            out.armed = true;
            drop(out);
            if let Some(r) = self.reactor.upgrade() {
                r.enqueue(self.inner.shard, Op::Arm(self.inner.token));
            }
        }
        Ok(())
    }

    /// Initiates teardown: shuts the socket down both ways so the owning
    /// shard observes EOF and runs the close path (firing
    /// [`Sink::on_closed`]). Safe to call from any thread, idempotent.
    pub fn close(&self) {
        self.fail_socket();
    }

    /// Whether the reactor has torn this connection down (or teardown
    /// has been requested).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Local address of the underlying socket.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.inner.stream.local_addr()
    }

    fn fail_socket(&self) {
        self.inner.closed.store(true, Ordering::Release);
        let _ = self.inner.stream.shutdown(Shutdown::Both);
        if let Some(r) = self.reactor.upgrade() {
            r.shards[self.inner.shard]
                .sweep
                .store(true, Ordering::Release);
            r.shards[self.inner.shard].poller.wake();
        }
    }
}

/// Handle for a listener registered with [`Reactor::listen`]. Closing it
/// removes the listener from the poll set and closes the socket, so new
/// connection attempts are refused.
#[derive(Debug)]
pub struct ListenerHandle {
    token: u64,
    shard: usize,
    reactor: Weak<Reactor>,
}

impl ListenerHandle {
    /// Synchronously deregisters and closes the listening socket. After
    /// this returns, connection attempts to the address are refused.
    pub fn close(&self) {
        if let Some(r) = self.reactor.upgrade() {
            let ack = Arc::new(OpAck::default());
            r.enqueue(self.shard, Op::Del(self.token, Some(ack.clone())));
            ack.wait();
        }
    }
}

#[derive(Debug, Default)]
struct OpAck {
    done: Mutex<bool>,
    cv: Condvar,
}

impl OpAck {
    fn fire(&self) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self
                .cv
                .wait_timeout(done, Duration::from_millis(500))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

// ---------------------------------------------------------------------------
// Shard plumbing
// ---------------------------------------------------------------------------

type AcceptFn = Box<dyn Fn(TcpStream) + Send + Sync>;

enum Op {
    /// Register a connection: add to the poll set and start delivering.
    AddConn(Arc<ConnInner>, Arc<dyn Sink>),
    /// Register a listener: accept-ready callbacks.
    AddListener(u64, TcpListener, AcceptFn),
    /// Arm EPOLLOUT for a connection with queued outbound bytes.
    Arm(u64),
    /// Deregister and drop an entry, acking when done (listener
    /// shutdown path).
    Del(u64, Option<Arc<OpAck>>),
}

enum Entry {
    Conn {
        conn: Arc<ConnInner>,
        sink: Arc<dyn Sink>,
        assembler: FrameAssembler,
    },
    Listener {
        listener: TcpListener,
        on_accept: AcceptFn,
    },
}

struct ShardState {
    ops: Mutex<Vec<Op>>,
    poller: Poller,
    /// Set when a connection was closed externally (handle close,
    /// transport drop); tells the shard to sweep for dead entries.
    sweep: AtomicBool,
}

/// The reactor: `N` shard threads, each owning an epoll instance (or the
/// portable fallback poller) and a token-keyed table of connections and
/// listeners. Sockets are assigned to shards round-robin at
/// registration.
pub struct Reactor {
    shards: Vec<Arc<ShardState>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_token: AtomicU64,
    next_shard: AtomicUsize,
    stopping: AtomicBool,
    ticks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    wire: Arc<WireStats>,
    /// Set once `Self` is wrapped in its `Arc`, so handles can hold a
    /// `Weak` back-reference without a retain cycle.
    self_ref: Mutex<Weak<Reactor>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Reactor {
    /// Spawns a reactor with `threads` shard threads (clamped to at
    /// least one). Readiness wakeups are charged to
    /// `wire.reactor_wakeups`.
    pub fn new(threads: usize, wire: Arc<WireStats>) -> io::Result<Arc<Self>> {
        let threads = threads.max(1);
        let mut shards = Vec::with_capacity(threads);
        for _ in 0..threads {
            shards.push(Arc::new(ShardState {
                ops: Mutex::new(Vec::new()),
                poller: Poller::new()?,
                sweep: AtomicBool::new(false),
            }));
        }
        let reactor = Arc::new(Reactor {
            shards,
            threads: Mutex::new(Vec::new()),
            next_token: AtomicU64::new(1),
            next_shard: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            ticks: Mutex::new(Vec::new()),
            wire,
            self_ref: Mutex::new(Weak::new()),
        });
        *reactor.self_ref.lock().unwrap_or_else(|e| e.into_inner()) = Arc::downgrade(&reactor);
        let mut handles = Vec::with_capacity(threads);
        for (idx, shard) in reactor.shards.iter().enumerate() {
            let shard = shard.clone();
            let r = Arc::downgrade(&reactor);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ww-reactor-{idx}"))
                    .spawn(move || shard_loop(idx, shard, r))
                    .expect("spawn reactor thread"),
            );
        }
        *reactor.threads.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        Ok(reactor)
    }

    fn weak(&self) -> Weak<Reactor> {
        self.self_ref
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Prepares a socket for registration: switches it to nonblocking
    /// mode and builds the write/close handle. The connection is not in
    /// the poll set until [`Reactor::activate`] attaches its sink —
    /// two-phase so the sink can capture the handle.
    pub fn attach(&self, stream: TcpStream) -> io::Result<ConnHandle> {
        stream.set_nonblocking(true)?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let inner = Arc::new(ConnInner {
            token,
            shard,
            stream,
            out: Mutex::new(OutBuf::default()),
            closed: AtomicBool::new(false),
            registered: AtomicBool::new(false),
        });
        Ok(ConnHandle {
            inner,
            reactor: self.weak(),
        })
    }

    /// Completes registration of an attached connection: the socket
    /// joins its shard's poll set and `sink` starts receiving frames.
    pub fn activate(&self, handle: &ConnHandle, sink: Arc<dyn Sink>) {
        self.enqueue(handle.inner.shard, Op::AddConn(handle.inner.clone(), sink));
    }

    /// Registers a listening socket; `on_accept` runs on the shard
    /// thread for every accepted connection (it should do no more than
    /// configure and re-register the socket).
    pub fn listen(
        &self,
        listener: TcpListener,
        on_accept: impl Fn(TcpStream) + Send + Sync + 'static,
    ) -> io::Result<ListenerHandle> {
        listener.set_nonblocking(true)?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let shard = 0;
        self.enqueue(shard, Op::AddListener(token, listener, Box::new(on_accept)));
        Ok(ListenerHandle {
            token,
            shard,
            reactor: self.weak(),
        })
    }

    /// Registers a housekeeping closure run roughly every 250ms on one
    /// shard thread (used by the connection pool's idle reaper). Hold
    /// only `Weak` references inside the closure.
    pub fn add_tick(&self, tick: impl Fn() + Send + Sync + 'static) {
        self.ticks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(tick));
    }

    fn enqueue(&self, shard: usize, op: Op) {
        self.shards[shard]
            .ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(op);
        self.shards[shard].poller.wake();
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.poller.wake();
        }
        let handles = std::mem::take(&mut *self.threads.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Shard event loop
// ---------------------------------------------------------------------------

fn shard_loop(idx: usize, shard: Arc<ShardState>, reactor: Weak<Reactor>) {
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut events: Vec<(u64, Readiness)> = Vec::new();
    let mut last_tick = Instant::now();
    loop {
        // Apply queued registration / arm / deregistration ops first, so
        // a wakeup is never consumed without its op.
        let ops = std::mem::take(&mut *shard.ops.lock().unwrap_or_else(|e| e.into_inner()));
        for op in ops {
            apply_op(&shard, &mut entries, op);
        }

        let stopping = match reactor.upgrade() {
            Some(r) => r.stopping.load(Ordering::Acquire),
            None => true,
        };
        if stopping {
            break;
        }

        events.clear();
        if shard.poller.wait(&mut events, TICK).is_err() {
            break;
        }
        if !events.is_empty() {
            if let Some(r) = reactor.upgrade() {
                r.wire.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
            }
        }

        for (token, ready) in events.drain(..) {
            let closed = match entries.get_mut(&token) {
                Some(Entry::Listener {
                    listener,
                    on_accept,
                }) => {
                    if ready.readable {
                        accept_ready(listener, on_accept);
                    }
                    None
                }
                Some(Entry::Conn {
                    conn,
                    sink,
                    assembler,
                }) => handle_conn_ready(&shard.poller, conn, sink, assembler, ready, &mut scratch),
                None => None,
            };
            if let Some(reason) = closed {
                close_entry(&shard, &mut entries, token, reason);
            }
        }

        // Connections shut down externally (ConnHandle::close, transport
        // drop) also surface as readiness events, but the sweep flag makes
        // teardown deterministic on both poller backends.
        if shard.sweep.swap(false, Ordering::AcqRel) {
            let dead: Vec<u64> = entries
                .iter()
                .filter_map(|(t, e)| match e {
                    Entry::Conn { conn, .. } if conn.closed.load(Ordering::Acquire) => Some(*t),
                    _ => None,
                })
                .collect();
            for token in dead {
                close_entry(&shard, &mut entries, token, "connection lost");
            }
        }

        if idx == 0 && last_tick.elapsed() >= TICK {
            last_tick = Instant::now();
            if let Some(r) = reactor.upgrade() {
                let ticks = r.ticks.lock().unwrap_or_else(|e| e.into_inner());
                for t in ticks.iter() {
                    t();
                }
            }
        }
    }
    // Reactor is shutting down: fail every connection so blocked senders
    // wake with a connection-lost verdict instead of hanging.
    let tokens: Vec<u64> = entries.keys().copied().collect();
    for token in tokens {
        close_entry(&shard, &mut entries, token, "connection lost");
    }
}

fn apply_op(shard: &ShardState, entries: &mut HashMap<u64, Entry>, op: Op) {
    match op {
        Op::AddConn(conn, sink) => {
            if conn.closed.load(Ordering::Acquire) {
                sink.on_closed("connection lost");
                return;
            }
            if shard
                .poller
                .register_stream(&conn.stream, conn.token)
                .is_err()
            {
                conn.closed.store(true, Ordering::Release);
                sink.on_closed("connection lost");
                return;
            }
            conn.registered.store(true, Ordering::Release);
            // A sender may have queued bytes between attach and now; the
            // registration just made was read-only, so arm the write side
            // if anything is waiting.
            {
                let mut out = conn.out.lock().unwrap_or_else(|e| e.into_inner());
                if !out.queued.is_empty() {
                    out.armed = true;
                    let _ = shard.poller.modify_stream(&conn.stream, conn.token, true);
                }
            }
            entries.insert(
                conn.token,
                Entry::Conn {
                    conn,
                    sink,
                    assembler: FrameAssembler::new(),
                },
            );
        }
        Op::AddListener(token, listener, on_accept) => {
            if shard.poller.register_listener(&listener, token).is_err() {
                return;
            }
            entries.insert(
                token,
                Entry::Listener {
                    listener,
                    on_accept,
                },
            );
        }
        Op::Arm(token) => {
            if let Some(Entry::Conn { conn, .. }) = entries.get(&token) {
                let _ = shard.poller.modify_stream(&conn.stream, token, true);
            }
        }
        Op::Del(token, ack) => {
            close_entry_inner(shard, entries, token, "connection lost");
            if let Some(ack) = ack {
                ack.fire();
            }
        }
    }
}

fn accept_ready(listener: &TcpListener, on_accept: &AcceptFn) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => on_accept(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient per-connection accept errors (ECONNABORTED and
            // friends): skip the socket, keep the listener.
            Err(_) => break,
        }
    }
}

/// Handles one readiness event for a connection. Returns `Some(reason)`
/// when the connection must be torn down.
fn handle_conn_ready(
    poller: &Poller,
    conn: &Arc<ConnInner>,
    sink: &Arc<dyn Sink>,
    assembler: &mut FrameAssembler,
    ready: Readiness,
    scratch: &mut [u8],
) -> Option<&'static str> {
    if ready.error {
        return Some("connection lost");
    }
    if ready.writable {
        if let Some(reason) = flush_outbound(poller, conn) {
            return Some(reason);
        }
    }
    if ready.readable {
        loop {
            match (&conn.stream).read(scratch) {
                Ok(0) => return Some("connection closed by peer"),
                Ok(n) => {
                    assembler.push(&scratch[..n]);
                    loop {
                        match assembler.next_frame() {
                            Ok(Some(body)) => {
                                if let Err(reason) = sink.on_frame(body) {
                                    return Some(reason);
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return Some("frame exceeded the length cap"),
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Some("connection lost"),
            }
        }
    }
    None
}

/// Writes queued outbound bytes until the socket blocks or the buffer
/// drains; disarms EPOLLOUT when fully flushed. Runs on the owning shard
/// thread only.
fn flush_outbound(poller: &Poller, conn: &Arc<ConnInner>) -> Option<&'static str> {
    let mut out = conn.out.lock().unwrap_or_else(|e| e.into_inner());
    let mut off = 0;
    let verdict = loop {
        if off == out.queued.len() {
            break None;
        }
        match (&conn.stream).write(&out.queued[off..]) {
            Ok(0) => break Some("connection lost"),
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break None,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break Some("connection lost"),
        }
    };
    out.queued.drain(..off);
    if verdict.is_none() && out.queued.is_empty() && out.armed {
        // Disarm under the out lock so a concurrent sender's
        // queue-then-arm cannot interleave with the transition.
        out.armed = false;
        if poller
            .modify_stream(&conn.stream, conn.token, false)
            .is_err()
        {
            return Some("connection lost");
        }
    }
    verdict
}

/// Removes one entry from the shard: poll-set removal, socket shutdown,
/// then the sink's single `on_closed`.
fn close_entry(
    shard: &ShardState,
    entries: &mut HashMap<u64, Entry>,
    token: u64,
    reason: &'static str,
) {
    close_entry_inner(shard, entries, token, reason);
}

fn close_entry_inner(
    shard: &ShardState,
    entries: &mut HashMap<u64, Entry>,
    token: u64,
    reason: &'static str,
) {
    if let Some(entry) = entries.remove(&token) {
        match entry {
            Entry::Conn { conn, sink, .. } => {
                shard.poller.deregister_stream(&conn.stream, token);
                conn.closed.store(true, Ordering::Release);
                let _ = conn.stream.shutdown(Shutdown::Both);
                sink.on_closed(reason);
            }
            Entry::Listener { listener, .. } => {
                shard.poller.deregister_listener(&listener, token);
                // Dropping the listener closes the fd: new connection
                // attempts are refused from here on.
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Poller: epoll on Linux, portable busy-poll elsewhere
// ---------------------------------------------------------------------------

/// One readiness report for a registered token.
#[derive(Debug, Clone, Copy, Default)]
struct Readiness {
    readable: bool,
    writable: bool,
    error: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal epoll + pipe bindings, hand-rolled in the same style as
    //! the `SO_REUSEADDR` shim in `tcp.rs` (no libc crate).
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const O_NONBLOCK: i32 = 0x800;
    const O_CLOEXEC: i32 = 0x80000;
    const EPOLL_CLOEXEC: i32 = O_CLOEXEC;

    /// Kernel ABI for `struct epoll_event`: packed on x86, naturally
    /// aligned elsewhere.
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    pub fn create() -> io::Result<i32> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(epfd)
    }

    pub fn make_pipe() -> io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn drain_pipe(fd: i32) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }

    pub fn poke_pipe(fd: i32) {
        let byte = 1u8;
        unsafe {
            let _ = write(fd, &byte, 1);
        }
    }

    pub fn close_fd(fd: i32) {
        unsafe {
            let _ = close(fd);
        }
    }
}

#[cfg(target_os = "linux")]
const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
struct Poller {
    epfd: i32,
    wake_r: i32,
    wake_w: i32,
}

#[cfg(target_os = "linux")]
impl Poller {
    fn new() -> io::Result<Self> {
        let epfd = sys::create()?;
        let (wake_r, wake_w) = match sys::make_pipe() {
            Ok(p) => p,
            Err(e) => {
                sys::close_fd(epfd);
                return Err(e);
            }
        };
        sys::ctl(epfd, sys::EPOLL_CTL_ADD, wake_r, sys::EPOLLIN, WAKE_TOKEN)?;
        Ok(Poller {
            epfd,
            wake_r,
            wake_w,
        })
    }

    fn register_stream(&self, stream: &TcpStream, token: u64) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            stream.as_raw_fd(),
            sys::EPOLLIN,
            token,
        )
    }

    fn register_listener(&self, listener: &TcpListener, token: u64) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            sys::EPOLLIN,
            token,
        )
    }

    fn modify_stream(&self, stream: &TcpStream, token: u64, want_write: bool) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let events = if want_write {
            sys::EPOLLIN | sys::EPOLLOUT
        } else {
            sys::EPOLLIN
        };
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            stream.as_raw_fd(),
            events,
            token,
        )
    }

    fn deregister_stream(&self, stream: &TcpStream, _token: u64) {
        use std::os::fd::AsRawFd;
        let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, stream.as_raw_fd(), 0, 0);
    }

    fn deregister_listener(&self, listener: &TcpListener, _token: u64) {
        use std::os::fd::AsRawFd;
        let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, listener.as_raw_fd(), 0, 0);
    }

    fn wake(&self) {
        sys::poke_pipe(self.wake_w);
    }

    fn wait(&self, out: &mut Vec<(u64, Readiness)>, timeout: Duration) -> io::Result<()> {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        let n = sys::wait(self.epfd, &mut events, timeout.as_millis() as i32)?;
        for ev in &events[..n] {
            let data = ev.data;
            let bits = ev.events;
            if data == WAKE_TOKEN {
                sys::drain_pipe(self.wake_r);
                continue;
            }
            out.push((
                data,
                Readiness {
                    readable: bits & (sys::EPOLLIN | sys::EPOLLHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    error: bits & sys::EPOLLERR != 0,
                },
            ));
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.wake_r);
        sys::close_fd(self.wake_w);
        sys::close_fd(self.epfd);
    }
}

#[cfg(not(target_os = "linux"))]
struct Poller {
    /// Tokens currently registered; the fallback reports every one of
    /// them as read- and write-ready each pass (level-triggered busy
    /// poll — nonblocking sockets make that correct, if inefficient).
    tokens: Mutex<std::collections::HashSet<u64>>,
    poked: Mutex<bool>,
    cv: Condvar,
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    fn new() -> io::Result<Self> {
        Ok(Poller {
            tokens: Mutex::new(std::collections::HashSet::new()),
            poked: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn register_stream(&self, _stream: &TcpStream, token: u64) -> io::Result<()> {
        self.tokens
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(token);
        Ok(())
    }

    fn register_listener(&self, _listener: &TcpListener, token: u64) -> io::Result<()> {
        self.tokens
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(token);
        Ok(())
    }

    fn modify_stream(&self, _stream: &TcpStream, _token: u64, _want_write: bool) -> io::Result<()> {
        Ok(())
    }

    fn deregister_stream(&self, _stream: &TcpStream, token: u64) {
        self.tokens
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&token);
    }

    fn deregister_listener(&self, _listener: &TcpListener, token: u64) {
        self.tokens
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&token);
    }

    fn wake(&self) {
        let mut poked = self.poked.lock().unwrap_or_else(|e| e.into_inner());
        *poked = true;
        self.cv.notify_all();
    }

    fn wait(&self, out: &mut Vec<(u64, Readiness)>, timeout: Duration) -> io::Result<()> {
        let nap = timeout.min(Duration::from_millis(5));
        {
            let poked = self.poked.lock().unwrap_or_else(|e| e.into_inner());
            if !*poked {
                let _ = self
                    .cv
                    .wait_timeout(poked, nap)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        *self.poked.lock().unwrap_or_else(|e| e.into_inner()) = false;
        for token in self.tokens.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.push((
                *token,
                Readiness {
                    readable: true,
                    writable: true,
                    error: false,
                },
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn assembler_handles_split_and_coalesced_frames() {
        let f1 = wire::encode_response_ok(7, &crate::envelope::Response::Pong);
        let f2 = wire::encode_response_ok(9, &crate::envelope::Response::Ack);
        let mut joined = f1.clone();
        joined.extend_from_slice(&f2);

        // Byte-at-a-time.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &joined {
            asm.push(std::slice::from_ref(b));
            while let Some(body) = asm.next_frame().unwrap() {
                got.push(body);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], f1[4..].to_vec());
        assert_eq!(got[1], f2[4..].to_vec());
        assert_eq!(asm.buffered(), 0);

        // Whole burst at once.
        let mut asm = FrameAssembler::new();
        asm.push(&joined);
        assert_eq!(asm.next_frame().unwrap().unwrap(), f1[4..].to_vec());
        assert_eq!(asm.next_frame().unwrap().unwrap(), f2[4..].to_vec());
        assert!(asm.next_frame().unwrap().is_none());
    }

    #[test]
    fn assembler_rejects_oversized_announcements_before_buffering() {
        let mut asm = FrameAssembler::new();
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        asm.push(&huge);
        let err = asm.next_frame().unwrap_err();
        assert!(err.to_string().contains("cap"), "got: {err}");
    }

    struct CountingSink {
        frames: AtomicUsize,
        closed: AtomicUsize,
    }

    impl Sink for CountingSink {
        fn on_frame(&self, _body: Vec<u8>) -> std::result::Result<(), &'static str> {
            self.frames.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn on_closed(&self, _reason: &'static str) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn reactor_moves_frames_between_two_registered_sockets() {
        let wire_stats = Arc::new(WireStats::default());
        let reactor = Reactor::new(1, wire_stats.clone()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accepted2 = accepted.clone();
        let _lh = reactor
            .listen(listener, move |s| {
                accepted2.lock().unwrap().push(s);
            })
            .unwrap();

        let client = TcpStream::connect(addr).unwrap();
        let sink = Arc::new(CountingSink {
            frames: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
        });
        let handle = reactor.attach(client).unwrap();
        reactor.activate(&handle, sink.clone());

        // Wait for the accept to land, then write a frame from the
        // server side with plain blocking I/O.
        let deadline = Instant::now() + Duration::from_secs(5);
        let server_side = loop {
            if let Some(s) = accepted.lock().unwrap().pop() {
                break s;
            }
            assert!(Instant::now() < deadline, "accept never fired");
            std::thread::sleep(Duration::from_millis(5));
        };
        let frame = wire::encode_response_ok(1, &crate::envelope::Response::Pong);
        (&server_side).write_all(&frame).unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.frames.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "frame never delivered");
            std::thread::sleep(Duration::from_millis(5));
        }

        // Outbound path: send through the handle, read on the blocking side.
        handle.send(&frame).unwrap();
        let mut echoed = vec![0u8; frame.len()];
        (&server_side).read_exact(&mut echoed).unwrap();
        assert_eq!(echoed, frame);

        // Peer hangup tears the connection down exactly once.
        drop(server_side);
        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.closed.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "close never delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sink.closed.load(Ordering::SeqCst), 1);
        assert!(handle.is_closed());
        assert!(wire_stats.reactor_wakeups.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn closing_the_listener_refuses_new_connections() {
        let reactor = Reactor::new(1, Arc::new(WireStats::default())).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let lh = reactor.listen(listener, |_s| {}).unwrap();
        // Prove the listener accepts, then close it and expect refusal.
        TcpStream::connect(addr).unwrap();
        lh.close();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
            "listener should refuse after close"
        );
    }
}
