//! Typed request/response envelopes — the message taxonomy of the plane.
//!
//! Every cross-server interaction in the topology is one of the payloads
//! below; a [`Request`] travels inside an [`Envelope`] carrying addressing
//! and a deadline. The taxonomy mirrors the Storm streams of the paper's
//! Figure 3:
//!
//! | Hop | Payloads |
//! |---|---|
//! | dispatcher → indexing server | [`Request::Ingest`], [`Request::IngestBatch`], [`Request::Flush`] |
//! | coordinator → indexing server | [`Request::InMemorySubquery`], [`Request::AggregateInMemory`] |
//! | coordinator → query server | [`Request::ChunkSubquery`], [`Request::ReadSummary`] |
//! | any server → metadata server | [`Request::Meta`] |
//! | health probe (any → any) | [`Request::Ping`] |
//!
//! Requests are `Clone` so a retrying client can resend them verbatim.

use std::sync::Arc;
use std::time::Instant;
use waterwheel_agg::{FoldOutcome, WheelSummary};
use waterwheel_core::{ChunkId, Region, Result, ServerId, SubQuery, TimeInterval, Tuple, WwError};
use waterwheel_index::secondary::{AttrId, AttrProbe, ChunkAttrIndex};
use waterwheel_index::Bitmap;
use waterwheel_meta::{ChunkInfo, SummaryExtent};

/// The well-known address of the metadata server (the ZooKeeper-backed
/// component of §II-B) on the message plane.
pub const META_SERVER: ServerId = ServerId(3_000);

/// The well-known address of the query coordinator.
pub const COORDINATOR: ServerId = ServerId(4_000);

/// One message on the wire: addressing, identity, deadline, payload.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender.
    pub src: ServerId,
    /// Destination.
    pub dst: ServerId,
    /// Unique per client; ties retries of one logical call together in
    /// traces and lets a future `TcpTransport` match responses to requests.
    pub rpc_id: u64,
    /// Absolute deadline: the transport fails the attempt with
    /// [`WwError::Timeout`] instead of delivering it late.
    pub deadline: Instant,
    /// The typed request.
    pub payload: Request,
}

/// A request payload — every cross-server call in the system.
#[derive(Clone, Debug)]
pub enum Request {
    /// Route one tuple into the destination indexing server's partition of
    /// the ingestion queue (dispatcher → indexing, §III-A).
    Ingest {
        /// The tuple to ingest.
        tuple: Tuple,
    },
    /// Route a batch of tuples into the destination indexing server's
    /// partition of the ingestion queue in one envelope (dispatcher →
    /// indexing, §VI Fig. 15). `seq` is the sender's per-destination
    /// monotonic batch number: because a retried batch keeps its original
    /// `seq`, the handler can recognise a redelivery whose first attempt
    /// already landed (the ack, not the request, was lost) and acknowledge
    /// it without appending twice.
    IngestBatch {
        /// Per-(dispatcher, destination) monotonic batch sequence number.
        seq: u64,
        /// The tuples, in dispatch order.
        tuples: Vec<Tuple>,
    },
    /// Force the destination indexing server to seal its in-memory state
    /// into chunks (control plane, §V durability boundary).
    Flush,
    /// Execute a subquery against the destination indexing server's
    /// in-memory tree + side store (coordinator → indexing, §IV-A).
    InMemorySubquery {
        /// The fresh-data subquery.
        sq: SubQuery,
    },
    /// Fold the destination indexing server's live aggregate wheel over a
    /// slice × time rectangle (coordinator → indexing, DESIGN.md §4b).
    AggregateInMemory {
        /// Inclusive key-slice range.
        slices: (u16, u16),
        /// Second-aligned covered time interval.
        covered: TimeInterval,
    },
    /// Execute a subquery against one flushed chunk (coordinator → query
    /// server, §IV-B), optionally restricted to the leaves a secondary
    /// attribute index qualified (§VIII).
    ChunkSubquery {
        /// The chunk subquery.
        sq: SubQuery,
        /// The chunk to read.
        chunk: ChunkId,
        /// Qualifying leaves from a secondary index probe, if any.
        leaf_filter: Option<Bitmap>,
    },
    /// Read a chunk's sealed aggregate summary footer (coordinator → query
    /// server).
    ReadSummary {
        /// The chunk whose footer to read.
        chunk: ChunkId,
    },
    /// Liveness probe; answered with [`Response::Pong`] by healthy servers
    /// and an error by crashed ones.
    Ping,
    /// A metadata-service call (any server → metadata server).
    Meta(MetaRequest),
}

/// Calls against the metadata server (§II-B) made by other servers.
#[derive(Clone, Debug)]
pub enum MetaRequest {
    /// Report an indexing server's current in-memory region (already
    /// widened by Δt), or clear it with `None`.
    UpdateMemoryRegion {
        /// The reporting indexing server.
        server: ServerId,
        /// Its in-memory data region, or `None` when empty/crashed.
        region: Option<Region>,
    },
    /// Durably allocate the next chunk id.
    AllocateChunkId,
    /// Register a freshly written chunk together with the producer's
    /// durable queue offset (one atomic step, §V).
    RegisterChunk {
        /// The chunk id.
        chunk: ChunkId,
        /// Region, count, size, producer.
        info: ChunkInfo,
        /// The producer's queue position before sealing.
        durable_offset: u64,
    },
    /// Register the aggregate-summary extent sealed into a chunk's footer.
    RegisterSummary {
        /// The chunk.
        chunk: ChunkId,
        /// Cells/bytes/levels of its footer summary.
        extent: SummaryExtent,
    },
    /// Register a secondary attribute index for a chunk (§VIII).
    RegisterAttrIndex {
        /// The chunk.
        chunk: ChunkId,
        /// The attribute.
        attr: AttrId,
        /// The bloom + bitmap index.
        index: ChunkAttrIndex,
    },
    /// R-tree lookup: chunks whose regions overlap the query rectangle.
    ChunksOverlapping {
        /// The query rectangle.
        region: Region,
    },
    /// In-memory regions (per indexing server) overlapping the rectangle.
    MemoryRegionsOverlapping {
        /// The query rectangle.
        region: Region,
    },
    /// Probe a chunk's secondary index for an attribute value.
    AttrProbe {
        /// The chunk.
        chunk: ChunkId,
        /// The attribute.
        attr: AttrId,
        /// The probed value.
        value: u64,
    },
    /// The summary extent registered for a chunk, if any.
    SummaryExtent {
        /// The chunk.
        chunk: ChunkId,
    },
}

/// A response payload.
#[derive(Clone, Debug)]
pub enum Response {
    /// The request was applied; nothing to return.
    Ack,
    /// A [`Request::IngestBatch`] landed (or was recognised as an exact
    /// redelivery and skipped).
    AckBatch {
        /// Tuples covered by this ack.
        tuples: u32,
        /// `true` when the handler recognised the batch sequence number as
        /// already applied and dropped the redelivery instead of appending.
        deduped: bool,
    },
    /// Liveness probe answer.
    Pong,
    /// Matching tuples from a subquery.
    Tuples(Vec<Tuple>),
    /// Chunk ids sealed by a [`Request::Flush`].
    Flushed(Vec<ChunkId>),
    /// A live-wheel fold outcome.
    Fold(FoldOutcome),
    /// A chunk's footer summary (`None` when written without one).
    Summary(Option<Arc<WheelSummary>>),
    /// A metadata-service answer.
    Meta(MetaResponse),
}

/// Answers from the metadata server.
#[derive(Clone, Debug)]
pub enum MetaResponse {
    /// The mutation was applied.
    Ack,
    /// A freshly allocated chunk id.
    Allocated(ChunkId),
    /// Overlapping chunks with their regions.
    Chunks(Vec<(ChunkId, Region)>),
    /// Overlapping in-memory regions with their owning servers.
    Regions(Vec<(ServerId, Region)>),
    /// A secondary-index probe verdict.
    Probe(AttrProbe),
    /// A chunk's summary extent, if registered.
    Extent(Option<SummaryExtent>),
}

fn unexpected<T>() -> Result<T> {
    Err(WwError::InvalidState(
        "rpc response variant does not match the request".into(),
    ))
}

impl Response {
    /// Unwraps [`Response::Tuples`].
    pub fn into_tuples(self) -> Result<Vec<Tuple>> {
        match self {
            Response::Tuples(t) => Ok(t),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Flushed`].
    pub fn into_flushed(self) -> Result<Vec<ChunkId>> {
        match self {
            Response::Flushed(c) => Ok(c),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Fold`].
    pub fn into_fold(self) -> Result<FoldOutcome> {
        match self {
            Response::Fold(f) => Ok(f),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Summary`].
    pub fn into_summary(self) -> Result<Option<Arc<WheelSummary>>> {
        match self {
            Response::Summary(s) => Ok(s),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Meta`].
    pub fn into_meta(self) -> Result<MetaResponse> {
        match self {
            Response::Meta(m) => Ok(m),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Ack`].
    pub fn into_ack(self) -> Result<()> {
        match self {
            Response::Ack => Ok(()),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::AckBatch`] into `(tuples, deduped)`.
    pub fn into_ack_batch(self) -> Result<(u32, bool)> {
        match self {
            Response::AckBatch { tuples, deduped } => Ok((tuples, deduped)),
            _ => unexpected(),
        }
    }
}

/// Estimated serialized sizes, charged to the per-link byte counters. A
/// `TcpTransport` would replace these with real frame lengths; the estimate
/// only needs to scale with the data actually moved.
const ENVELOPE_OVERHEAD: usize = 32;

fn subquery_size(sq: &SubQuery) -> usize {
    // id + two intervals + target; the predicate is a shared closure and
    // would be shipped as a compiled filter description of similar size.
    48 + std::mem::size_of_val(&sq.id) + if sq.predicate.is_some() { 16 } else { 0 }
}

impl Request {
    /// Estimated wire size in bytes (envelope overhead included).
    pub fn wire_size(&self) -> usize {
        ENVELOPE_OVERHEAD
            + match self {
                Request::Ingest { tuple } => tuple.encoded_len(),
                Request::IngestBatch { tuples, .. } => {
                    8 + tuples.iter().map(Tuple::encoded_len).sum::<usize>()
                }
                Request::Flush | Request::Ping => 0,
                Request::InMemorySubquery { sq } => subquery_size(sq),
                Request::AggregateInMemory { .. } => 24,
                Request::ChunkSubquery {
                    sq, leaf_filter, ..
                } => subquery_size(sq) + 8 + leaf_filter.as_ref().map_or(0, |_| 64),
                Request::ReadSummary { .. } => 8,
                Request::Meta(m) => m.wire_size(),
            }
    }
}

impl MetaRequest {
    fn wire_size(&self) -> usize {
        match self {
            MetaRequest::UpdateMemoryRegion { .. } => 40,
            MetaRequest::AllocateChunkId => 0,
            MetaRequest::RegisterChunk { .. } => 64,
            MetaRequest::RegisterSummary { .. } => 32,
            MetaRequest::RegisterAttrIndex { .. } => 128,
            MetaRequest::ChunksOverlapping { .. }
            | MetaRequest::MemoryRegionsOverlapping { .. } => 32,
            MetaRequest::AttrProbe { .. } => 24,
            MetaRequest::SummaryExtent { .. } => 8,
        }
    }
}

impl Response {
    /// Estimated wire size in bytes (envelope overhead included).
    pub fn wire_size(&self) -> usize {
        ENVELOPE_OVERHEAD
            + match self {
                Response::Ack | Response::Pong => 0,
                Response::AckBatch { .. } => 8,
                Response::Tuples(ts) => ts.iter().map(Tuple::encoded_len).sum(),
                Response::Flushed(cs) => cs.len() * 8,
                Response::Fold(_) => 64,
                Response::Summary(s) => s.as_ref().map_or(0, |s| s.cell_count() * 16),
                Response::Meta(m) => match m {
                    MetaResponse::Ack => 0,
                    MetaResponse::Allocated(_) => 8,
                    MetaResponse::Chunks(v) => v.len() * 40,
                    MetaResponse::Regions(v) => v.len() * 36,
                    MetaResponse::Probe(_) => 16,
                    MetaResponse::Extent(_) => 24,
                },
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Request::Ingest {
            tuple: Tuple::bare(1, 2),
        };
        let big = Request::Ingest {
            tuple: Tuple::new(1, 2, vec![0u8; 1_000]),
        };
        assert!(big.wire_size() > small.wire_size() + 900);
        assert!(Request::Ping.wire_size() >= ENVELOPE_OVERHEAD);

        // One batch envelope costs far less than its tuples sent one by one
        // — the amortization the batched ingest path banks on.
        let batch = Request::IngestBatch {
            seq: 0,
            tuples: vec![Tuple::bare(1, 2); 64],
        };
        assert!(batch.wire_size() < 64 * small.wire_size());
        assert!(batch.wire_size() > 64 * Tuple::bare(1, 2).encoded_len());

        let none = Response::Tuples(Vec::new());
        let some = Response::Tuples(vec![Tuple::bare(1, 2); 100]);
        assert!(some.wire_size() > none.wire_size());
    }

    #[test]
    fn response_unwrappers_enforce_variants() {
        assert_eq!(Response::Tuples(vec![]).into_tuples().unwrap(), vec![]);
        assert!(Response::Pong.into_tuples().is_err());
        assert!(Response::Ack.into_ack().is_ok());
        assert!(Response::Pong.into_ack().is_err());
        assert_eq!(
            Response::AckBatch {
                tuples: 7,
                deduped: true
            }
            .into_ack_batch()
            .unwrap(),
            (7, true)
        );
        assert!(Response::Ack.into_ack_batch().is_err());
        assert!(Response::Pong.into_fold().is_err());
        assert!(Response::Pong.into_summary().is_err());
        assert!(Response::Pong.into_meta().is_err());
        assert!(Response::Pong.into_flushed().is_err());
    }

    #[test]
    fn well_known_addresses_do_not_collide_with_server_ranges() {
        // Indexing 0.., query 1000.., dispatchers 2000.. — meta and the
        // coordinator live above all of them.
        assert!(META_SERVER.raw() >= 3_000);
        assert!(COORDINATOR.raw() > META_SERVER.raw());
    }
}
