//! Typed request/response envelopes — the message taxonomy of the plane.
//!
//! Every cross-server interaction in the topology is one of the payloads
//! below; a [`Request`] travels inside an [`Envelope`] carrying addressing
//! and a deadline. The taxonomy mirrors the Storm streams of the paper's
//! Figure 3:
//!
//! | Hop | Payloads |
//! |---|---|
//! | dispatcher → indexing server | [`Request::Ingest`], [`Request::IngestBatch`], [`Request::Flush`] |
//! | coordinator → indexing server | [`Request::InMemorySubquery`], [`Request::AggregateInMemory`] |
//! | coordinator → query server | [`Request::ChunkSubquery`], [`Request::ReadSummary`] |
//! | any server → metadata server | [`Request::Meta`] |
//! | health probe (any → any) | [`Request::Ping`] |
//!
//! Requests are `Clone` so a retrying client can resend them verbatim.

use std::sync::Arc;
use std::time::Instant;
use waterwheel_agg::{AggregateAnswer, FoldOutcome, WheelSummary};
use waterwheel_core::aggregate::AggregateKind;
use waterwheel_core::{
    ChunkId, KeyInterval, NodeId, QueryResult, Region, Result, ServerId, SubQuery, TimeInterval,
    Tuple, WwError,
};
use waterwheel_index::secondary::{AttrId, AttrProbe, ChunkAttrIndex};
use waterwheel_index::Bitmap;
use waterwheel_meta::{ChunkInfo, MemberRole, MembershipView, PartitionSchema, SummaryExtent};

/// The well-known address of the metadata server (the ZooKeeper-backed
/// component of §II-B) on the message plane.
pub const META_SERVER: ServerId = ServerId(3_000);

/// The well-known address of the query coordinator.
pub const COORDINATOR: ServerId = ServerId(4_000);

/// One message on the wire: addressing, identity, deadline, payload.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender.
    pub src: ServerId,
    /// Destination.
    pub dst: ServerId,
    /// Unique per client; ties retries of one logical call together in
    /// traces and lets a future `TcpTransport` match responses to requests.
    pub rpc_id: u64,
    /// Absolute deadline: the transport fails the attempt with
    /// [`WwError::Timeout`] instead of delivering it late.
    pub deadline: Instant,
    /// The typed request.
    pub payload: Request,
}

/// A request payload — every cross-server call in the system.
#[derive(Clone, Debug)]
pub enum Request {
    /// Route one tuple into the destination indexing server's partition of
    /// the ingestion queue (dispatcher → indexing, §III-A).
    Ingest {
        /// The tuple to ingest.
        tuple: Tuple,
    },
    /// Route a batch of tuples into the destination indexing server's
    /// partition of the ingestion queue in one envelope (dispatcher →
    /// indexing, §VI Fig. 15). `seq` is the sender's per-destination
    /// monotonic batch number: because a retried batch keeps its original
    /// `seq`, the handler can recognise a redelivery whose first attempt
    /// already landed (the ack, not the request, was lost) and acknowledge
    /// it without appending twice.
    IngestBatch {
        /// Per-(dispatcher, destination) monotonic batch sequence number.
        seq: u64,
        /// The tuples, in dispatch order.
        tuples: Vec<Tuple>,
    },
    /// Force the destination indexing server to seal its in-memory state
    /// into chunks (control plane, §V durability boundary).
    Flush,
    /// Execute a subquery against the destination indexing server's
    /// in-memory tree + side store (coordinator → indexing, §IV-A).
    InMemorySubquery {
        /// The fresh-data subquery.
        sq: SubQuery,
    },
    /// Fold the destination indexing server's live aggregate wheel over a
    /// slice × time rectangle (coordinator → indexing, DESIGN.md §4b).
    AggregateInMemory {
        /// Inclusive key-slice range.
        slices: (u16, u16),
        /// Second-aligned covered time interval.
        covered: TimeInterval,
    },
    /// Execute a subquery against one flushed chunk (coordinator → query
    /// server, §IV-B), optionally restricted to the leaves a secondary
    /// attribute index qualified (§VIII).
    ChunkSubquery {
        /// The chunk subquery.
        sq: SubQuery,
        /// The chunk to read.
        chunk: ChunkId,
        /// Qualifying leaves from a secondary index probe, if any.
        leaf_filter: Option<Bitmap>,
    },
    /// Read a chunk's sealed aggregate summary footer (coordinator → query
    /// server).
    ReadSummary {
        /// The chunk whose footer to read.
        chunk: ChunkId,
    },
    /// Liveness probe; answered with [`Response::Pong`] by healthy servers
    /// and an error by crashed ones.
    Ping,
    /// A metadata-service call (any server → metadata server).
    Meta(MetaRequest),
    /// A full temporal range query from an external client, addressed to
    /// the coordinator of a node process (client → dispatcher node). The
    /// coordinator decomposes it exactly as an embedded `query()` call;
    /// the optional attribute-equality constraint is folded into the
    /// predicate before decomposition.
    ClientQuery {
        /// Key range.
        keys: KeyInterval,
        /// Time range.
        times: TimeInterval,
        /// Optional `attr == value` constraint.
        attr_eq: Option<(AttrId, u64)>,
    },
    /// A full temporal aggregate query from an external client, addressed
    /// to the coordinator of a node process.
    ClientAggregate {
        /// Key range.
        keys: KeyInterval,
        /// Time range.
        times: TimeInterval,
        /// The aggregate to compute.
        kind: AggregateKind,
    },
    /// Ask a node process to exit cleanly (launcher → node). Embedded
    /// transports never send this; the node runtime acknowledges it and
    /// then tears the process down.
    Shutdown,
    /// Teach the destination node process the socket addresses of servers
    /// that joined after it started (launcher/gateway → node). Existing
    /// entries are overwritten; routing to the listed ids works from the
    /// next RPC on.
    RegisterPeers {
        /// `(server id, socket address)` pairs, e.g. `(ServerId(2), "127.0.0.1:4107")`.
        peers: Vec<(ServerId, String)>,
    },
    /// Narrow or widen the destination indexing server's *assigned* key
    /// interval (migration control plane). Out-of-interval tuples already
    /// in memory stay queryable until flush — the §III-D overlap that
    /// keeps answers exact while ownership moves.
    Reassign {
        /// The new assigned interval.
        interval: KeyInterval,
    },
    /// Ask the destination gateway to rebalance key ownership uniformly
    /// across the *current* indexing membership, running the migration
    /// state machine for every range that changes hands (client → gateway
    /// dispatcher node). Answered with [`Response::Migrated`].
    MigrateUniform,
}

impl Request {
    /// Stable label for this request's kind, used to key per-RPC latency
    /// histograms and the admission layer's priority classes.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ingest { .. } => "ingest",
            Request::IngestBatch { .. } => "ingest_batch",
            Request::Flush => "flush",
            Request::InMemorySubquery { .. } => "mem_subquery",
            Request::AggregateInMemory { .. } => "agg_mem",
            Request::ChunkSubquery { .. } => "chunk_subquery",
            Request::ReadSummary { .. } => "read_summary",
            Request::Ping => "ping",
            Request::Meta(_) => "meta",
            Request::ClientQuery { .. } => "client_query",
            Request::ClientAggregate { .. } => "client_aggregate",
            Request::Shutdown => "shutdown",
            Request::RegisterPeers { .. } => "register_peers",
            Request::Reassign { .. } => "reassign",
            Request::MigrateUniform => "migrate_uniform",
        }
    }
}

/// Calls against the metadata server (§II-B) made by other servers.
#[derive(Clone, Debug)]
pub enum MetaRequest {
    /// Report an indexing server's current in-memory region (already
    /// widened by Δt), or clear it with `None`.
    UpdateMemoryRegion {
        /// The reporting indexing server.
        server: ServerId,
        /// Its in-memory data region, or `None` when empty/crashed.
        region: Option<Region>,
    },
    /// Durably allocate the next chunk id.
    AllocateChunkId,
    /// Register a freshly written chunk together with the producer's
    /// durable queue offset (one atomic step, §V).
    RegisterChunk {
        /// The chunk id.
        chunk: ChunkId,
        /// Region, count, size, producer.
        info: ChunkInfo,
        /// The producer's queue position before sealing.
        durable_offset: u64,
    },
    /// Register the aggregate-summary extent sealed into a chunk's footer.
    RegisterSummary {
        /// The chunk.
        chunk: ChunkId,
        /// Cells/bytes/levels of its footer summary.
        extent: SummaryExtent,
    },
    /// Register a secondary attribute index for a chunk (§VIII).
    RegisterAttrIndex {
        /// The chunk.
        chunk: ChunkId,
        /// The attribute.
        attr: AttrId,
        /// The bloom + bitmap index.
        index: ChunkAttrIndex,
    },
    /// R-tree lookup: chunks whose regions overlap the query rectangle.
    ChunksOverlapping {
        /// The query rectangle.
        region: Region,
    },
    /// In-memory regions (per indexing server) overlapping the rectangle.
    MemoryRegionsOverlapping {
        /// The query rectangle.
        region: Region,
    },
    /// Probe a chunk's secondary index for an attribute value.
    AttrProbe {
        /// The chunk.
        chunk: ChunkId,
        /// The attribute.
        attr: AttrId,
        /// The probed value.
        value: u64,
    },
    /// The summary extent registered for a chunk, if any.
    SummaryExtent {
        /// The chunk.
        chunk: ChunkId,
    },
    /// The current partition schema, if one has been published. Node
    /// processes fetch it at startup so every role agrees on routing.
    Partition,
    /// The durable queue read offset of an indexing server — the replay
    /// point a restarted server resumes consuming from (§V).
    DurableOffset {
        /// The recovering indexing server.
        server: ServerId,
    },
    /// Register (or refresh) the sender as a cluster member under a
    /// heartbeat lease (§II-B dynamic membership). Answered with
    /// [`MetaResponse::Epoch`].
    Join {
        /// The joining server.
        server: ServerId,
        /// Its tier.
        role: MemberRole,
        /// The simulated cluster node hosting it.
        node: NodeId,
        /// Lease duration in milliseconds; the member must heartbeat
        /// before it elapses or it is evicted.
        ttl_ms: u64,
    },
    /// Renew the sender's membership lease. Fails with a non-retryable
    /// [`WwError::NotFound`] when the lease already lapsed — the sender
    /// must re-join.
    Heartbeat {
        /// The renewing server.
        server: ServerId,
        /// The fresh lease duration in milliseconds.
        ttl_ms: u64,
    },
    /// Graceful departure: remove the sender from the member set.
    Leave {
        /// The departing server.
        server: ServerId,
    },
    /// The current epoch-numbered membership view. Answered with
    /// [`MetaResponse::Membership`].
    Membership,
    /// Publish a new partition schema (the migration control plane's
    /// durable cut-over record). The metadata server rejects version
    /// regressions, so a stale publisher cannot roll routing back.
    SetPartition {
        /// The schema to publish.
        schema: PartitionSchema,
    },
}

/// A response payload.
#[derive(Clone, Debug)]
pub enum Response {
    /// The request was applied; nothing to return.
    Ack,
    /// A [`Request::IngestBatch`] landed (or was recognised as an exact
    /// redelivery and skipped).
    AckBatch {
        /// Tuples covered by this ack.
        tuples: u32,
        /// `true` when the handler recognised the batch sequence number as
        /// already applied and dropped the redelivery instead of appending.
        deduped: bool,
    },
    /// Liveness probe answer.
    Pong,
    /// Matching tuples from a subquery.
    Tuples(Vec<Tuple>),
    /// Chunk ids sealed by a [`Request::Flush`].
    Flushed(Vec<ChunkId>),
    /// A live-wheel fold outcome.
    Fold(FoldOutcome),
    /// A chunk's footer summary (`None` when written without one).
    Summary(Option<Arc<WheelSummary>>),
    /// A metadata-service answer.
    Meta(MetaResponse),
    /// A complete range-query result (answer to [`Request::ClientQuery`]).
    Query(QueryResult),
    /// A complete aggregate answer (answer to [`Request::ClientAggregate`]).
    Aggregate(AggregateAnswer),
    /// A [`Request::MigrateUniform`] finished: the membership epoch after
    /// the final cut-over and how many key ranges changed owners.
    Migrated {
        /// Membership epoch after the last cut-over.
        epoch: u64,
        /// Number of key ranges that moved.
        ranges: u32,
    },
}

/// Answers from the metadata server.
#[derive(Clone, Debug)]
pub enum MetaResponse {
    /// The mutation was applied.
    Ack,
    /// A freshly allocated chunk id.
    Allocated(ChunkId),
    /// Overlapping chunks with their regions.
    Chunks(Vec<(ChunkId, Region)>),
    /// Overlapping in-memory regions with their owning servers.
    Regions(Vec<(ServerId, Region)>),
    /// A secondary-index probe verdict.
    Probe(AttrProbe),
    /// A chunk's summary extent, if registered.
    Extent(Option<SummaryExtent>),
    /// The published partition schema, if any.
    Partition(Option<PartitionSchema>),
    /// A durable queue offset (answer to [`MetaRequest::DurableOffset`]).
    Offset(u64),
    /// The membership epoch after a join/heartbeat/leave mutation.
    Epoch(u64),
    /// The epoch-numbered membership view (answer to
    /// [`MetaRequest::Membership`]).
    Membership(MembershipView),
}

fn unexpected<T>() -> Result<T> {
    Err(WwError::InvalidState(
        "rpc response variant does not match the request".into(),
    ))
}

impl Response {
    /// Unwraps [`Response::Tuples`].
    pub fn into_tuples(self) -> Result<Vec<Tuple>> {
        match self {
            Response::Tuples(t) => Ok(t),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Flushed`].
    pub fn into_flushed(self) -> Result<Vec<ChunkId>> {
        match self {
            Response::Flushed(c) => Ok(c),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Fold`].
    pub fn into_fold(self) -> Result<FoldOutcome> {
        match self {
            Response::Fold(f) => Ok(f),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Summary`].
    pub fn into_summary(self) -> Result<Option<Arc<WheelSummary>>> {
        match self {
            Response::Summary(s) => Ok(s),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Meta`].
    pub fn into_meta(self) -> Result<MetaResponse> {
        match self {
            Response::Meta(m) => Ok(m),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Ack`].
    pub fn into_ack(self) -> Result<()> {
        match self {
            Response::Ack => Ok(()),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::AckBatch`] into `(tuples, deduped)`.
    pub fn into_ack_batch(self) -> Result<(u32, bool)> {
        match self {
            Response::AckBatch { tuples, deduped } => Ok((tuples, deduped)),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Query`].
    pub fn into_query(self) -> Result<QueryResult> {
        match self {
            Response::Query(r) => Ok(r),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Aggregate`].
    pub fn into_aggregate(self) -> Result<AggregateAnswer> {
        match self {
            Response::Aggregate(a) => Ok(a),
            _ => unexpected(),
        }
    }

    /// Unwraps [`Response::Migrated`] into `(epoch, ranges)`.
    pub fn into_migrated(self) -> Result<(u64, u32)> {
        match self {
            Response::Migrated { epoch, ranges } => Ok((epoch, ranges)),
            _ => unexpected(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_frame_lengths_scale_with_payload() {
        // Byte accounting charges real encoded frame lengths (wire.rs),
        // so the sizes the stats see must scale with the data moved and
        // batching must amortize the per-envelope overhead.
        let frame = |req: Request| {
            crate::wire::encode_request(
                0,
                &Envelope {
                    src: ServerId(2_000),
                    dst: ServerId(0),
                    rpc_id: 1,
                    deadline: Instant::now(),
                    payload: req,
                },
            )
            .len()
        };
        let small = frame(Request::Ingest {
            tuple: Tuple::bare(1, 2),
        });
        let big = frame(Request::Ingest {
            tuple: Tuple::new(1, 2, vec![0u8; 1_000]),
        });
        assert!(big > small + 900);
        let batch = frame(Request::IngestBatch {
            seq: 0,
            tuples: vec![Tuple::bare(1, 2); 64],
        });
        assert!(batch < 64 * small);
        assert!(batch > 64 * Tuple::bare(1, 2).encoded_len());
    }

    #[test]
    fn client_response_unwrappers_enforce_variants() {
        assert!(Response::Pong.into_query().is_err());
        assert!(Response::Pong.into_aggregate().is_err());
        let r = QueryResult {
            query_id: waterwheel_core::QueryId(1),
            tuples: vec![],
            subqueries: 0,
        };
        assert_eq!(Response::Query(r).into_query().unwrap().subqueries, 0);
    }

    #[test]
    fn response_unwrappers_enforce_variants() {
        assert_eq!(Response::Tuples(vec![]).into_tuples().unwrap(), vec![]);
        assert!(Response::Pong.into_tuples().is_err());
        assert!(Response::Ack.into_ack().is_ok());
        assert!(Response::Pong.into_ack().is_err());
        assert_eq!(
            Response::AckBatch {
                tuples: 7,
                deduped: true
            }
            .into_ack_batch()
            .unwrap(),
            (7, true)
        );
        assert!(Response::Ack.into_ack_batch().is_err());
        assert!(Response::Pong.into_fold().is_err());
        assert!(Response::Pong.into_summary().is_err());
        assert!(Response::Pong.into_meta().is_err());
        assert!(Response::Pong.into_flushed().is_err());
    }

    #[test]
    fn well_known_addresses_do_not_collide_with_server_ranges() {
        // Indexing 0.., query 1000.., dispatchers 2000.. — meta and the
        // coordinator live above all of them.
        assert!(META_SERVER.raw() >= 3_000);
        assert!(COORDINATOR.raw() > META_SERVER.raw());
    }
}
