//! Binary wire codec for the message plane.
//!
//! Every [`Envelope`] and every [`Response`] can be serialized into a
//! length-prefixed frame and reconstructed on the other side of a real
//! socket. The format reuses the hand-rolled little-endian
//! [`Encoder`]/[`Decoder`] style of `waterwheel_core::codec` — simple,
//! fixed-layout, auditable — rather than pulling in a serialization
//! framework.
//!
//! ## Frame layout
//!
//! ```text
//! u32 len                  body length (bytes after this prefix)
//! body:
//!   u8  version            WIRE_VERSION
//!   u8  kind               0 = request, 1 = response-ok, 2 = response-err
//!   u64 corr               transport-level correlation id
//!   kind 0: u32 src | u32 dst | u64 rpc_id | u64 budget_ms | Request
//!   kind 1: Response
//!   kind 2: WwError
//! ```
//!
//! Two deliberate lossy spots, both documented on the decoders:
//!
//! * **Deadlines** travel as *remaining-budget milliseconds* (`budget_ms`)
//!   — an [`Instant`] is process-local and cannot cross the wire. The
//!   receiver re-anchors the budget on its own clock, so transit time is
//!   charged against the deadline implicitly.
//! * **Predicates** are opaque closures and travel as a presence flag
//!   only. A transport shipping a predicate-bearing subquery must
//!   re-apply the predicate to the returned tuples on the sender side
//!   (see `TcpTransport`); results stay exact, pushdown degrades to
//!   client-side filtering.
//!
//! ## Hardening
//!
//! Decoding never panics and never over-allocates: the frame length is
//! capped at [`MAX_FRAME_LEN`] before any buffer is reserved, collection
//! counts are clamped to the bytes actually present, and unknown variant
//! tags or malformed component encodings surface as [`WwError::Corrupt`].

use crate::envelope::{Envelope, MetaRequest, MetaResponse, Request, Response};
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_agg::{AggregateAnswer, FoldOutcome, PartialAgg, WheelSummary};
use waterwheel_core::aggregate::AggregateKind;
use waterwheel_core::codec::{decode_region, decode_tuple, encode_region, encode_tuple};
use waterwheel_core::codec::{Decoder, Encoder};
use waterwheel_core::{
    ChunkId, KeyInterval, NodeId, QueryId, QueryResult, Result, ServerId, SubQuery, SubQueryId,
    SubQueryTarget, TimeInterval, Tuple, WwError,
};
use waterwheel_index::secondary::{AttrProbe, ChunkAttrIndex};
use waterwheel_index::Bitmap;
use waterwheel_meta::{ChunkInfo, MemberRole, MembershipView, PartitionSchema, SummaryExtent};

/// Version byte stamped into every frame; bumped on layout changes.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on one frame's body length. A peer announcing a longer frame
/// is corrupt (or hostile) and is rejected before any allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE_OK: u8 = 1;
const KIND_RESPONSE_ERR: u8 = 2;

/// What decoding one frame body yields.
#[derive(Debug)]
pub enum Frame {
    /// A request frame: the envelope fields plus the transport correlation
    /// id. `deadline` has been re-anchored on the local clock from the
    /// remaining-budget millis carried on the wire.
    Request {
        /// Transport-level correlation id (echoed in the response frame).
        corr: u64,
        /// The reconstructed envelope. `payload` predicates decode as
        /// `None` — see the module docs.
        env: Envelope,
    },
    /// A response frame: the destination's answer or error.
    Response {
        /// Correlation id of the request this answers.
        corr: u64,
        /// The outcome carried back.
        result: Result<Response>,
    },
}

// ---------------------------------------------------------------------------
// Frame entry points
// ---------------------------------------------------------------------------

/// Encodes a full request frame (length prefix included) for `env`.
pub fn encode_request(corr: u64, env: &Envelope) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.push(WIRE_VERSION);
    body.push(KIND_REQUEST);
    body.put_u64(corr);
    body.put_u32(env.src.raw());
    body.put_u32(env.dst.raw());
    body.put_u64(env.rpc_id);
    let budget = env.deadline.saturating_duration_since(Instant::now());
    body.put_u64(budget.as_millis().min(u64::MAX as u128) as u64);
    encode_request_payload(&mut body, &env.payload);
    finish_frame(body)
}

/// Encodes a full success-response frame (length prefix included).
pub fn encode_response_ok(corr: u64, resp: &Response) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    body.push(WIRE_VERSION);
    body.push(KIND_RESPONSE_OK);
    body.put_u64(corr);
    encode_response_payload(&mut body, resp);
    finish_frame(body)
}

/// Encodes a full error-response frame (length prefix included).
pub fn encode_response_err(corr: u64, err: &WwError) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    body.push(WIRE_VERSION);
    body.push(KIND_RESPONSE_ERR);
    body.put_u64(corr);
    encode_error(&mut body, err);
    finish_frame(body)
}

/// Encodes a full response frame for a handler outcome.
pub fn encode_response(corr: u64, result: &Result<Response>) -> Vec<u8> {
    match result {
        Ok(resp) => encode_response_ok(corr, resp),
        Err(err) => encode_response_err(corr, err),
    }
}

fn finish_frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.put_u32(body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

/// Reads one frame body off a byte stream. Returns `Ok(None)` on a clean
/// EOF at a frame boundary; an announced length past [`MAX_FRAME_LEN`] is
/// rejected *before* the body buffer is allocated.
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WwError::corrupt("frame", "eof inside the length prefix"));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WwError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WwError::corrupt(
            "frame",
            format!("announced length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(WwError::Io)?;
    Ok(Some(body))
}

/// Decodes one frame body produced by the `encode_*` functions.
pub fn decode_frame(body: &[u8]) -> Result<Frame> {
    let mut dec = Decoder::new(body, "frame");
    let version = dec.get_u8()?;
    if version != WIRE_VERSION {
        return Err(WwError::corrupt(
            "frame",
            format!("unsupported wire version {version}"),
        ));
    }
    let kind = dec.get_u8()?;
    let corr = dec.get_u64()?;
    match kind {
        KIND_REQUEST => {
            let src = ServerId(dec.get_u32()?);
            let dst = ServerId(dec.get_u32()?);
            let rpc_id = dec.get_u64()?;
            let budget_ms = dec.get_u64()?;
            let payload = decode_request_payload(&mut dec)?;
            Ok(Frame::Request {
                corr,
                env: Envelope {
                    src,
                    dst,
                    rpc_id,
                    deadline: Instant::now() + Duration::from_millis(budget_ms),
                    payload,
                },
            })
        }
        KIND_RESPONSE_OK => Ok(Frame::Response {
            corr,
            result: Ok(decode_response_payload(&mut dec)?),
        }),
        KIND_RESPONSE_ERR => Ok(Frame::Response {
            corr,
            result: Err(decode_error(&mut dec)?),
        }),
        other => Err(WwError::corrupt(
            "frame",
            format!("unknown frame kind {other}"),
        )),
    }
}

// ---------------------------------------------------------------------------
// Small shared helpers
// ---------------------------------------------------------------------------

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_bytes(s.as_bytes());
}

fn get_string(dec: &mut Decoder<'_>) -> Result<String> {
    let raw = dec.get_bytes()?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| WwError::corrupt("frame", "string is not valid utf-8"))
}

/// Caps a decoded element count so `Vec::with_capacity` cannot be driven
/// past the bytes actually present in the frame. Every element costs at
/// least `min_elem` encoded bytes, so a count above `remaining / min_elem`
/// is guaranteed to fail later anyway — allocate only what can exist.
fn checked_cap(dec: &Decoder<'_>, count: usize, min_elem: usize) -> usize {
    count.min(dec.remaining() / min_elem.max(1) + 1)
}

fn encode_key_interval(out: &mut Vec<u8>, i: &KeyInterval) {
    out.put_u64(i.lo());
    out.put_u64(i.hi());
}

fn decode_key_interval(dec: &mut Decoder<'_>) -> Result<KeyInterval> {
    let lo = dec.get_u64()?;
    let hi = dec.get_u64()?;
    KeyInterval::checked(lo, hi).ok_or_else(|| WwError::corrupt("frame", "inverted key interval"))
}

fn encode_time_interval(out: &mut Vec<u8>, i: &TimeInterval) {
    out.put_u64(i.lo());
    out.put_u64(i.hi());
}

fn decode_time_interval(dec: &mut Decoder<'_>) -> Result<TimeInterval> {
    let lo = dec.get_u64()?;
    let hi = dec.get_u64()?;
    TimeInterval::checked(lo, hi).ok_or_else(|| WwError::corrupt("frame", "inverted time interval"))
}

fn encode_tuples(out: &mut Vec<u8>, tuples: &[Tuple]) {
    out.put_u32(tuples.len() as u32);
    for t in tuples {
        encode_tuple(out, t);
    }
}

fn decode_tuples(dec: &mut Decoder<'_>) -> Result<Vec<Tuple>> {
    let count = dec.get_u32()? as usize;
    let mut tuples = Vec::with_capacity(checked_cap(dec, count, 20));
    for _ in 0..count {
        tuples.push(decode_tuple(dec)?);
    }
    Ok(tuples)
}

// ---------------------------------------------------------------------------
// Subqueries
// ---------------------------------------------------------------------------

fn encode_subquery(out: &mut Vec<u8>, sq: &SubQuery) {
    out.put_u64(sq.id.query.raw());
    out.put_u32(sq.id.index);
    encode_key_interval(out, &sq.keys);
    encode_time_interval(out, &sq.times);
    // Opaque closure: presence flag only. The transport re-applies the
    // predicate sender-side (module docs).
    out.push(sq.predicate.is_some() as u8);
    // The structured measure range is plain data and crosses for real:
    // executors prune leaves by persisted MIN/MAX bounds against it.
    match sq.measure_range {
        Some((lo, hi)) => {
            out.push(1);
            out.put_u64(lo);
            out.put_u64(hi);
        }
        None => out.push(0),
    }
    match sq.target {
        SubQueryTarget::InMemory(server) => {
            out.push(0);
            out.put_u32(server.raw());
        }
        SubQueryTarget::Chunk(chunk) => {
            out.push(1);
            out.put_u64(chunk.raw());
        }
    }
}

fn decode_subquery(dec: &mut Decoder<'_>) -> Result<SubQuery> {
    let query = QueryId(dec.get_u64()?);
    let index = dec.get_u32()?;
    let keys = decode_key_interval(dec)?;
    let times = decode_time_interval(dec)?;
    let _had_predicate = dec.get_u8()? != 0;
    let measure_range = match dec.get_u8()? {
        0 => None,
        1 => {
            let lo = dec.get_u64()?;
            let hi = dec.get_u64()?;
            if lo > hi {
                return Err(WwError::corrupt("frame", "inverted measure range"));
            }
            Some((lo, hi))
        }
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown measure-range flag {other}"),
            ))
        }
    };
    let target = match dec.get_u8()? {
        0 => SubQueryTarget::InMemory(ServerId(dec.get_u32()?)),
        1 => SubQueryTarget::Chunk(ChunkId(dec.get_u64()?)),
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown subquery target tag {other}"),
            ))
        }
    };
    Ok(SubQuery {
        id: SubQueryId { query, index },
        keys,
        times,
        predicate: None,
        measure_range,
        target,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

fn encode_request_payload(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Ingest { tuple } => {
            out.push(0);
            encode_tuple(out, tuple);
        }
        Request::IngestBatch { seq, tuples } => {
            out.push(1);
            out.put_u64(*seq);
            encode_tuples(out, tuples);
        }
        Request::Flush => out.push(2),
        Request::InMemorySubquery { sq } => {
            out.push(3);
            encode_subquery(out, sq);
        }
        Request::AggregateInMemory { slices, covered } => {
            out.push(4);
            out.put_u16(slices.0);
            out.put_u16(slices.1);
            encode_time_interval(out, covered);
        }
        Request::ChunkSubquery {
            sq,
            chunk,
            leaf_filter,
        } => {
            out.push(5);
            encode_subquery(out, sq);
            out.put_u64(chunk.raw());
            match leaf_filter {
                Some(b) => {
                    out.push(1);
                    b.encode(out);
                }
                None => out.push(0),
            }
        }
        Request::ReadSummary { chunk } => {
            out.push(6);
            out.put_u64(chunk.raw());
        }
        Request::Ping => out.push(7),
        Request::Meta(m) => {
            out.push(8);
            encode_meta_request(out, m);
        }
        Request::ClientQuery {
            keys,
            times,
            attr_eq,
        } => {
            out.push(9);
            encode_key_interval(out, keys);
            encode_time_interval(out, times);
            match attr_eq {
                Some((attr, value)) => {
                    out.push(1);
                    out.put_u16(*attr);
                    out.put_u64(*value);
                }
                None => out.push(0),
            }
        }
        Request::ClientAggregate { keys, times, kind } => {
            out.push(10);
            encode_key_interval(out, keys);
            encode_time_interval(out, times);
            out.push(encode_agg_kind(*kind));
        }
        Request::Shutdown => out.push(11),
        Request::RegisterPeers { peers } => {
            out.push(12);
            out.put_u32(peers.len() as u32);
            for (server, addr) in peers {
                out.put_u32(server.raw());
                put_string(out, addr);
            }
        }
        Request::Reassign { interval } => {
            out.push(13);
            encode_key_interval(out, interval);
        }
        Request::MigrateUniform => out.push(14),
    }
}

fn decode_request_payload(dec: &mut Decoder<'_>) -> Result<Request> {
    Ok(match dec.get_u8()? {
        0 => Request::Ingest {
            tuple: decode_tuple(dec)?,
        },
        1 => Request::IngestBatch {
            seq: dec.get_u64()?,
            tuples: decode_tuples(dec)?,
        },
        2 => Request::Flush,
        3 => Request::InMemorySubquery {
            sq: decode_subquery(dec)?,
        },
        4 => Request::AggregateInMemory {
            slices: (dec.get_u16()?, dec.get_u16()?),
            covered: decode_time_interval(dec)?,
        },
        5 => Request::ChunkSubquery {
            sq: decode_subquery(dec)?,
            chunk: ChunkId(dec.get_u64()?),
            leaf_filter: match dec.get_u8()? {
                0 => None,
                1 => Some(Bitmap::decode(dec)?),
                other => {
                    return Err(WwError::corrupt(
                        "frame",
                        format!("unknown leaf-filter tag {other}"),
                    ))
                }
            },
        },
        6 => Request::ReadSummary {
            chunk: ChunkId(dec.get_u64()?),
        },
        7 => Request::Ping,
        8 => Request::Meta(decode_meta_request(dec)?),
        9 => Request::ClientQuery {
            keys: decode_key_interval(dec)?,
            times: decode_time_interval(dec)?,
            attr_eq: match dec.get_u8()? {
                0 => None,
                1 => Some((dec.get_u16()?, dec.get_u64()?)),
                other => {
                    return Err(WwError::corrupt(
                        "frame",
                        format!("unknown attr-eq tag {other}"),
                    ))
                }
            },
        },
        10 => Request::ClientAggregate {
            keys: decode_key_interval(dec)?,
            times: decode_time_interval(dec)?,
            kind: decode_agg_kind(dec.get_u8()?)?,
        },
        11 => Request::Shutdown,
        12 => {
            let count = dec.get_u32()? as usize;
            let mut peers = Vec::with_capacity(checked_cap(dec, count, 8));
            for _ in 0..count {
                let server = ServerId(dec.get_u32()?);
                peers.push((server, get_string(dec)?));
            }
            Request::RegisterPeers { peers }
        }
        13 => Request::Reassign {
            interval: decode_key_interval(dec)?,
        },
        14 => Request::MigrateUniform,
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown request tag {other}"),
            ))
        }
    })
}

fn encode_meta_request(out: &mut Vec<u8>, req: &MetaRequest) {
    match req {
        MetaRequest::UpdateMemoryRegion { server, region } => {
            out.push(0);
            out.put_u32(server.raw());
            match region {
                Some(r) => {
                    out.push(1);
                    encode_region(out, r);
                }
                None => out.push(0),
            }
        }
        MetaRequest::AllocateChunkId => out.push(1),
        MetaRequest::RegisterChunk {
            chunk,
            info,
            durable_offset,
        } => {
            out.push(2);
            out.put_u64(chunk.raw());
            encode_chunk_info(out, info);
            out.put_u64(*durable_offset);
        }
        MetaRequest::RegisterSummary { chunk, extent } => {
            out.push(3);
            out.put_u64(chunk.raw());
            encode_summary_extent(out, extent);
        }
        MetaRequest::RegisterAttrIndex { chunk, attr, index } => {
            out.push(4);
            out.put_u64(chunk.raw());
            out.put_u16(*attr);
            index.encode(out);
        }
        MetaRequest::ChunksOverlapping { region } => {
            out.push(5);
            encode_region(out, region);
        }
        MetaRequest::MemoryRegionsOverlapping { region } => {
            out.push(6);
            encode_region(out, region);
        }
        MetaRequest::AttrProbe { chunk, attr, value } => {
            out.push(7);
            out.put_u64(chunk.raw());
            out.put_u16(*attr);
            out.put_u64(*value);
        }
        MetaRequest::SummaryExtent { chunk } => {
            out.push(8);
            out.put_u64(chunk.raw());
        }
        MetaRequest::Partition => out.push(9),
        MetaRequest::DurableOffset { server } => {
            out.push(10);
            out.put_u32(server.raw());
        }
        MetaRequest::Join {
            server,
            role,
            node,
            ttl_ms,
        } => {
            out.push(11);
            out.put_u32(server.raw());
            out.push(role.as_u8());
            out.put_u32(node.raw());
            out.put_u64(*ttl_ms);
        }
        MetaRequest::Heartbeat { server, ttl_ms } => {
            out.push(12);
            out.put_u32(server.raw());
            out.put_u64(*ttl_ms);
        }
        MetaRequest::Leave { server } => {
            out.push(13);
            out.put_u32(server.raw());
        }
        MetaRequest::Membership => out.push(14),
        MetaRequest::SetPartition { schema } => {
            out.push(15);
            schema.encode(out);
        }
    }
}

fn decode_meta_request(dec: &mut Decoder<'_>) -> Result<MetaRequest> {
    Ok(match dec.get_u8()? {
        0 => MetaRequest::UpdateMemoryRegion {
            server: ServerId(dec.get_u32()?),
            region: match dec.get_u8()? {
                0 => None,
                1 => Some(decode_region(dec)?),
                other => {
                    return Err(WwError::corrupt(
                        "frame",
                        format!("unknown region tag {other}"),
                    ))
                }
            },
        },
        1 => MetaRequest::AllocateChunkId,
        2 => MetaRequest::RegisterChunk {
            chunk: ChunkId(dec.get_u64()?),
            info: decode_chunk_info(dec)?,
            durable_offset: dec.get_u64()?,
        },
        3 => MetaRequest::RegisterSummary {
            chunk: ChunkId(dec.get_u64()?),
            extent: decode_summary_extent(dec)?,
        },
        4 => MetaRequest::RegisterAttrIndex {
            chunk: ChunkId(dec.get_u64()?),
            attr: dec.get_u16()?,
            index: ChunkAttrIndex::decode(dec)?,
        },
        5 => MetaRequest::ChunksOverlapping {
            region: decode_region(dec)?,
        },
        6 => MetaRequest::MemoryRegionsOverlapping {
            region: decode_region(dec)?,
        },
        7 => MetaRequest::AttrProbe {
            chunk: ChunkId(dec.get_u64()?),
            attr: dec.get_u16()?,
            value: dec.get_u64()?,
        },
        8 => MetaRequest::SummaryExtent {
            chunk: ChunkId(dec.get_u64()?),
        },
        9 => MetaRequest::Partition,
        10 => MetaRequest::DurableOffset {
            server: ServerId(dec.get_u32()?),
        },
        11 => MetaRequest::Join {
            server: ServerId(dec.get_u32()?),
            role: MemberRole::from_u8(dec.get_u8()?)?,
            node: NodeId(dec.get_u32()?),
            ttl_ms: dec.get_u64()?,
        },
        12 => MetaRequest::Heartbeat {
            server: ServerId(dec.get_u32()?),
            ttl_ms: dec.get_u64()?,
        },
        13 => MetaRequest::Leave {
            server: ServerId(dec.get_u32()?),
        },
        14 => MetaRequest::Membership,
        15 => MetaRequest::SetPartition {
            schema: PartitionSchema::decode(dec)?,
        },
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown meta request tag {other}"),
            ))
        }
    })
}

fn encode_chunk_info(out: &mut Vec<u8>, info: &ChunkInfo) {
    encode_region(out, &info.region);
    out.put_u64(info.count);
    out.put_u64(info.bytes);
    out.put_u32(info.producer.raw());
}

fn decode_chunk_info(dec: &mut Decoder<'_>) -> Result<ChunkInfo> {
    Ok(ChunkInfo {
        region: decode_region(dec)?,
        count: dec.get_u64()?,
        bytes: dec.get_u64()?,
        producer: ServerId(dec.get_u32()?),
    })
}

fn encode_summary_extent(out: &mut Vec<u8>, e: &SummaryExtent) {
    out.put_u64(e.cells);
    out.put_u64(e.bytes);
    out.push(e.levels);
    out.push(e.slice_bits);
    match e.measure_range {
        Some((lo, hi)) => {
            out.push(1);
            out.put_u64(lo);
            out.put_u64(hi);
        }
        None => out.push(0),
    }
}

fn decode_summary_extent(dec: &mut Decoder<'_>) -> Result<SummaryExtent> {
    let cells = dec.get_u64()?;
    let bytes = dec.get_u64()?;
    let levels = dec.get_u8()?;
    let slice_bits = dec.get_u8()?;
    let measure_range = match dec.get_u8()? {
        0 => None,
        1 => {
            let lo = dec.get_u64()?;
            let hi = dec.get_u64()?;
            if lo > hi {
                return Err(WwError::corrupt("frame", "inverted measure range"));
            }
            Some((lo, hi))
        }
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown measure-range flag {other}"),
            ))
        }
    };
    Ok(SummaryExtent {
        cells,
        bytes,
        levels,
        slice_bits,
        measure_range,
    })
}

fn encode_agg_kind(kind: AggregateKind) -> u8 {
    match kind {
        AggregateKind::Count => 0,
        AggregateKind::Sum => 1,
        AggregateKind::Min => 2,
        AggregateKind::Max => 3,
        AggregateKind::Avg => 4,
    }
}

fn decode_agg_kind(tag: u8) -> Result<AggregateKind> {
    Ok(match tag {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum,
        2 => AggregateKind::Min,
        3 => AggregateKind::Max,
        4 => AggregateKind::Avg,
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown aggregate kind tag {other}"),
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn encode_response_payload(out: &mut Vec<u8>, resp: &Response) {
    match resp {
        Response::Ack => out.push(0),
        Response::AckBatch { tuples, deduped } => {
            out.push(1);
            out.put_u32(*tuples);
            out.push(*deduped as u8);
        }
        Response::Pong => out.push(2),
        Response::Tuples(tuples) => {
            out.push(3);
            encode_tuples(out, tuples);
        }
        Response::Flushed(chunks) => {
            out.push(4);
            out.put_u32(chunks.len() as u32);
            for c in chunks {
                out.put_u64(c.raw());
            }
        }
        Response::Fold(fold) => {
            out.push(5);
            fold.agg.encode(out);
            out.put_u64(fold.cells_merged);
            out.put_u32(fold.residues.len() as u32);
            for r in &fold.residues {
                encode_time_interval(out, r);
            }
        }
        Response::Summary(summary) => {
            out.push(6);
            match summary {
                Some(s) => {
                    out.push(1);
                    out.put_bytes(&s.encode());
                }
                None => out.push(0),
            }
        }
        Response::Meta(m) => {
            out.push(7);
            encode_meta_response(out, m);
        }
        Response::Query(result) => {
            out.push(8);
            out.put_u64(result.query_id.raw());
            out.put_u32(result.subqueries);
            encode_tuples(out, &result.tuples);
        }
        Response::Aggregate(answer) => {
            out.push(9);
            out.put_u64(answer.query_id.raw());
            out.push(encode_agg_kind(answer.kind));
            answer.agg.encode(out);
            out.put_u64(answer.cells_merged);
            out.put_u64(answer.scanned_tuples);
        }
        Response::Migrated { epoch, ranges } => {
            out.push(10);
            out.put_u64(*epoch);
            out.put_u32(*ranges);
        }
    }
}

fn decode_response_payload(dec: &mut Decoder<'_>) -> Result<Response> {
    Ok(match dec.get_u8()? {
        0 => Response::Ack,
        1 => Response::AckBatch {
            tuples: dec.get_u32()?,
            deduped: dec.get_u8()? != 0,
        },
        2 => Response::Pong,
        3 => Response::Tuples(decode_tuples(dec)?),
        4 => {
            let count = dec.get_u32()? as usize;
            let mut chunks = Vec::with_capacity(checked_cap(dec, count, 8));
            for _ in 0..count {
                chunks.push(ChunkId(dec.get_u64()?));
            }
            Response::Flushed(chunks)
        }
        5 => {
            let agg = PartialAgg::decode(dec)?;
            let cells_merged = dec.get_u64()?;
            let count = dec.get_u32()? as usize;
            let mut residues = Vec::with_capacity(checked_cap(dec, count, 16));
            for _ in 0..count {
                residues.push(decode_time_interval(dec)?);
            }
            Response::Fold(FoldOutcome {
                agg,
                cells_merged,
                residues,
            })
        }
        6 => Response::Summary(match dec.get_u8()? {
            0 => None,
            1 => Some(Arc::new(WheelSummary::decode(dec.get_bytes()?)?)),
            other => {
                return Err(WwError::corrupt(
                    "frame",
                    format!("unknown summary tag {other}"),
                ))
            }
        }),
        7 => Response::Meta(decode_meta_response(dec)?),
        8 => {
            let query_id = QueryId(dec.get_u64()?);
            let subqueries = dec.get_u32()?;
            let tuples = decode_tuples(dec)?;
            Response::Query(QueryResult {
                query_id,
                tuples,
                subqueries,
            })
        }
        9 => Response::Aggregate(AggregateAnswer {
            query_id: QueryId(dec.get_u64()?),
            kind: decode_agg_kind(dec.get_u8()?)?,
            agg: PartialAgg::decode(dec)?,
            cells_merged: dec.get_u64()?,
            scanned_tuples: dec.get_u64()?,
        }),
        10 => Response::Migrated {
            epoch: dec.get_u64()?,
            ranges: dec.get_u32()?,
        },
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown response tag {other}"),
            ))
        }
    })
}

fn encode_meta_response(out: &mut Vec<u8>, resp: &MetaResponse) {
    match resp {
        MetaResponse::Ack => out.push(0),
        MetaResponse::Allocated(id) => {
            out.push(1);
            out.put_u64(id.raw());
        }
        MetaResponse::Chunks(chunks) => {
            out.push(2);
            out.put_u32(chunks.len() as u32);
            for (id, region) in chunks {
                out.put_u64(id.raw());
                encode_region(out, region);
            }
        }
        MetaResponse::Regions(regions) => {
            out.push(3);
            out.put_u32(regions.len() as u32);
            for (server, region) in regions {
                out.put_u32(server.raw());
                encode_region(out, region);
            }
        }
        MetaResponse::Probe(probe) => {
            out.push(4);
            match probe {
                AttrProbe::Absent => out.push(0),
                AttrProbe::Leaves(bitmap) => {
                    out.push(1);
                    bitmap.encode(out);
                }
                AttrProbe::Unknown => out.push(2),
            }
        }
        MetaResponse::Extent(extent) => {
            out.push(5);
            match extent {
                Some(e) => {
                    out.push(1);
                    encode_summary_extent(out, e);
                }
                None => out.push(0),
            }
        }
        MetaResponse::Partition(schema) => {
            out.push(6);
            match schema {
                Some(s) => {
                    out.push(1);
                    s.encode(out);
                }
                None => out.push(0),
            }
        }
        MetaResponse::Offset(offset) => {
            out.push(7);
            out.put_u64(*offset);
        }
        MetaResponse::Epoch(epoch) => {
            out.push(8);
            out.put_u64(*epoch);
        }
        MetaResponse::Membership(view) => {
            out.push(9);
            view.encode(out);
        }
    }
}

fn decode_meta_response(dec: &mut Decoder<'_>) -> Result<MetaResponse> {
    Ok(match dec.get_u8()? {
        0 => MetaResponse::Ack,
        1 => MetaResponse::Allocated(ChunkId(dec.get_u64()?)),
        2 => {
            let count = dec.get_u32()? as usize;
            let mut chunks = Vec::with_capacity(checked_cap(dec, count, 40));
            for _ in 0..count {
                chunks.push((ChunkId(dec.get_u64()?), decode_region(dec)?));
            }
            MetaResponse::Chunks(chunks)
        }
        3 => {
            let count = dec.get_u32()? as usize;
            let mut regions = Vec::with_capacity(checked_cap(dec, count, 36));
            for _ in 0..count {
                regions.push((ServerId(dec.get_u32()?), decode_region(dec)?));
            }
            MetaResponse::Regions(regions)
        }
        4 => MetaResponse::Probe(match dec.get_u8()? {
            0 => AttrProbe::Absent,
            1 => AttrProbe::Leaves(Bitmap::decode(dec)?),
            2 => AttrProbe::Unknown,
            other => {
                return Err(WwError::corrupt(
                    "frame",
                    format!("unknown attr-probe tag {other}"),
                ))
            }
        }),
        5 => MetaResponse::Extent(match dec.get_u8()? {
            0 => None,
            1 => Some(decode_summary_extent(dec)?),
            other => {
                return Err(WwError::corrupt(
                    "frame",
                    format!("unknown extent tag {other}"),
                ))
            }
        }),
        6 => MetaResponse::Partition(match dec.get_u8()? {
            0 => None,
            1 => Some(PartitionSchema::decode(dec)?),
            other => {
                return Err(WwError::corrupt(
                    "frame",
                    format!("unknown partition tag {other}"),
                ))
            }
        }),
        7 => MetaResponse::Offset(dec.get_u64()?),
        8 => MetaResponse::Epoch(dec.get_u64()?),
        9 => MetaResponse::Membership(MembershipView::decode(dec)?),
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown meta response tag {other}"),
            ))
        }
    })
}

// ---------------------------------------------------------------------------
// Errors over the wire
// ---------------------------------------------------------------------------

fn encode_error(out: &mut Vec<u8>, err: &WwError) {
    match err {
        WwError::Io(e) => {
            out.push(0);
            put_string(out, &e.to_string());
        }
        WwError::Corrupt { what, detail } => {
            out.push(1);
            put_string(out, what);
            put_string(out, detail);
        }
        WwError::NotFound { what, id } => {
            out.push(2);
            put_string(out, what);
            put_string(out, id);
        }
        WwError::InvalidState(msg) => {
            out.push(3);
            put_string(out, msg);
        }
        WwError::Config(msg) => {
            out.push(4);
            put_string(out, msg);
        }
        WwError::Shutdown(who) => {
            out.push(5);
            put_string(out, who);
        }
        WwError::Injected(what) => {
            out.push(6);
            put_string(out, what);
        }
        WwError::Timeout(what) => {
            out.push(7);
            put_string(out, what);
        }
        WwError::Unreachable(what) => {
            out.push(8);
            put_string(out, what);
        }
        WwError::Overloaded { retry_after } => {
            out.push(9);
            out.put_u64(retry_after.as_millis().min(u64::MAX as u128) as u64);
        }
    }
}

/// Decodes an error frame into the same taxonomy the sender held.
///
/// Variants carrying `&'static str` messages cannot round-trip an owned
/// string; they decode with a fixed "remote" message and the original text
/// is folded into variants that carry owned strings where possible. The
/// *classification* — including [`WwError::is_retryable`] — is always
/// preserved exactly.
fn decode_error(dec: &mut Decoder<'_>) -> Result<WwError> {
    Ok(match dec.get_u8()? {
        0 => WwError::Io(std::io::Error::other(get_string(dec)?)),
        1 => {
            let what = get_string(dec)?;
            let detail = get_string(dec)?;
            WwError::Corrupt {
                what: "remote",
                detail: format!("{what}: {detail}"),
            }
        }
        2 => {
            let what = get_string(dec)?;
            let id = get_string(dec)?;
            WwError::NotFound {
                what: "remote",
                id: format!("{what}: {id}"),
            }
        }
        3 => WwError::InvalidState(get_string(dec)?),
        4 => WwError::Config(get_string(dec)?),
        5 => {
            let _ = get_string(dec)?;
            WwError::Shutdown("remote peer")
        }
        6 => {
            let _ = get_string(dec)?;
            WwError::Injected("remote injected fault")
        }
        7 => {
            let _ = get_string(dec)?;
            WwError::Timeout("remote rpc timed out")
        }
        8 => {
            let _ = get_string(dec)?;
            WwError::Unreachable("remote destination unreachable")
        }
        9 => WwError::Overloaded {
            retry_after: Duration::from_millis(dec.get_u64()?),
        },
        other => {
            return Err(WwError::corrupt(
                "frame",
                format!("unknown error tag {other}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::META_SERVER;
    use waterwheel_core::Region;

    fn env(payload: Request) -> Envelope {
        Envelope {
            src: ServerId(2_000),
            dst: ServerId(0),
            rpc_id: 42,
            deadline: Instant::now() + Duration::from_secs(3),
            payload,
        }
    }

    fn roundtrip_request(payload: Request) -> Envelope {
        let frame = encode_request(7, &env(payload));
        let body = read_frame(&mut &frame[..]).unwrap().unwrap();
        match decode_frame(&body).unwrap() {
            Frame::Request { corr, env } => {
                assert_eq!(corr, 7);
                env
            }
            other => panic!("expected a request frame, got {other:?}"),
        }
    }

    fn roundtrip_response(resp: Response) -> Response {
        let frame = encode_response_ok(9, &resp);
        let body = read_frame(&mut &frame[..]).unwrap().unwrap();
        match decode_frame(&body).unwrap() {
            Frame::Response { corr, result } => {
                assert_eq!(corr, 9);
                result.unwrap()
            }
            other => panic!("expected a response frame, got {other:?}"),
        }
    }

    #[test]
    fn request_envelope_fields_round_trip() {
        let decoded = roundtrip_request(Request::Ping);
        assert_eq!(decoded.src, ServerId(2_000));
        assert_eq!(decoded.dst, ServerId(0));
        assert_eq!(decoded.rpc_id, 42);
        // The deadline travelled as remaining budget and re-anchored close
        // to the original 3 s.
        let budget = decoded.deadline.saturating_duration_since(Instant::now());
        assert!(budget > Duration::from_secs(2) && budget <= Duration::from_secs(3));
    }

    #[test]
    fn ingest_batch_round_trips_tuples_exactly() {
        let tuples = vec![
            Tuple::new(1, 2, &b"abc"[..]),
            Tuple::bare(u64::MAX, 0),
            Tuple::new(7, 8, vec![0u8; 300]),
        ];
        let decoded = roundtrip_request(Request::IngestBatch {
            seq: 99,
            tuples: tuples.clone(),
        });
        match decoded.payload {
            Request::IngestBatch { seq, tuples: got } => {
                assert_eq!(seq, 99);
                assert_eq!(got, tuples);
            }
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn subquery_predicate_degrades_to_presence_flag() {
        let sq = SubQuery {
            id: SubQueryId {
                query: QueryId(3),
                index: 1,
            },
            keys: KeyInterval::new(10, 20),
            times: TimeInterval::new(30, 40),
            predicate: Some(Arc::new(|t: &Tuple| t.key.is_multiple_of(2))),
            measure_range: Some((1, 1000)),
            target: SubQueryTarget::Chunk(ChunkId(5)),
        };
        let decoded = roundtrip_request(Request::ChunkSubquery {
            sq,
            chunk: ChunkId(5),
            leaf_filter: None,
        });
        match decoded.payload {
            Request::ChunkSubquery { sq, chunk, .. } => {
                assert_eq!(chunk, ChunkId(5));
                assert_eq!(sq.keys, KeyInterval::new(10, 20));
                assert_eq!(sq.times, TimeInterval::new(30, 40));
                assert_eq!(sq.target, SubQueryTarget::Chunk(ChunkId(5)));
                assert!(
                    sq.predicate.is_none(),
                    "closures cannot cross the wire; the sender re-filters"
                );
            }
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn meta_requests_round_trip() {
        let region = Region::new(KeyInterval::new(0, 9), TimeInterval::new(5, 6));
        let reqs = vec![
            MetaRequest::UpdateMemoryRegion {
                server: ServerId(1),
                region: Some(region),
            },
            MetaRequest::UpdateMemoryRegion {
                server: ServerId(1),
                region: None,
            },
            MetaRequest::AllocateChunkId,
            MetaRequest::RegisterChunk {
                chunk: ChunkId(4),
                info: ChunkInfo {
                    region,
                    count: 10,
                    bytes: 200,
                    producer: ServerId(2),
                },
                durable_offset: 77,
            },
            MetaRequest::RegisterSummary {
                chunk: ChunkId(4),
                extent: SummaryExtent {
                    cells: 8,
                    bytes: 320,
                    levels: 0b101,
                    slice_bits: 4,
                    measure_range: Some((12, 8_000)),
                },
            },
            MetaRequest::ChunksOverlapping { region },
            MetaRequest::MemoryRegionsOverlapping { region },
            MetaRequest::AttrProbe {
                chunk: ChunkId(4),
                attr: 3,
                value: 42,
            },
            MetaRequest::SummaryExtent { chunk: ChunkId(4) },
            MetaRequest::Partition,
            MetaRequest::DurableOffset {
                server: ServerId(3),
            },
            MetaRequest::Join {
                server: ServerId(2),
                role: MemberRole::Indexing,
                node: waterwheel_core::NodeId(1),
                ttl_ms: 3_000,
            },
            MetaRequest::Join {
                server: ServerId(1_001),
                role: MemberRole::Query,
                node: waterwheel_core::NodeId(0),
                ttl_ms: 500,
            },
            MetaRequest::Heartbeat {
                server: ServerId(2),
                ttl_ms: 3_000,
            },
            MetaRequest::Leave {
                server: ServerId(2),
            },
            MetaRequest::Membership,
            MetaRequest::SetPartition {
                schema: PartitionSchema::uniform(&[ServerId(0), ServerId(1)]),
            },
        ];
        for req in reqs {
            let decoded = roundtrip_request(Request::Meta(req.clone()));
            match decoded.payload {
                Request::Meta(got) => assert_eq!(format!("{got:?}"), format!("{req:?}")),
                other => panic!("wrong payload: {other:?}"),
            }
        }
    }

    #[test]
    fn control_requests_round_trip() {
        let reqs = vec![
            Request::RegisterPeers {
                peers: vec![
                    (ServerId(2), "127.0.0.1:4107".to_string()),
                    (ServerId(1_002), "127.0.0.1:4108".to_string()),
                ],
            },
            Request::Reassign {
                interval: KeyInterval::new(100, 199),
            },
            Request::MigrateUniform,
            Request::Shutdown,
        ];
        for req in reqs {
            let decoded = roundtrip_request(req.clone());
            assert_eq!(format!("{:?}", decoded.payload), format!("{req:?}"));
        }
    }

    #[test]
    fn responses_round_trip() {
        let region = Region::new(KeyInterval::new(1, 2), TimeInterval::new(3, 4));
        let mut agg = PartialAgg::default();
        agg.insert(7);
        agg.insert(11);
        let cases = vec![
            Response::Ack,
            Response::AckBatch {
                tuples: 12,
                deduped: true,
            },
            Response::Pong,
            Response::Tuples(vec![Tuple::new(5, 6, &b"x"[..])]),
            Response::Flushed(vec![ChunkId(1), ChunkId(9)]),
            Response::Fold(FoldOutcome {
                agg,
                cells_merged: 3,
                residues: vec![TimeInterval::new(0, 10), TimeInterval::new(20, 30)],
            }),
            Response::Summary(None),
            Response::Meta(MetaResponse::Ack),
            Response::Meta(MetaResponse::Allocated(ChunkId(6))),
            Response::Meta(MetaResponse::Chunks(vec![(ChunkId(2), region)])),
            Response::Meta(MetaResponse::Regions(vec![(ServerId(1), region)])),
            Response::Meta(MetaResponse::Probe(AttrProbe::Unknown)),
            Response::Meta(MetaResponse::Probe(AttrProbe::Absent)),
            Response::Meta(MetaResponse::Extent(Some(SummaryExtent {
                cells: 1,
                bytes: 40,
                levels: 1,
                slice_bits: 2,
                measure_range: None,
            }))),
            Response::Meta(MetaResponse::Extent(None)),
            Response::Meta(MetaResponse::Partition(None)),
            Response::Meta(MetaResponse::Offset(123_456)),
            Response::Query(QueryResult {
                query_id: QueryId(5),
                tuples: vec![Tuple::bare(1, 2)],
                subqueries: 4,
            }),
            Response::Aggregate(AggregateAnswer {
                query_id: QueryId(5),
                kind: AggregateKind::Avg,
                agg,
                cells_merged: 2,
                scanned_tuples: 9,
            }),
            Response::Migrated {
                epoch: 12,
                ranges: 3,
            },
            Response::Meta(MetaResponse::Epoch(7)),
            Response::Meta(MetaResponse::Membership(MembershipView {
                epoch: 4,
                indexing: vec![(ServerId(0), waterwheel_core::NodeId(0))],
                query: vec![(ServerId(1_000), waterwheel_core::NodeId(1))],
            })),
        ];
        for resp in cases {
            let got = roundtrip_response(resp.clone());
            assert_eq!(format!("{got:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn partition_schema_rides_meta_response() {
        let schema = PartitionSchema::uniform(&[ServerId(0), ServerId(1), ServerId(2)]);
        let got = roundtrip_response(Response::Meta(MetaResponse::Partition(Some(
            schema.clone(),
        ))));
        match got {
            Response::Meta(MetaResponse::Partition(Some(s))) => assert_eq!(s, schema),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn errors_preserve_classification() {
        let cases = vec![
            WwError::Io(std::io::Error::other("disk on fire")),
            WwError::corrupt("chunk", "bad magic"),
            WwError::not_found("chunk", 7),
            WwError::InvalidState("sealed".into()),
            WwError::Config("zero fanout".into()),
            WwError::Shutdown("indexing server"),
            WwError::Injected("crash test"),
            WwError::Timeout("late link"),
            WwError::Unreachable("cut link"),
            WwError::Overloaded {
                retry_after: Duration::from_millis(40),
            },
        ];
        for err in cases {
            let frame = encode_response_err(1, &err);
            let body = read_frame(&mut &frame[..]).unwrap().unwrap();
            let Frame::Response { result, .. } = decode_frame(&body).unwrap() else {
                panic!("expected a response frame");
            };
            let got = result.unwrap_err();
            assert_eq!(
                std::mem::discriminant(&got),
                std::mem::discriminant(&err),
                "taxonomy must survive the wire: {err} → {got}"
            );
            assert_eq!(got.is_retryable(), err.is_retryable());
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.put_u32((MAX_FRAME_LEN + 1) as u32);
        frame.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut &frame[..]).unwrap_err();
        assert!(err.to_string().contains("cap"), "unexpected error: {err}");
    }

    #[test]
    fn clean_eof_yields_none_mid_prefix_eof_errors() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        let err = read_frame(&mut &[1u8, 0][..]).unwrap_err();
        assert!(err.to_string().contains("length prefix"));
    }

    #[test]
    fn truncated_bodies_error_gracefully() {
        let frame = encode_request(
            1,
            &env(Request::IngestBatch {
                seq: 1,
                tuples: vec![Tuple::new(1, 2, vec![3u8; 100])],
            }),
        );
        let body = read_frame(&mut &frame[..]).unwrap().unwrap();
        // Every truncation point must decode to an error, never panic.
        for cut in 0..body.len() {
            assert!(
                decode_frame(&body[..cut]).is_err(),
                "truncation at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn huge_announced_counts_do_not_overallocate() {
        // A hand-built Tuples response claiming u32::MAX tuples with no
        // actual tuple bytes: decode must fail on truncation, not reserve
        // gigabytes first.
        let mut body = Vec::new();
        body.push(WIRE_VERSION);
        body.push(KIND_RESPONSE_OK);
        body.put_u64(1);
        body.push(3); // Response::Tuples
        body.put_u32(u32::MAX);
        assert!(decode_frame(&body).is_err());
    }

    #[test]
    fn unknown_tags_are_corrupt_not_panic() {
        // Unknown request tag.
        let mut body = Vec::new();
        body.push(WIRE_VERSION);
        body.push(KIND_REQUEST);
        body.put_u64(1);
        body.put_u32(0);
        body.put_u32(1);
        body.put_u64(2);
        body.put_u64(1_000);
        body.push(250);
        assert!(decode_frame(&body).is_err());
        // Unknown frame kind.
        let mut body = Vec::new();
        body.push(WIRE_VERSION);
        body.push(99);
        body.put_u64(1);
        assert!(decode_frame(&body).is_err());
        // Unknown version.
        let mut body = Vec::new();
        body.push(WIRE_VERSION + 1);
        body.push(KIND_REQUEST);
        body.put_u64(1);
        assert!(decode_frame(&body).is_err());
    }

    #[test]
    fn meta_server_request_round_trips_to_the_meta_address() {
        let mut e = env(Request::Meta(MetaRequest::AllocateChunkId));
        e.dst = META_SERVER;
        let frame = encode_request(3, &e);
        let body = read_frame(&mut &frame[..]).unwrap().unwrap();
        let Frame::Request { env: got, .. } = decode_frame(&body).unwrap() else {
            panic!("expected request");
        };
        assert_eq!(got.dst, META_SERVER);
    }
}
