//! The TCP transport: the same [`Transport`] seam over real sockets.
//!
//! [`TcpTransport`] is the client side — a per-destination-address
//! connection pool where **one connection carries many concurrent
//! in-flight RPCs**, correlated by a transport-level id stamped into each
//! frame (the worker pools of the parallel read path multiplex over a
//! single socket instead of opening one per request). [`TcpRpcServer`] is
//! the listener side — it accepts connections and dispatches decoded
//! requests to the very same [`HandlerRegistry`] the in-proc transport
//! delivers to, so a server process behaves identically however it is
//! reached.
//!
//! Failure mapping keeps the retry layer above untouched:
//!
//! * no route / connect failure / connection lost → [`WwError::Unreachable`]
//! * response not arrived by the envelope deadline → [`WwError::Timeout`]
//!   (the RPC slot is abandoned; a late response is dropped on arrival)
//! * an **error returned by the remote handler** travels back inside the
//!   response frame and is returned verbatim — like in-proc, it is an
//!   answer, not a delivery failure, and bumps no fault counters.
//!
//! Reconnection is lazy with bounded backoff: a send that finds its pooled
//! connection dead dials a fresh one, retrying until the envelope deadline
//! would pass; [`WireStats`] counts first connects and reconnects apart so
//! flapping links are visible in metrics.
//!
//! Predicates cannot cross the wire (they are opaque closures); the
//! transport re-applies the sender's predicate to returned tuples, so
//! subquery answers are exactly what an in-proc run yields.

use crate::envelope::{Envelope, Request, Response};
use crate::transport::{HandlerRegistry, RpcStatsRegistry, Transport};
use crate::wire;
use std::collections::HashMap;
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use waterwheel_core::{Result, ServerId, Tuple, WwError};

/// Wire-level counters shared by a process's TCP endpoints (client pool
/// and listener), surfaced in `SystemMetrics`.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Frame bytes read off sockets (requests on servers, responses on clients).
    pub bytes_in: AtomicU64,
    /// Frame bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// First successful connections to an address.
    pub connects: AtomicU64,
    /// Successful re-connections after a pooled connection died.
    pub reconnects: AtomicU64,
    /// Frames that failed to decode (the connection is dropped).
    pub decode_errors: AtomicU64,
}

/// A point-in-time snapshot of [`WireStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireTotals {
    /// Frame bytes read.
    pub bytes_in: u64,
    /// Frame bytes written.
    pub bytes_out: u64,
    /// First connects.
    pub connects: u64,
    /// Reconnects.
    pub reconnects: u64,
    /// Frame decode errors.
    pub decode_errors: u64,
}

impl WireStats {
    /// Snapshot of every counter.
    pub fn totals(&self) -> WireTotals {
        WireTotals {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// What a waiting sender finds in its RPC slot when woken.
enum SlotValue {
    /// The remote answered: the handler's outcome plus the response frame
    /// length (for byte accounting).
    Remote(Result<Response>, u64),
    /// The connection died before the response arrived.
    ConnectionLost(&'static str),
}

type Slot = Arc<(Mutex<Option<SlotValue>>, Condvar)>;

/// One pooled connection: a shared writer, the in-flight RPC slots keyed
/// by correlation id, and a detached reader thread that fills them.
struct Connection {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Slot>>,
    dead: AtomicBool,
    /// A clone of the underlying socket kept for `shutdown` — shutting
    /// down any clone tears down the socket for all of them, which is how
    /// the pool unblocks its reader thread.
    raw: TcpStream,
}

impl Connection {
    fn open(stream: TcpStream, wire: Arc<WireStats>) -> Result<Arc<Self>> {
        stream.set_nodelay(true).map_err(WwError::Io)?;
        let reader = stream.try_clone().map_err(WwError::Io)?;
        let raw = stream.try_clone().map_err(WwError::Io)?;
        let conn = Arc::new(Self {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            raw,
        });
        let for_reader = Arc::clone(&conn);
        std::thread::spawn(move || for_reader.reader_loop(reader, wire));
        Ok(conn)
    }

    /// Drains response frames into their slots until the socket dies.
    fn reader_loop(&self, mut stream: TcpStream, wire: Arc<WireStats>) {
        let reason = loop {
            match wire::read_frame(&mut stream) {
                Ok(Some(body)) => {
                    wire.bytes_in
                        .fetch_add((body.len() + 4) as u64, Ordering::Relaxed);
                    match wire::decode_frame(&body) {
                        Ok(wire::Frame::Response { corr, result }) => {
                            // A slot may be gone: the sender timed out and
                            // abandoned the RPC. Drop the late response.
                            if let Some(slot) = self.pending.lock().unwrap().remove(&corr) {
                                let len = (body.len() + 4) as u64;
                                *slot.0.lock().unwrap() = Some(SlotValue::Remote(result, len));
                                slot.1.notify_all();
                            }
                        }
                        Ok(wire::Frame::Request { .. }) => {
                            // A peer sending requests down a client
                            // connection is confused; treat as corruption.
                            wire.decode_errors.fetch_add(1, Ordering::Relaxed);
                            break "peer sent a request on a client connection";
                        }
                        Err(_) => {
                            wire.decode_errors.fetch_add(1, Ordering::Relaxed);
                            break "response frame failed to decode";
                        }
                    }
                }
                Ok(None) => break "connection closed by peer",
                Err(_) => break "connection lost",
            }
        };
        self.fail_all(reason);
        let _ = self.raw.shutdown(NetShutdown::Both);
    }

    /// Marks the connection dead and wakes every in-flight sender with a
    /// delivery failure.
    fn fail_all(&self, reason: &'static str) {
        self.dead.store(true, Ordering::Release);
        let drained: Vec<Slot> = self
            .pending
            .lock()
            .unwrap()
            .drain()
            .map(|(_, s)| s)
            .collect();
        for slot in drained {
            *slot.0.lock().unwrap() = Some(SlotValue::ConnectionLost(reason));
            slot.1.notify_all();
        }
    }
}

/// The [`Transport`] implementation over real TCP sockets.
pub struct TcpTransport {
    peers: Mutex<HashMap<ServerId, SocketAddr>>,
    /// Fallback route for addresses without a specific peer entry (the
    /// embedded loopback deployment routes every server to one listener).
    default_route: Mutex<Option<SocketAddr>>,
    pool: Mutex<HashMap<SocketAddr, Arc<Connection>>>,
    /// Addresses ever connected, to tell reconnects from first connects.
    ever_connected: Mutex<std::collections::HashSet<SocketAddr>>,
    stats: RpcStatsRegistry,
    wire: Arc<WireStats>,
    next_corr: AtomicU64,
    connect_backoff: Duration,
}

impl TcpTransport {
    /// An empty transport with its own wire counters.
    pub fn new() -> Self {
        Self::with_wire_stats(Arc::new(WireStats::default()))
    }

    /// An empty transport charging `wire` (shared with a listener so one
    /// snapshot covers a whole process).
    pub fn with_wire_stats(wire: Arc<WireStats>) -> Self {
        Self {
            peers: Mutex::new(HashMap::new()),
            default_route: Mutex::new(None),
            pool: Mutex::new(HashMap::new()),
            ever_connected: Mutex::new(std::collections::HashSet::new()),
            stats: RpcStatsRegistry::default(),
            wire,
            next_corr: AtomicU64::new(1),
            connect_backoff: Duration::from_millis(10),
        }
    }

    /// Routes `dst` to `addr`.
    pub fn add_peer(&self, dst: ServerId, addr: SocketAddr) {
        self.peers.lock().unwrap().insert(dst, addr);
    }

    /// Routes every id in `dsts` to `addr` (one process hosting many
    /// server addresses).
    pub fn add_peers(&self, dsts: impl IntoIterator<Item = ServerId>, addr: SocketAddr) {
        let mut peers = self.peers.lock().unwrap();
        for dst in dsts {
            peers.insert(dst, addr);
        }
    }

    /// Routes every address without a specific peer entry to `addr`.
    pub fn set_default_route(&self, addr: Option<SocketAddr>) {
        *self.default_route.lock().unwrap() = addr;
    }

    /// The wire-level counters this transport charges.
    pub fn wire(&self) -> &Arc<WireStats> {
        &self.wire
    }

    fn route(&self, dst: ServerId) -> Option<SocketAddr> {
        self.peers
            .lock()
            .unwrap()
            .get(&dst)
            .copied()
            .or(*self.default_route.lock().unwrap())
    }

    /// A live pooled connection to `addr`, dialing (with backoff bounded
    /// by `deadline`) if none exists or the pooled one died.
    fn connection(&self, addr: SocketAddr, deadline: Instant) -> Result<Arc<Connection>> {
        let mut attempt = 0u32;
        loop {
            if let Some(conn) = self.pool.lock().unwrap().get(&addr) {
                if !conn.dead.load(Ordering::Acquire) {
                    return Ok(Arc::clone(conn));
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WwError::Unreachable("connect budget exhausted"));
            }
            match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_secs(1))) {
                Ok(stream) => {
                    let fresh = Connection::open(stream, Arc::clone(&self.wire))?;
                    let mut pool = self.pool.lock().unwrap();
                    // Another sender may have raced us to a live connection;
                    // prefer the pooled one and retire ours (its reader
                    // exits on the shutdown-induced EOF).
                    if let Some(existing) = pool.get(&addr) {
                        if !existing.dead.load(Ordering::Acquire) {
                            let existing = Arc::clone(existing);
                            drop(pool);
                            let _ = fresh.raw.shutdown(NetShutdown::Both);
                            return Ok(existing);
                        }
                    }
                    if self.ever_connected.lock().unwrap().insert(addr) {
                        self.wire.connects.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.wire.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    pool.insert(addr, Arc::clone(&fresh));
                    return Ok(fresh);
                }
                Err(_) => {
                    attempt += 1;
                    let backoff = self.connect_backoff * attempt;
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() || backoff >= remaining {
                        return Err(WwError::Unreachable("destination refused connections"));
                    }
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Tear down pooled sockets so detached reader threads exit.
        for conn in self.pool.lock().unwrap().values() {
            let _ = conn.raw.shutdown(NetShutdown::Both);
        }
    }
}

impl Transport for TcpTransport {
    fn send(&self, env: Envelope) -> Result<Response> {
        let link = self.stats.link(env.src, env.dst);
        link.sent.fetch_add(1, Ordering::Relaxed);

        let Some(addr) = self.route(env.dst) else {
            link.unreachable.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::Unreachable("no route to destination"));
        };
        let conn = match self.connection(addr, env.deadline) {
            Ok(c) => c,
            Err(e) => {
                link.unreachable.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };

        // The sender's predicate cannot cross the wire; keep it to
        // re-filter the remote answer below.
        let predicate = match &env.payload {
            Request::InMemorySubquery { sq } => sq.predicate.clone(),
            Request::ChunkSubquery { sq, .. } => sq.predicate.clone(),
            _ => None,
        };

        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot: Slot = Arc::new((Mutex::new(None), Condvar::new()));
        conn.pending.lock().unwrap().insert(corr, Arc::clone(&slot));

        let frame = wire::encode_request(corr, &env);
        link.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.wire
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        {
            let mut w = conn.writer.lock().unwrap();
            if let Err(e) = std::io::Write::write_all(&mut *w, &frame) {
                drop(w);
                conn.pending.lock().unwrap().remove(&corr);
                conn.fail_all("connection lost while sending");
                let _ = conn.raw.shutdown(NetShutdown::Both);
                link.unreachable.fetch_add(1, Ordering::Relaxed);
                return Err(WwError::Unreachable(
                    if e.kind() == std::io::ErrorKind::BrokenPipe {
                        "connection closed by peer"
                    } else {
                        "connection lost while sending"
                    },
                ));
            }
        }

        // Wait for the reader thread to fill the slot, up to the deadline.
        let (lock, cvar) = &*slot;
        let mut value = lock.lock().unwrap();
        loop {
            if let Some(v) = value.take() {
                return match v {
                    SlotValue::Remote(Ok(mut resp), resp_len) => {
                        link.bytes.fetch_add(resp_len, Ordering::Relaxed);
                        if let (Some(p), Response::Tuples(tuples)) = (&predicate, &mut resp) {
                            tuples.retain(|t: &Tuple| p(t));
                        }
                        Ok(resp)
                    }
                    // A remote handler error is an answer, not a delivery
                    // failure: no fault counters, same as in-proc.
                    SlotValue::Remote(Err(e), resp_len) => {
                        link.bytes.fetch_add(resp_len, Ordering::Relaxed);
                        Err(e)
                    }
                    SlotValue::ConnectionLost(reason) => {
                        link.unreachable.fetch_add(1, Ordering::Relaxed);
                        Err(WwError::Unreachable(reason))
                    }
                };
            }
            let remaining = env.deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                drop(value);
                conn.pending.lock().unwrap().remove(&corr);
                link.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(WwError::Timeout("rpc response exceeded the deadline"));
            }
            let (guard, _) = cvar.wait_timeout(value, remaining).unwrap();
            value = guard;
        }
    }

    fn stats(&self) -> &RpcStatsRegistry {
        &self.stats
    }
}

type ShutdownHook = Arc<Mutex<Option<Box<dyn FnOnce() + Send>>>>;

/// Binds a listener with `SO_REUSEADDR` set, so a restarted node process
/// can re-claim the exact address its peers already route to while
/// connections from its previous life linger in `TIME_WAIT`. Falls back
/// to a plain bind where the raw-socket path is unavailable.
fn bind_reuseaddr(addr: &str) -> std::io::Result<TcpListener> {
    use std::net::ToSocketAddrs;
    let mut last_err = None;
    for sa in addr.to_socket_addrs()? {
        match bind_reuseaddr_one(sa) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses to bind")
    }))
}

/// IPv4 listener via raw libc calls: std's `TcpListener::bind` offers no
/// way to set `SO_REUSEADDR` before binding, so the restart path builds
/// the socket by hand. Constants are Linux values; other platforms (and
/// IPv6 addresses) take the plain-bind fallback.
#[cfg(target_os = "linux")]
fn bind_reuseaddr_one(sa: SocketAddr) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;
    let SocketAddr::V4(v4) = sa else {
        return TcpListener::bind(sa);
    };
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    // SAFETY: the fd is freshly created, used only by these calls, and
    // either closed on failure or handed to `TcpListener` on success; the
    // sockaddr is a correctly sized, fully initialized C struct.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        let sin = SockaddrIn {
            family: AF_INET as u16,
            port_be: v4.port().to_be(),
            addr_be: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        let mut rc = setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4);
        if rc == 0 {
            rc = bind(fd, &sin, std::mem::size_of::<SockaddrIn>() as u32);
        }
        if rc == 0 {
            rc = listen(fd, 128);
        }
        if rc != 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_reuseaddr_one(sa: SocketAddr) -> std::io::Result<TcpListener> {
    TcpListener::bind(sa)
}

/// The listener side: accepts connections and serves a [`HandlerRegistry`].
///
/// Each connection gets a reader thread; each decoded request runs on its
/// own worker thread so concurrent RPCs multiplexed over one connection
/// execute concurrently (responses interleave on the shared writer, each
/// carrying its request's correlation id).
pub struct TcpRpcServer {
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpRpcServer {
    /// Binds `addr` (port 0 picks a free port — see [`local_addr`](Self::local_addr))
    /// and starts serving `registry`.
    ///
    /// `shutdown_hook`, when set, intercepts [`Request::Shutdown`]: the
    /// request is acknowledged on the wire and the hook then runs (node
    /// processes use it to exit). Without a hook the request falls through
    /// to the registry like any other.
    pub fn bind(
        addr: &str,
        registry: Arc<HandlerRegistry>,
        wire: Arc<WireStats>,
        shutdown_hook: Option<Box<dyn FnOnce() + Send>>,
    ) -> Result<Self> {
        let listener = bind_reuseaddr(addr).map_err(WwError::Io)?;
        let local_addr = listener.local_addr().map_err(WwError::Io)?;
        let stopping = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let hook: ShutdownHook = Arc::new(Mutex::new(shutdown_hook));

        let stop = Arc::clone(&stopping);
        let conn_list = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if let Ok(clone) = stream.try_clone() {
                    conn_list.lock().unwrap().push(clone);
                }
                let registry = Arc::clone(&registry);
                let wire = Arc::clone(&wire);
                let hook = Arc::clone(&hook);
                std::thread::spawn(move || serve_connection(stream, registry, wire, hook));
            }
        });

        Ok(Self {
            local_addr,
            stopping,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, tears down live connections, and joins the accept
    /// loop. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(NetShutdown::Both);
        }
    }
}

impl Drop for TcpRpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads request frames off one accepted connection and dispatches them.
fn serve_connection(
    stream: TcpStream,
    registry: Arc<HandlerRegistry>,
    wire: Arc<WireStats>,
    hook: ShutdownHook,
) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    loop {
        let body = match wire::read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(_) => return,
        };
        wire.bytes_in
            .fetch_add((body.len() + 4) as u64, Ordering::Relaxed);
        let (corr, env) = match wire::decode_frame(&body) {
            Ok(wire::Frame::Request { corr, env }) => (corr, env),
            Ok(wire::Frame::Response { .. }) => continue,
            Err(_) => {
                wire.decode_errors.fetch_add(1, Ordering::Relaxed);
                let _ = reader.shutdown(NetShutdown::Both);
                return;
            }
        };

        if matches!(env.payload, Request::Shutdown) {
            if let Some(hook) = hook.lock().unwrap().take() {
                // Acknowledge first so the launcher sees a clean answer,
                // then let the hook tear the process down.
                write_response(&writer, &wire, corr, &Ok(Response::Ack));
                hook();
                return;
            }
        }

        let registry = Arc::clone(&registry);
        let wire = Arc::clone(&wire);
        let writer = Arc::clone(&writer);
        std::thread::spawn(move || {
            let result = match registry.get(env.dst) {
                Some(handler) => handler(&env),
                None => Err(WwError::Unreachable("no server bound at destination")),
            };
            write_response(&writer, &wire, corr, &result);
        });
    }
}

fn write_response(
    writer: &Arc<Mutex<TcpStream>>,
    wire: &WireStats,
    corr: u64,
    result: &Result<Response>,
) {
    let frame = wire::encode_response(corr, result);
    wire.bytes_out
        .fetch_add(frame.len() as u64, Ordering::Relaxed);
    let mut w = writer.lock().unwrap();
    let _ = std::io::Write::write_all(&mut *w, &frame);
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwheel_core::{
        ChunkId, KeyInterval, QueryId, SubQuery, SubQueryId, SubQueryTarget, TimeInterval,
    };

    fn env(src: u32, dst: u32, timeout: Duration, payload: Request) -> Envelope {
        Envelope {
            src: ServerId(src),
            dst: ServerId(dst),
            rpc_id: 0,
            deadline: Instant::now() + timeout,
            payload,
        }
    }

    fn rig(registry: Arc<HandlerRegistry>) -> (TcpRpcServer, TcpTransport) {
        let wire = Arc::new(WireStats::default());
        let server = TcpRpcServer::bind("127.0.0.1:0", registry, Arc::clone(&wire), None).unwrap();
        let transport = TcpTransport::with_wire_stats(wire);
        transport.set_default_route(Some(server.local_addr()));
        (server, transport)
    }

    #[test]
    fn ping_round_trips_over_loopback() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let (_server, t) = rig(Arc::clone(&registry));
        let r = t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .unwrap();
        assert!(matches!(r, Response::Pong));
        let totals = t.stats().totals();
        assert_eq!(totals.sent, 1);
        assert_eq!(totals.timed_out + totals.unreachable, 0);
        assert!(totals.bytes > 0);
        let w = t.wire().totals();
        assert_eq!(w.connects, 1);
        assert!(w.bytes_in > 0 && w.bytes_out > 0);
    }

    #[test]
    fn concurrent_rpcs_share_one_connection() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| {
            std::thread::sleep(Duration::from_millis(40));
            Ok(Response::Pong)
        });
        let (_server, t) = rig(Arc::clone(&registry));
        let t = Arc::new(t);
        let started = Instant::now();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.send(env(i, 1, Duration::from_secs(5), Request::Ping)))
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_ok());
        }
        // All eight multiplexed over a single pooled connection, and they
        // ran concurrently (8 × 40 ms sequentially would take 320 ms).
        assert_eq!(t.wire().totals().connects, 1);
        assert!(started.elapsed() < Duration::from_millis(300));
    }

    #[test]
    fn slow_handler_times_out_and_connection_survives() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |env| {
            if matches!(env.payload, Request::Flush) {
                std::thread::sleep(Duration::from_millis(250));
            }
            Ok(Response::Ack)
        });
        let (_server, t) = rig(Arc::clone(&registry));
        let e = t
            .send(env(0, 1, Duration::from_millis(40), Request::Flush))
            .unwrap_err();
        assert!(matches!(e, WwError::Timeout(_)));
        assert_eq!(t.stats().totals().timed_out, 1);
        // The late response is dropped on arrival; the connection keeps
        // serving later RPCs.
        std::thread::sleep(Duration::from_millis(300));
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        assert_eq!(t.wire().totals().connects, 1, "no reconnect needed");
    }

    #[test]
    fn no_route_and_refused_connections_are_unreachable() {
        let t = TcpTransport::new();
        let e = t
            .send(env(0, 1, Duration::from_millis(100), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));

        // A route to a dead port: connect is refused until the budget runs out.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        t.add_peer(ServerId(1), addr);
        let e = t
            .send(env(0, 1, Duration::from_millis(120), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));
        assert_eq!(t.stats().totals().unreachable, 2);
    }

    #[test]
    fn remote_handler_errors_pass_through_without_fault_counters() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Err(WwError::Injected("crash test")));
        let (_server, t) = rig(Arc::clone(&registry));
        let e = t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Injected(_)), "got {e}");
        assert!(!e.is_retryable());
        let totals = t.stats().totals();
        assert_eq!(totals.timed_out, 0);
        assert_eq!(totals.unreachable, 0);
    }

    #[test]
    fn unbound_destination_behind_listener_is_unreachable() {
        let registry = Arc::new(HandlerRegistry::new());
        let (_server, t) = rig(registry);
        let e = t
            .send(env(0, 42, Duration::from_secs(5), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));
    }

    #[test]
    fn sender_predicate_refilters_remote_tuples() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| {
            Ok(Response::Tuples(vec![
                Tuple::bare(1, 10),
                Tuple::bare(2, 10),
                Tuple::bare(3, 10),
                Tuple::bare(4, 10),
            ]))
        });
        let (_server, t) = rig(Arc::clone(&registry));
        let sq = SubQuery {
            id: SubQueryId {
                query: QueryId(1),
                index: 0,
            },
            keys: KeyInterval::full(),
            times: TimeInterval::full(),
            predicate: Some(Arc::new(|t: &Tuple| t.key.is_multiple_of(2))),
            target: SubQueryTarget::Chunk(ChunkId(0)),
        };
        let r = t
            .send(env(
                0,
                1,
                Duration::from_secs(5),
                Request::ChunkSubquery {
                    sq,
                    chunk: ChunkId(0),
                    leaf_filter: None,
                },
            ))
            .unwrap();
        let tuples = r.into_tuples().unwrap();
        assert_eq!(
            tuples.iter().map(|t| t.key).collect::<Vec<_>>(),
            vec![2, 4],
            "the sender-side predicate must re-apply to remote answers"
        );
    }

    #[test]
    fn reconnects_after_the_server_restarts() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let wire = Arc::new(WireStats::default());
        let mut server = TcpRpcServer::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Arc::new(WireStats::default()),
            None,
        )
        .unwrap();
        let addr = server.local_addr();
        let t = TcpTransport::with_wire_stats(Arc::clone(&wire));
        t.add_peer(ServerId(1), addr);
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());

        server.shutdown();
        // The pooled connection is dead; the send fails as Unreachable
        // (either detected on write or when dialing is refused).
        let e = t
            .send(env(0, 1, Duration::from_millis(200), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)), "got {e}");

        // Rebind the same port (retry briefly: the old listener's socket
        // may take a moment to release).
        let mut revived = None;
        for _ in 0..50 {
            match TcpRpcServer::bind(
                &addr.to_string(),
                Arc::clone(&registry),
                Arc::new(WireStats::default()),
                None,
            ) {
                Ok(s) => {
                    revived = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(40)),
            }
        }
        let _revived = revived.expect("could not rebind the listener port");
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        let w = wire.totals();
        assert_eq!(w.connects, 1);
        assert!(w.reconnects >= 1, "the redial must count as a reconnect");
    }

    #[test]
    fn shutdown_hook_intercepts_shutdown_requests() {
        let registry = Arc::new(HandlerRegistry::new());
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        let wire = Arc::new(WireStats::default());
        let server = TcpRpcServer::bind(
            "127.0.0.1:0",
            registry,
            Arc::clone(&wire),
            Some(Box::new(move || flag.store(true, Ordering::Release))),
        )
        .unwrap();
        let t = TcpTransport::with_wire_stats(wire);
        t.set_default_route(Some(server.local_addr()));
        let r = t
            .send(env(0, 1, Duration::from_secs(5), Request::Shutdown))
            .unwrap();
        assert!(matches!(r, Response::Ack));
        assert!(fired.load(Ordering::Acquire));
    }

    #[test]
    fn server_shutdown_refuses_new_connections() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let (mut server, t) = rig(Arc::clone(&registry));
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        let addr = server.local_addr();
        server.shutdown();
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
            "a stopped server must not accept connections"
        );
    }
}
