//! The TCP transport: the same [`Transport`] seam over real sockets,
//! driven by the event-loop [`Reactor`](crate::reactor::Reactor).
//!
//! [`TcpTransport`] is the client side — a per-destination-address
//! connection pool where **one connection carries many concurrent
//! in-flight RPCs**, correlated by a transport-level id stamped into each
//! frame. There is no reader thread per connection: every pooled socket
//! is registered with a shared reactor, whose shard threads assemble
//! response frames incrementally and wake the exact sender waiting on the
//! matching correlation id. [`TcpRpcServer`] is the listener side — the
//! same reactor multiplexes the listening socket and every accepted
//! connection; decoded requests are executed by a small fixed worker pool
//! (ingest > query > metadata priority bands) dispatching the very same
//! [`HandlerRegistry`] the in-proc transport delivers to, so a server
//! process behaves identically however it is reached. Total thread count
//! is O(reactor_threads + workers), independent of connection count.
//!
//! Failure mapping keeps the retry layer above untouched:
//!
//! * no route / connect failure / connection lost → [`WwError::Unreachable`]
//! * response not arrived by the envelope deadline → [`WwError::Timeout`]
//!   (the RPC slot is abandoned; a late response is dropped on arrival)
//! * worker queue full → [`WwError::Overloaded`] with a retry-after hint,
//!   answered directly from the reactor without running the handler (the
//!   admission layer installed on the registry sheds the same way)
//! * an **error returned by the remote handler** travels back inside the
//!   response frame and is returned verbatim — like in-proc, it is an
//!   answer, not a delivery failure, and bumps no fault counters.
//!
//! Reconnection is lazy with bounded backoff: a send that finds its pooled
//! connection dead dials a fresh one, retrying until the envelope deadline
//! would pass; [`WireStats`] counts first connects and reconnects apart so
//! flapping links are visible in metrics. Pool hygiene is handled by the
//! reactor's housekeeping tick: connections idle past
//! [`TcpClientOptions::pool_idle_timeout`] with no in-flight RPCs are
//! reaped, and the pool is capped at
//! [`TcpClientOptions::pool_max_connections`] entries.
//!
//! Predicates cannot cross the wire (they are opaque closures); the
//! transport re-applies the sender's predicate to returned tuples, so
//! subquery answers are exactly what an in-proc run yields.

use crate::envelope::{Envelope, Request, Response};
use crate::reactor::{ConnHandle, ListenerHandle, Reactor, Sink};
use crate::transport::{HandlerRegistry, RpcStatsRegistry, Transport};
use crate::wire;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};
use waterwheel_core::{Result, ServerId, Tuple, WwError};

/// Wire-level counters shared by a process's TCP endpoints (client pool
/// and listener), surfaced in `SystemMetrics`.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Frame bytes read off sockets (requests on servers, responses on clients).
    pub bytes_in: AtomicU64,
    /// Frame bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// First successful connections to an address.
    pub connects: AtomicU64,
    /// Successful re-connections after a pooled connection died.
    pub reconnects: AtomicU64,
    /// Frames that failed to decode (the connection is dropped).
    pub decode_errors: AtomicU64,
    /// Reactor poll returns that carried at least one readiness event.
    pub reactor_wakeups: AtomicU64,
}

/// A point-in-time snapshot of [`WireStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireTotals {
    /// Frame bytes read.
    pub bytes_in: u64,
    /// Frame bytes written.
    pub bytes_out: u64,
    /// First connects.
    pub connects: u64,
    /// Reconnects.
    pub reconnects: u64,
    /// Frame decode errors.
    pub decode_errors: u64,
    /// Event-bearing reactor wakeups.
    pub reactor_wakeups: u64,
}

impl WireStats {
    /// Snapshot of every counter.
    pub fn totals(&self) -> WireTotals {
        WireTotals {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
        }
    }
}

/// What a waiting sender finds in its RPC slot when woken.
enum SlotValue {
    /// The remote answered: the handler's outcome plus the response frame
    /// length (for byte accounting).
    Remote(Result<Response>, u64),
    /// The connection died before the response arrived.
    ConnectionLost(&'static str),
}

type Slot = Arc<(Mutex<Option<SlotValue>>, Condvar)>;

/// The reactor-facing half of one pooled client connection: routes each
/// decoded response frame into the in-flight slot matching its
/// correlation id.
struct ClientSink {
    pending: Mutex<HashMap<u64, Slot>>,
    dead: AtomicBool,
    wire: Arc<WireStats>,
}

impl ClientSink {
    /// Marks the connection dead and wakes every in-flight sender with a
    /// delivery failure.
    fn fail_all(&self, reason: &'static str) {
        self.dead.store(true, Ordering::Release);
        let drained: Vec<Slot> = self
            .pending
            .lock()
            .unwrap()
            .drain()
            .map(|(_, s)| s)
            .collect();
        for slot in drained {
            *slot.0.lock().unwrap() = Some(SlotValue::ConnectionLost(reason));
            slot.1.notify_all();
        }
    }
}

impl Sink for ClientSink {
    fn on_frame(&self, body: Vec<u8>) -> std::result::Result<(), &'static str> {
        let len = (body.len() + 4) as u64;
        self.wire.bytes_in.fetch_add(len, Ordering::Relaxed);
        match wire::decode_frame(&body) {
            Ok(wire::Frame::Response { corr, result }) => {
                // A slot may be gone: the sender timed out and abandoned
                // the RPC. Drop the late response.
                if let Some(slot) = self.pending.lock().unwrap().remove(&corr) {
                    *slot.0.lock().unwrap() = Some(SlotValue::Remote(result, len));
                    slot.1.notify_all();
                }
                Ok(())
            }
            Ok(wire::Frame::Request { .. }) => {
                // A peer sending requests down a client connection is
                // confused; treat as corruption.
                self.wire.decode_errors.fetch_add(1, Ordering::Relaxed);
                Err("peer sent a request on a client connection")
            }
            Err(_) => {
                self.wire.decode_errors.fetch_add(1, Ordering::Relaxed);
                Err("response frame failed to decode")
            }
        }
    }

    fn on_closed(&self, reason: &'static str) {
        self.fail_all(reason);
    }
}

/// One pooled connection: the reactor write handle, its sink (slots), and
/// the last checkout time for idle reaping.
struct PooledConn {
    handle: ConnHandle,
    sink: Arc<ClientSink>,
    last_used: Mutex<Instant>,
}

impl PooledConn {
    fn live(&self) -> bool {
        !self.handle.is_closed() && !self.sink.dead.load(Ordering::Acquire)
    }
}

/// The connection pool proper, shared with the reactor's housekeeping
/// tick (which reaps it) via a `Weak`.
struct PoolState {
    conns: Mutex<HashMap<SocketAddr, Arc<PooledConn>>>,
    idle_timeout: Duration,
    max_connections: usize,
}

impl PoolState {
    /// Drops dead entries and closes connections idle past the timeout
    /// with no in-flight RPCs. Runs on the reactor tick (~4 Hz).
    fn reap(&self) {
        let mut conns = self.conns.lock().unwrap();
        conns.retain(|_, c| {
            if !c.live() {
                return false;
            }
            if self.idle_timeout.is_zero() {
                return true; // reaping disabled
            }
            let idle = c.last_used.lock().unwrap().elapsed() >= self.idle_timeout;
            if idle && c.sink.pending.lock().unwrap().is_empty() {
                c.handle.close();
                false
            } else {
                true
            }
        });
    }

    /// Makes room for one more entry when at the cap: evicts the
    /// least-recently-used dead or in-flight-free connection. With every
    /// entry busy the cap is soft — evicting a busy connection would fail
    /// its in-flight RPCs for nothing.
    fn make_room(&self, conns: &mut HashMap<SocketAddr, Arc<PooledConn>>) {
        while conns.len() >= self.max_connections {
            let victim = conns
                .iter()
                .filter(|(_, c)| !c.live() || c.sink.pending.lock().unwrap().is_empty())
                .min_by_key(|(_, c)| *c.last_used.lock().unwrap())
                .map(|(addr, _)| *addr);
            match victim {
                Some(addr) => {
                    if let Some(c) = conns.remove(&addr) {
                        c.handle.close();
                    }
                }
                None => break,
            }
        }
    }
}

/// Construction knobs for [`TcpTransport`] (see the `net_*` fields of
/// `SystemConfig` for the system-level plumbing).
#[derive(Clone, Copy, Debug)]
pub struct TcpClientOptions {
    /// Reactor shard threads multiplexing the pooled sockets.
    pub reactor_threads: usize,
    /// Close pooled connections idle (no in-flight RPCs) this long; zero
    /// disables reaping.
    pub pool_idle_timeout: Duration,
    /// Soft cap on pooled connections (LRU idle entries are evicted).
    pub pool_max_connections: usize,
}

impl Default for TcpClientOptions {
    fn default() -> Self {
        Self {
            reactor_threads: 1,
            pool_idle_timeout: Duration::from_secs(60),
            pool_max_connections: 64,
        }
    }
}

/// The [`Transport`] implementation over real TCP sockets.
pub struct TcpTransport {
    peers: Mutex<HashMap<ServerId, SocketAddr>>,
    /// Fallback route for addresses without a specific peer entry (the
    /// embedded loopback deployment routes every server to one listener).
    default_route: Mutex<Option<SocketAddr>>,
    pool: Arc<PoolState>,
    /// Addresses ever connected, to tell reconnects from first connects.
    ever_connected: Mutex<std::collections::HashSet<SocketAddr>>,
    stats: RpcStatsRegistry,
    wire: Arc<WireStats>,
    next_corr: AtomicU64,
    connect_backoff: Duration,
    reactor: Arc<Reactor>,
}

impl TcpTransport {
    /// An empty transport with its own wire counters.
    pub fn new() -> Self {
        Self::with_wire_stats(Arc::new(WireStats::default()))
    }

    /// An empty transport charging `wire` (shared with a listener so one
    /// snapshot covers a whole process), with default options.
    pub fn with_wire_stats(wire: Arc<WireStats>) -> Self {
        Self::with_options(wire, TcpClientOptions::default())
    }

    /// An empty transport with explicit reactor/pool options.
    pub fn with_options(wire: Arc<WireStats>, opts: TcpClientOptions) -> Self {
        let reactor = Reactor::new(opts.reactor_threads, Arc::clone(&wire))
            .expect("create reactor event loop");
        let pool = Arc::new(PoolState {
            conns: Mutex::new(HashMap::new()),
            idle_timeout: opts.pool_idle_timeout,
            max_connections: opts.pool_max_connections.max(1),
        });
        let for_tick: Weak<PoolState> = Arc::downgrade(&pool);
        reactor.add_tick(move || {
            if let Some(p) = for_tick.upgrade() {
                p.reap();
            }
        });
        Self {
            peers: Mutex::new(HashMap::new()),
            default_route: Mutex::new(None),
            pool,
            ever_connected: Mutex::new(std::collections::HashSet::new()),
            stats: RpcStatsRegistry::default(),
            wire,
            next_corr: AtomicU64::new(1),
            connect_backoff: Duration::from_millis(10),
            reactor,
        }
    }

    /// Routes `dst` to `addr`.
    pub fn add_peer(&self, dst: ServerId, addr: SocketAddr) {
        self.peers.lock().unwrap().insert(dst, addr);
    }

    /// Routes every id in `dsts` to `addr` (one process hosting many
    /// server addresses).
    pub fn add_peers(&self, dsts: impl IntoIterator<Item = ServerId>, addr: SocketAddr) {
        let mut peers = self.peers.lock().unwrap();
        for dst in dsts {
            peers.insert(dst, addr);
        }
    }

    /// Routes every address without a specific peer entry to `addr`.
    pub fn set_default_route(&self, addr: Option<SocketAddr>) {
        *self.default_route.lock().unwrap() = addr;
    }

    /// The wire-level counters this transport charges.
    pub fn wire(&self) -> &Arc<WireStats> {
        &self.wire
    }

    /// Number of currently pooled connections (dead entries included
    /// until the next reap).
    pub fn pooled_connections(&self) -> usize {
        self.pool.conns.lock().unwrap().len()
    }

    fn route(&self, dst: ServerId) -> Option<SocketAddr> {
        self.peers
            .lock()
            .unwrap()
            .get(&dst)
            .copied()
            .or(*self.default_route.lock().unwrap())
    }

    /// Dials, configures, and registers one fresh connection.
    fn open_conn(&self, stream: TcpStream) -> Result<Arc<PooledConn>> {
        stream.set_nodelay(true).map_err(WwError::Io)?;
        let handle = self.reactor.attach(stream).map_err(WwError::Io)?;
        let sink = Arc::new(ClientSink {
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            wire: Arc::clone(&self.wire),
        });
        self.reactor
            .activate(&handle, Arc::clone(&sink) as Arc<dyn Sink>);
        Ok(Arc::new(PooledConn {
            handle,
            sink,
            last_used: Mutex::new(Instant::now()),
        }))
    }

    /// A live pooled connection to `addr`, dialing (with backoff bounded
    /// by `deadline`) if none exists or the pooled one died.
    fn connection(&self, addr: SocketAddr, deadline: Instant) -> Result<Arc<PooledConn>> {
        let mut attempt = 0u32;
        loop {
            if let Some(conn) = self.pool.conns.lock().unwrap().get(&addr) {
                if conn.live() {
                    *conn.last_used.lock().unwrap() = Instant::now();
                    return Ok(Arc::clone(conn));
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WwError::Unreachable("connect budget exhausted"));
            }
            match TcpStream::connect_timeout(&addr, remaining.min(Duration::from_secs(1))) {
                Ok(stream) => {
                    let fresh = self.open_conn(stream)?;
                    let mut conns = self.pool.conns.lock().unwrap();
                    // Another sender may have raced us to a live connection;
                    // prefer the pooled one and retire ours.
                    if let Some(existing) = conns.get(&addr) {
                        if existing.live() {
                            let existing = Arc::clone(existing);
                            drop(conns);
                            fresh.handle.close();
                            return Ok(existing);
                        }
                    }
                    if self.ever_connected.lock().unwrap().insert(addr) {
                        self.wire.connects.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.wire.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    self.pool.make_room(&mut conns);
                    conns.insert(addr, Arc::clone(&fresh));
                    return Ok(fresh);
                }
                Err(_) => {
                    attempt += 1;
                    let backoff = self.connect_backoff * attempt;
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() || backoff >= remaining {
                        return Err(WwError::Unreachable("destination refused connections"));
                    }
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Tear down pooled sockets so the reactor releases their entries
        // (and any stragglers blocked on slots are woken).
        for conn in self.pool.conns.lock().unwrap().values() {
            conn.handle.close();
        }
    }
}

impl Transport for TcpTransport {
    fn send(&self, env: Envelope) -> Result<Response> {
        let link = self.stats.link(env.src, env.dst);
        link.sent.fetch_add(1, Ordering::Relaxed);

        let Some(addr) = self.route(env.dst) else {
            link.unreachable.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::Unreachable("no route to destination"));
        };
        let conn = match self.connection(addr, env.deadline) {
            Ok(c) => c,
            Err(e) => {
                link.unreachable.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };

        // The sender's predicate cannot cross the wire; keep it to
        // re-filter the remote answer below.
        let predicate = match &env.payload {
            Request::InMemorySubquery { sq } => sq.predicate.clone(),
            Request::ChunkSubquery { sq, .. } => sq.predicate.clone(),
            _ => None,
        };

        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot: Slot = Arc::new((Mutex::new(None), Condvar::new()));
        conn.sink
            .pending
            .lock()
            .unwrap()
            .insert(corr, Arc::clone(&slot));

        let frame = wire::encode_request(corr, &env);
        link.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.wire
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if let Err(e) = conn.handle.send(&frame) {
            conn.sink.pending.lock().unwrap().remove(&corr);
            conn.sink.fail_all("connection lost while sending");
            conn.handle.close();
            link.unreachable.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::Unreachable(
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    "connection closed by peer"
                } else {
                    "connection lost while sending"
                },
            ));
        }

        // Wait for the reactor to fill the slot, up to the deadline.
        let (lock, cvar) = &*slot;
        let mut value = lock.lock().unwrap();
        loop {
            if let Some(v) = value.take() {
                return match v {
                    SlotValue::Remote(Ok(mut resp), resp_len) => {
                        link.bytes.fetch_add(resp_len, Ordering::Relaxed);
                        if let (Some(p), Response::Tuples(tuples)) = (&predicate, &mut resp) {
                            tuples.retain(|t: &Tuple| p(t));
                        }
                        Ok(resp)
                    }
                    // A remote handler error is an answer, not a delivery
                    // failure: no fault counters, same as in-proc.
                    SlotValue::Remote(Err(e), resp_len) => {
                        link.bytes.fetch_add(resp_len, Ordering::Relaxed);
                        Err(e)
                    }
                    SlotValue::ConnectionLost(reason) => {
                        link.unreachable.fetch_add(1, Ordering::Relaxed);
                        Err(WwError::Unreachable(reason))
                    }
                };
            }
            let remaining = env.deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                drop(value);
                conn.sink.pending.lock().unwrap().remove(&corr);
                link.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(WwError::Timeout("rpc response exceeded the deadline"));
            }
            let (guard, _) = cvar.wait_timeout(value, remaining).unwrap();
            value = guard;
        }
    }

    fn stats(&self) -> &RpcStatsRegistry {
        &self.stats
    }
}

type ShutdownHook = Arc<Mutex<Option<Box<dyn FnOnce() + Send>>>>;

/// Binds a listener with `SO_REUSEADDR` set, so a restarted node process
/// can re-claim the exact address its peers already route to while
/// connections from its previous life linger in `TIME_WAIT`. Falls back
/// to a plain bind where the raw-socket path is unavailable.
fn bind_reuseaddr(addr: &str) -> std::io::Result<TcpListener> {
    use std::net::ToSocketAddrs;
    let mut last_err = None;
    for sa in addr.to_socket_addrs()? {
        match bind_reuseaddr_one(sa) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses to bind")
    }))
}

/// IPv4 listener via raw libc calls: std's `TcpListener::bind` offers no
/// way to set `SO_REUSEADDR` before binding, so the restart path builds
/// the socket by hand. Constants are Linux values; other platforms (and
/// IPv6 addresses) take the plain-bind fallback.
#[cfg(target_os = "linux")]
fn bind_reuseaddr_one(sa: SocketAddr) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;
    let SocketAddr::V4(v4) = sa else {
        return TcpListener::bind(sa);
    };
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    // SAFETY: the fd is freshly created, used only by these calls, and
    // either closed on failure or handed to `TcpListener` on success; the
    // sockaddr is a correctly sized, fully initialized C struct.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        let sin = SockaddrIn {
            family: AF_INET as u16,
            port_be: v4.port().to_be(),
            addr_be: u32::from(*v4.ip()).to_be(),
            zero: [0; 8],
        };
        let mut rc = setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4);
        if rc == 0 {
            rc = bind(fd, &sin, std::mem::size_of::<SockaddrIn>() as u32);
        }
        if rc == 0 {
            rc = listen(fd, 128);
        }
        if rc != 0 {
            let e = std::io::Error::last_os_error();
            close(fd);
            return Err(e);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_reuseaddr_one(sa: SocketAddr) -> std::io::Result<TcpListener> {
    TcpListener::bind(sa)
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// Which worker band a request is queued on: ingest beats query beats
/// metadata. Control traffic (ping, shutdown) rides the top band so
/// liveness probes answer even under load.
fn priority_band(req: &Request) -> usize {
    match req {
        Request::Ingest { .. }
        | Request::IngestBatch { .. }
        | Request::Flush
        | Request::Ping
        | Request::Shutdown
        | Request::RegisterPeers { .. }
        | Request::Reassign { .. }
        | Request::MigrateUniform => 0,
        Request::InMemorySubquery { .. }
        | Request::AggregateInMemory { .. }
        | Request::ChunkSubquery { .. }
        | Request::ReadSummary { .. }
        | Request::ClientQuery { .. }
        | Request::ClientAggregate { .. } => 1,
        Request::Meta(_) => 2,
    }
}

type Job = Box<dyn FnOnce() + Send>;

struct Bands {
    queues: [VecDeque<Job>; 3],
    depth: usize,
}

/// Shared state of the server's worker pool: three priority queues under
/// one lock, a depth cap, and a stop flag.
struct WorkerShared {
    bands: Mutex<Bands>,
    cv: Condvar,
    stopping: AtomicBool,
    cap: usize,
}

impl WorkerShared {
    /// Enqueues a job on `band`; fails (returning the job) when the
    /// total queued depth is at the cap — the caller sheds the request.
    fn push(&self, band: usize, job: Job) -> std::result::Result<(), Job> {
        let mut bands = self.bands.lock().unwrap();
        if bands.depth >= self.cap || self.stopping.load(Ordering::Acquire) {
            return Err(job);
        }
        bands.queues[band].push_back(job);
        bands.depth += 1;
        drop(bands);
        self.cv.notify_one();
        Ok(())
    }

    /// Pops the highest-priority queued job, blocking until one arrives
    /// or the pool stops.
    fn pop(&self) -> Option<Job> {
        let mut bands = self.bands.lock().unwrap();
        loop {
            if self.stopping.load(Ordering::Acquire) {
                return None;
            }
            for q in bands.queues.iter_mut() {
                if let Some(job) = q.pop_front() {
                    bands.depth -= 1;
                    return Some(job);
                }
            }
            bands = self.cv.wait(bands).unwrap();
        }
    }
}

struct WorkerPool {
    shared: Arc<WorkerShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    fn new(workers: usize, cap: usize) -> Self {
        let shared = Arc::new(WorkerShared {
            bands: Mutex::new(Bands {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                depth: 0,
            }),
            cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            cap: cap.max(1),
        });
        let mut threads = Vec::with_capacity(workers);
        for i in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ww-server-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.pop() {
                            job();
                        }
                    })
                    .expect("spawn server worker"),
            );
        }
        Self {
            shared,
            threads: Mutex::new(threads),
        }
    }

    fn shutdown(&self) {
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.cv.notify_all();
        let threads = std::mem::take(&mut *self.threads.lock().unwrap());
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Construction knobs for [`TcpRpcServer`].
#[derive(Clone, Copy, Debug)]
pub struct TcpServerOptions {
    /// Reactor shard threads multiplexing the listener and every
    /// accepted connection.
    pub reactor_threads: usize,
    /// Worker threads executing decoded requests.
    pub workers: usize,
    /// Bound on queued-but-not-running requests across all bands;
    /// overflow is shed with [`WwError::Overloaded`].
    pub queue_capacity: usize,
    /// The retry-after hint stamped on queue-overflow sheds.
    pub overflow_retry_after: Duration,
}

impl Default for TcpServerOptions {
    fn default() -> Self {
        Self {
            reactor_threads: 1,
            workers: 8,
            queue_capacity: 8192,
            overflow_retry_after: Duration::from_millis(50),
        }
    }
}

/// The reactor-facing half of one accepted server connection: decodes
/// request frames, queues them on the worker pool by priority, and sheds
/// overflow with a typed `Overloaded` answer.
struct ServerConn {
    handle: ConnHandle,
    registry: Arc<HandlerRegistry>,
    wire: Arc<WireStats>,
    workers: Arc<WorkerShared>,
    hook: ShutdownHook,
    overflow_retry_after: Duration,
}

fn respond(handle: &ConnHandle, wire: &WireStats, corr: u64, result: &Result<Response>) {
    let frame = wire::encode_response(corr, result);
    wire.bytes_out
        .fetch_add(frame.len() as u64, Ordering::Relaxed);
    let _ = handle.send(&frame);
}

impl Sink for ServerConn {
    fn on_frame(&self, body: Vec<u8>) -> std::result::Result<(), &'static str> {
        self.wire
            .bytes_in
            .fetch_add((body.len() + 4) as u64, Ordering::Relaxed);
        let (corr, env) = match wire::decode_frame(&body) {
            Ok(wire::Frame::Request { corr, env }) => (corr, env),
            Ok(wire::Frame::Response { .. }) => return Ok(()),
            Err(_) => {
                self.wire.decode_errors.fetch_add(1, Ordering::Relaxed);
                return Err("request frame failed to decode");
            }
        };

        if matches!(env.payload, Request::Shutdown) {
            if let Some(hook) = self.hook.lock().unwrap().take() {
                // Acknowledge first so the launcher sees a clean answer,
                // then let the hook tear the process down.
                respond(&self.handle, &self.wire, corr, &Ok(Response::Ack));
                hook();
                return Ok(());
            }
        }

        let band = priority_band(&env.payload);
        let handle = self.handle.clone();
        let registry = Arc::clone(&self.registry);
        let wire_stats = Arc::clone(&self.wire);
        let job: Job = Box::new(move || {
            let result = registry.dispatch(&env);
            respond(&handle, &wire_stats, corr, &result);
        });
        if self.workers.push(band, job).is_err() {
            // Worker queue saturated: shed with a typed answer instead of
            // queueing unboundedly or dropping the frame on the floor.
            respond(
                &self.handle,
                &self.wire,
                corr,
                &Err(WwError::Overloaded {
                    retry_after: self.overflow_retry_after,
                }),
            );
        }
        Ok(())
    }

    fn on_closed(&self, _reason: &'static str) {}
}

/// The listener side: accepts connections and serves a [`HandlerRegistry`].
///
/// A shared reactor multiplexes the listening socket and every accepted
/// connection; decoded requests run on a fixed worker pool with
/// ingest > query > metadata priority. Thread count is
/// O(reactor_threads + workers) regardless of how many clients connect.
pub struct TcpRpcServer {
    local_addr: SocketAddr,
    stopped: AtomicBool,
    listener: Mutex<Option<ListenerHandle>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    workers: WorkerPool,
    /// Keeps the shard threads alive; dropped last.
    _reactor: Arc<Reactor>,
}

impl TcpRpcServer {
    /// Binds `addr` (port 0 picks a free port — see [`local_addr`](Self::local_addr))
    /// and starts serving `registry` with default options.
    ///
    /// `shutdown_hook`, when set, intercepts [`Request::Shutdown`]: the
    /// request is acknowledged on the wire and the hook then runs (node
    /// processes use it to exit). Without a hook the request falls through
    /// to the registry like any other.
    pub fn bind(
        addr: &str,
        registry: Arc<HandlerRegistry>,
        wire: Arc<WireStats>,
        shutdown_hook: Option<Box<dyn FnOnce() + Send>>,
    ) -> Result<Self> {
        Self::bind_with(
            addr,
            registry,
            wire,
            shutdown_hook,
            TcpServerOptions::default(),
        )
    }

    /// [`bind`](Self::bind) with explicit reactor/worker options.
    pub fn bind_with(
        addr: &str,
        registry: Arc<HandlerRegistry>,
        wire: Arc<WireStats>,
        shutdown_hook: Option<Box<dyn FnOnce() + Send>>,
        opts: TcpServerOptions,
    ) -> Result<Self> {
        let listener = bind_reuseaddr(addr).map_err(WwError::Io)?;
        let local_addr = listener.local_addr().map_err(WwError::Io)?;
        let reactor = Reactor::new(opts.reactor_threads, Arc::clone(&wire)).map_err(WwError::Io)?;
        let workers = WorkerPool::new(opts.workers, opts.queue_capacity);
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::new(Mutex::new(Vec::new()));
        let hook: ShutdownHook = Arc::new(Mutex::new(shutdown_hook));

        // The accept callback lives inside the reactor; holding a strong
        // Arc<Reactor> there would be a retain cycle, so it upgrades a
        // Weak per accepted socket.
        let for_accept = Arc::downgrade(&reactor);
        let conn_list = Arc::clone(&conns);
        let worker_shared = Arc::clone(&workers.shared);
        let overflow_retry_after = opts.overflow_retry_after;
        let lh = reactor
            .listen(listener, move |stream| {
                let Some(reactor) = for_accept.upgrade() else {
                    return;
                };
                if stream.set_nodelay(true).is_err() {
                    return;
                }
                let Ok(handle) = reactor.attach(stream) else {
                    return;
                };
                let sink = Arc::new(ServerConn {
                    handle: handle.clone(),
                    registry: Arc::clone(&registry),
                    wire: Arc::clone(&wire),
                    workers: Arc::clone(&worker_shared),
                    hook: Arc::clone(&hook),
                    overflow_retry_after,
                });
                reactor.activate(&handle, sink as Arc<dyn Sink>);
                let mut list = conn_list.lock().unwrap();
                // Bound the handle list: drop entries the reactor already
                // tore down before appending.
                if list.len() % 128 == 127 {
                    list.retain(|h| !h.is_closed());
                }
                list.push(handle);
            })
            .map_err(WwError::Io)?;

        Ok(Self {
            local_addr,
            stopped: AtomicBool::new(false),
            listener: Mutex::new(Some(lh)),
            conns,
            workers,
            _reactor: reactor,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting (synchronously: the listening socket is closed
    /// before this returns), tears down live connections, and joins the
    /// worker pool. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(lh) = self.listener.lock().unwrap().take() {
            lh.close();
        }
        for conn in self.conns.lock().unwrap().drain(..) {
            conn.close();
        }
        self.workers.shutdown();
    }
}

impl Drop for TcpRpcServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwheel_core::{
        ChunkId, KeyInterval, QueryId, SubQuery, SubQueryId, SubQueryTarget, TimeInterval,
    };

    fn env(src: u32, dst: u32, timeout: Duration, payload: Request) -> Envelope {
        Envelope {
            src: ServerId(src),
            dst: ServerId(dst),
            rpc_id: 0,
            deadline: Instant::now() + timeout,
            payload,
        }
    }

    fn rig(registry: Arc<HandlerRegistry>) -> (TcpRpcServer, TcpTransport) {
        let wire = Arc::new(WireStats::default());
        let server = TcpRpcServer::bind("127.0.0.1:0", registry, Arc::clone(&wire), None).unwrap();
        let transport = TcpTransport::with_wire_stats(wire);
        transport.set_default_route(Some(server.local_addr()));
        (server, transport)
    }

    #[test]
    fn ping_round_trips_over_loopback() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let (_server, t) = rig(Arc::clone(&registry));
        let r = t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .unwrap();
        assert!(matches!(r, Response::Pong));
        let totals = t.stats().totals();
        assert_eq!(totals.sent, 1);
        assert_eq!(totals.timed_out + totals.unreachable, 0);
        assert!(totals.bytes > 0);
        let w = t.wire().totals();
        assert_eq!(w.connects, 1);
        assert!(w.bytes_in > 0 && w.bytes_out > 0);
        assert!(w.reactor_wakeups > 0, "the reactor moved these frames");
    }

    #[test]
    fn concurrent_rpcs_share_one_connection() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| {
            std::thread::sleep(Duration::from_millis(40));
            Ok(Response::Pong)
        });
        let (_server, t) = rig(Arc::clone(&registry));
        let t = Arc::new(t);
        let started = Instant::now();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.send(env(i, 1, Duration::from_secs(5), Request::Ping)))
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_ok());
        }
        // All eight multiplexed over a single pooled connection, and they
        // ran concurrently (8 × 40 ms sequentially would take 320 ms).
        assert_eq!(t.wire().totals().connects, 1);
        assert!(started.elapsed() < Duration::from_millis(300));
    }

    #[test]
    fn slow_handler_times_out_and_connection_survives() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |env| {
            if matches!(env.payload, Request::Flush) {
                std::thread::sleep(Duration::from_millis(250));
            }
            Ok(Response::Ack)
        });
        let (_server, t) = rig(Arc::clone(&registry));
        let e = t
            .send(env(0, 1, Duration::from_millis(40), Request::Flush))
            .unwrap_err();
        assert!(matches!(e, WwError::Timeout(_)));
        assert_eq!(t.stats().totals().timed_out, 1);
        // The late response is dropped on arrival; the connection keeps
        // serving later RPCs.
        std::thread::sleep(Duration::from_millis(300));
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        assert_eq!(t.wire().totals().connects, 1, "no reconnect needed");
    }

    #[test]
    fn no_route_and_refused_connections_are_unreachable() {
        let t = TcpTransport::new();
        let e = t
            .send(env(0, 1, Duration::from_millis(100), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));

        // A route to a dead port: connect is refused until the budget runs out.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        t.add_peer(ServerId(1), addr);
        let e = t
            .send(env(0, 1, Duration::from_millis(120), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));
        assert_eq!(t.stats().totals().unreachable, 2);
    }

    #[test]
    fn remote_handler_errors_pass_through_without_fault_counters() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Err(WwError::Injected("crash test")));
        let (_server, t) = rig(Arc::clone(&registry));
        let e = t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Injected(_)), "got {e}");
        assert!(!e.is_retryable());
        let totals = t.stats().totals();
        assert_eq!(totals.timed_out, 0);
        assert_eq!(totals.unreachable, 0);
    }

    #[test]
    fn unbound_destination_behind_listener_is_unreachable() {
        let registry = Arc::new(HandlerRegistry::new());
        let (_server, t) = rig(registry);
        let e = t
            .send(env(0, 42, Duration::from_secs(5), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));
    }

    #[test]
    fn sender_predicate_refilters_remote_tuples() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| {
            Ok(Response::Tuples(vec![
                Tuple::bare(1, 10),
                Tuple::bare(2, 10),
                Tuple::bare(3, 10),
                Tuple::bare(4, 10),
            ]))
        });
        let (_server, t) = rig(Arc::clone(&registry));
        let sq = SubQuery {
            id: SubQueryId {
                query: QueryId(1),
                index: 0,
            },
            keys: KeyInterval::full(),
            times: TimeInterval::full(),
            predicate: Some(Arc::new(|t: &Tuple| t.key.is_multiple_of(2))),
            measure_range: None,
            target: SubQueryTarget::Chunk(ChunkId(0)),
        };
        let r = t
            .send(env(
                0,
                1,
                Duration::from_secs(5),
                Request::ChunkSubquery {
                    sq,
                    chunk: ChunkId(0),
                    leaf_filter: None,
                },
            ))
            .unwrap();
        let tuples = r.into_tuples().unwrap();
        assert_eq!(
            tuples.iter().map(|t| t.key).collect::<Vec<_>>(),
            vec![2, 4],
            "the sender-side predicate must re-apply to remote answers"
        );
    }

    #[test]
    fn reconnects_after_the_server_restarts() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let wire = Arc::new(WireStats::default());
        let mut server = TcpRpcServer::bind(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Arc::new(WireStats::default()),
            None,
        )
        .unwrap();
        let addr = server.local_addr();
        let t = TcpTransport::with_wire_stats(Arc::clone(&wire));
        t.add_peer(ServerId(1), addr);
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());

        server.shutdown();
        // The pooled connection is dead; the send fails as Unreachable
        // (either detected on write or when dialing is refused).
        let e = t
            .send(env(0, 1, Duration::from_millis(200), Request::Ping))
            .unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)), "got {e}");

        // Rebind the same port (retry briefly: the old listener's socket
        // may take a moment to release).
        let mut revived = None;
        for _ in 0..50 {
            match TcpRpcServer::bind(
                &addr.to_string(),
                Arc::clone(&registry),
                Arc::new(WireStats::default()),
                None,
            ) {
                Ok(s) => {
                    revived = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(40)),
            }
        }
        let _revived = revived.expect("could not rebind the listener port");
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        let w = wire.totals();
        assert_eq!(w.connects, 1);
        assert!(w.reconnects >= 1, "the redial must count as a reconnect");
    }

    #[test]
    fn shutdown_hook_intercepts_shutdown_requests() {
        let registry = Arc::new(HandlerRegistry::new());
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        let wire = Arc::new(WireStats::default());
        let server = TcpRpcServer::bind(
            "127.0.0.1:0",
            registry,
            Arc::clone(&wire),
            Some(Box::new(move || flag.store(true, Ordering::Release))),
        )
        .unwrap();
        let t = TcpTransport::with_wire_stats(wire);
        t.set_default_route(Some(server.local_addr()));
        let r = t
            .send(env(0, 1, Duration::from_secs(5), Request::Shutdown))
            .unwrap();
        assert!(matches!(r, Response::Ack));
        assert!(fired.load(Ordering::Acquire));
    }

    #[test]
    fn server_shutdown_refuses_new_connections() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let (mut server, t) = rig(Arc::clone(&registry));
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        let addr = server.local_addr();
        server.shutdown();
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
            "a stopped server must not accept connections"
        );
    }

    #[test]
    fn idle_pooled_connections_are_reaped() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let wire = Arc::new(WireStats::default());
        let _server = TcpRpcServer::bind("127.0.0.1:0", registry, Arc::clone(&wire), None).unwrap();
        let t = TcpTransport::with_options(
            Arc::clone(&wire),
            TcpClientOptions {
                pool_idle_timeout: Duration::from_millis(100),
                ..TcpClientOptions::default()
            },
        );
        t.set_default_route(Some(_server.local_addr()));
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        assert_eq!(t.pooled_connections(), 1);
        // The reaper runs on the ~250ms reactor tick; give it two ticks.
        let deadline = Instant::now() + Duration::from_secs(3);
        while t.pooled_connections() != 0 {
            assert!(Instant::now() < deadline, "idle connection never reaped");
            std::thread::sleep(Duration::from_millis(25));
        }
        // The next send redials and counts as a reconnect.
        assert!(t
            .send(env(0, 1, Duration::from_secs(5), Request::Ping))
            .is_ok());
        let w = wire.totals();
        assert_eq!(w.connects, 1);
        assert!(w.reconnects >= 1, "post-reap redial is a reconnect");
    }

    #[test]
    fn pool_cap_evicts_least_recently_used_idle_connections() {
        let registry = Arc::new(HandlerRegistry::new());
        for id in 1..=3 {
            registry.bind(ServerId(id), |_| Ok(Response::Pong));
        }
        let wire = Arc::new(WireStats::default());
        let servers: Vec<TcpRpcServer> = (0..3)
            .map(|_| {
                TcpRpcServer::bind(
                    "127.0.0.1:0",
                    Arc::clone(&registry),
                    Arc::clone(&wire),
                    None,
                )
                .unwrap()
            })
            .collect();
        let t = TcpTransport::with_options(
            Arc::clone(&wire),
            TcpClientOptions {
                pool_max_connections: 2,
                ..TcpClientOptions::default()
            },
        );
        for (i, s) in servers.iter().enumerate() {
            t.add_peer(ServerId(i as u32 + 1), s.local_addr());
        }
        for dst in 1..=3u32 {
            assert!(t
                .send(env(0, dst, Duration::from_secs(5), Request::Ping))
                .is_ok());
        }
        assert!(
            t.pooled_connections() <= 2,
            "cap must hold: {} pooled",
            t.pooled_connections()
        );
    }

    #[test]
    fn worker_queue_overflow_sheds_typed_overloaded() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| {
            std::thread::sleep(Duration::from_millis(150));
            Ok(Response::Pong)
        });
        let wire = Arc::new(WireStats::default());
        let server = TcpRpcServer::bind_with(
            "127.0.0.1:0",
            registry,
            Arc::clone(&wire),
            None,
            TcpServerOptions {
                workers: 1,
                queue_capacity: 1,
                overflow_retry_after: Duration::from_millis(25),
                ..TcpServerOptions::default()
            },
        )
        .unwrap();
        let t = Arc::new(TcpTransport::with_wire_stats(wire));
        t.set_default_route(Some(server.local_addr()));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.send(env(i, 1, Duration::from_secs(5), Request::Ping)))
            })
            .collect();
        let mut ok = 0;
        let mut shed = 0;
        for h in handles {
            match h.join().unwrap() {
                Ok(Response::Pong) => ok += 1,
                Err(WwError::Overloaded { retry_after }) => {
                    assert_eq!(retry_after, Duration::from_millis(25));
                    shed += 1;
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert!(ok >= 1, "at least the running request completes");
        assert!(
            shed >= 1,
            "a 1-worker/1-slot server must shed under 8-way fire"
        );
        assert_eq!(ok + shed, 8, "every request got a typed answer");
    }
}
