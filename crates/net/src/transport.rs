//! The pluggable transport and its in-process production implementation.
//!
//! [`Transport`] is the single seam every cross-server hop goes through:
//! it accepts an [`Envelope`] and returns the destination's [`Response`]
//! or a delivery error. [`InProcTransport`] is the embedded deployment's
//! implementation — direct handler invocation dressed with the properties
//! of a real network:
//!
//! * **per-link latency/jitter** from a [`LinkProfile`] (the message-plane
//!   analogue of the SimDfs [`LatencyModel`](waterwheel_cluster::LatencyModel));
//! * **injectable faults**: probabilistic request loss, deterministic
//!   link cut-off after N messages (`drop_after`), and directed partitions;
//! * **cluster liveness**: a destination placed on a dead node (the
//!   cluster's failure-injection hook) is unreachable;
//! * **per-link [`RpcStats`]** (sent/retried/timed-out/unreachable/bytes).
//!
//! Most faults are *request* faults: a lost or late message fails
//! **before** the destination handler runs, so retrying such a failure can
//! never duplicate a side effect. [`LinkProfile::response_loss`] is the
//! exception — it drops the *ack after the handler already ran*, turning a
//! retry into a genuine redelivery. That is exactly the at-least-once
//! hazard real networks have, and it is why the batched ingest path tags
//! every `IngestBatch` with a sequence number the receiver dedups on (the
//! "retries make faults invisible, never duplicated tuples" oracle tests
//! exercise both fault classes). [`TcpTransport`](crate::TcpTransport)
//! implements the same trait over real sockets; both share a
//! [`HandlerRegistry`] so the servers bound behind them are identical, and
//! both charge the per-link byte counters with **real encoded frame
//! lengths** from [`wire`](crate::wire) — the stats of an embedded run and
//! a networked run describe the same traffic.

use crate::envelope::{Envelope, Response};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_cluster::Cluster;
use waterwheel_core::{Result, ServerId, WwError};

/// A message handler bound at a destination address.
pub type Handler = Arc<dyn Fn(&Envelope) -> Result<Response> + Send + Sync>;

/// RAII admission token: proof that an [`AdmissionControl`] accepted a
/// request. Dropping the permit releases whatever capacity (in-flight
/// slot, queue position) the controller reserved for it.
pub struct AdmissionPermit(Option<Box<dyn FnOnce() + Send>>);

impl AdmissionPermit {
    /// A permit that runs `release` when dropped.
    pub fn new(release: impl FnOnce() + Send + 'static) -> Self {
        Self(Some(Box::new(release)))
    }

    /// A permit with nothing to release (rate-limit-only admission).
    pub fn unguarded() -> Self {
        Self(None)
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(release) = self.0.take() {
            release();
        }
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("guarded", &self.0.is_some())
            .finish()
    }
}

/// Admission decision made before a destination handler runs.
///
/// Implementations (the server crate's token-bucket + bounded-queue
/// controller) decide per envelope; a shed request fails with
/// [`WwError::Overloaded`] *before* the handler runs, so retrying it can
/// never duplicate a side effect. Installed on a [`HandlerRegistry`], it
/// covers every front-end dispatching that registry — in-proc and TCP.
pub trait AdmissionControl: Send + Sync {
    /// Admits or sheds `env`. An `Err` (typically
    /// [`WwError::Overloaded`]) travels back to the sender as an answer;
    /// on `Ok` the returned permit must live for the handler's duration.
    fn admit(&self, env: &Envelope) -> Result<AdmissionPermit>;
}

/// The set of handlers serving a process's addresses, shared by every
/// transport front-end (in-proc delivery and the TCP listener dispatch the
/// same registry, so a server behaves identically however it is reached).
#[derive(Default)]
pub struct HandlerRegistry {
    handlers: RwLock<HashMap<ServerId, Handler>>,
    admission: RwLock<Option<Arc<dyn AdmissionControl>>>,
}

impl HandlerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds (or replaces) the handler serving `dst`.
    pub fn bind(
        &self,
        dst: ServerId,
        handler: impl Fn(&Envelope) -> Result<Response> + Send + Sync + 'static,
    ) {
        self.handlers.write().insert(dst, Arc::new(handler));
    }

    /// The handler bound at `dst`, if any.
    pub fn get(&self, dst: ServerId) -> Option<Handler> {
        self.handlers.read().get(&dst).cloned()
    }

    /// The addresses currently bound.
    pub fn bound(&self) -> Vec<ServerId> {
        self.handlers.read().keys().copied().collect()
    }

    /// Installs the admission controller consulted by [`dispatch`](Self::dispatch)
    /// (and by [`InProcTransport`]) before any handler runs.
    pub fn set_admission(&self, admission: Arc<dyn AdmissionControl>) {
        *self.admission.write() = Some(admission);
    }

    /// The installed admission controller, if any.
    pub fn admission(&self) -> Option<Arc<dyn AdmissionControl>> {
        self.admission.read().clone()
    }

    /// Full server-side dispatch for one envelope: admission check, then
    /// the bound handler. The TCP server's workers and the in-proc
    /// transport both deliver through this path, so shed semantics are
    /// identical across deployments.
    pub fn dispatch(&self, env: &Envelope) -> Result<Response> {
        let Some(handler) = self.get(env.dst) else {
            return Err(WwError::Unreachable("no server bound at destination"));
        };
        let _permit = match self.admission() {
            Some(a) => Some(a.admit(env)?),
            None => None,
        };
        handler(env)
    }
}

/// Anything handlers can be bound on — a bare [`HandlerRegistry`] or a
/// transport that owns one. Lets server wiring (e.g.
/// [`serve_meta`](crate::serve_meta)) stay agnostic of the deployment mode.
pub trait HandlerHost {
    /// Binds (or replaces) the handler serving `dst`.
    fn bind_handler(
        &self,
        dst: ServerId,
        handler: impl Fn(&Envelope) -> Result<Response> + Send + Sync + 'static,
    );
}

impl HandlerHost for HandlerRegistry {
    fn bind_handler(
        &self,
        dst: ServerId,
        handler: impl Fn(&Envelope) -> Result<Response> + Send + Sync + 'static,
    ) {
        self.bind(dst, handler);
    }
}

impl HandlerHost for InProcTransport {
    fn bind_handler(
        &self,
        dst: ServerId,
        handler: impl Fn(&Envelope) -> Result<Response> + Send + Sync + 'static,
    ) {
        self.bind(dst, handler);
    }
}

impl<T: HandlerHost + ?Sized> HandlerHost for Arc<T> {
    fn bind_handler(
        &self,
        dst: ServerId,
        handler: impl Fn(&Envelope) -> Result<Response> + Send + Sync + 'static,
    ) {
        (**self).bind_handler(dst, handler);
    }
}

/// The message plane: every cross-server hop goes through `send`.
pub trait Transport: Send + Sync {
    /// Delivers one envelope and returns the destination's response, or a
    /// delivery error ([`WwError::Timeout`] / [`WwError::Unreachable`]).
    fn send(&self, env: Envelope) -> Result<Response>;

    /// The per-link statistics registry.
    fn stats(&self) -> &RpcStatsRegistry;
}

/// Latency and fault profile of one directed link (or the default for all).
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkProfile {
    /// Fixed one-way transit latency charged per message.
    pub latency: Duration,
    /// Additional uniformly random transit latency in `[0, jitter)`.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that a request is lost in transit (fails
    /// with [`WwError::Timeout`] before reaching the destination).
    pub loss: f64,
    /// Deterministic cut-off: after this many messages have been sent on
    /// the link, every further message is dropped — a server crashing
    /// mid-plan, reproducibly.
    pub drop_after: Option<u64>,
    /// Probability in `[0, 1]` that the *response* is lost after the
    /// destination handler ran (fails with [`WwError::Timeout`]). Unlike
    /// [`loss`](Self::loss), the side effect has already happened, so a
    /// retried request is redelivered to the handler — the at-least-once
    /// case idempotent handlers (ingest-batch dedup) must absorb.
    pub response_loss: f64,
}

/// Lock-free counters for one directed link.
#[derive(Debug, Default)]
pub struct RpcStats {
    /// Envelopes handed to the transport (including retries).
    pub sent: AtomicU64,
    /// Retry attempts made by an [`RpcClient`](crate::RpcClient) on this link.
    pub retried: AtomicU64,
    /// Attempts that failed with [`WwError::Timeout`] (lost or late).
    pub timed_out: AtomicU64,
    /// Attempts that failed with [`WwError::Unreachable`].
    pub unreachable: AtomicU64,
    /// Encoded frame bytes moved (requests + responses).
    pub bytes: AtomicU64,
}

/// Aggregated totals across every link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RpcTotals {
    /// Envelopes sent.
    pub sent: u64,
    /// Retry attempts.
    pub retried: u64,
    /// Timed-out attempts.
    pub timed_out: u64,
    /// Unreachable attempts.
    pub unreachable: u64,
    /// Encoded frame bytes moved.
    pub bytes: u64,
}

/// Number of power-of-two latency buckets: bucket `i` counts calls whose
/// duration rounds up to `2^i` nanoseconds (bucket 39 ≈ 9 minutes).
const LATENCY_BUCKETS: usize = 40;

/// Lock-free power-of-two latency histogram.
///
/// `record` is a single `fetch_add`; percentiles are read by walking the
/// cumulative counts and reporting the matched bucket's **upper bound**
/// (a ≤2x overestimate, never an underestimate — honest for tail SLOs).
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish()
    }
}

impl LatencyHistogram {
    /// Records one observed duration.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        let idx = (64 - nanos.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) as the matched bucket's upper
    /// bound; zero when nothing was recorded.
    pub fn percentile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Duration::from_nanos(1u64 << idx);
            }
        }
        Duration::from_nanos(1u64 << (LATENCY_BUCKETS - 1))
    }
}

/// One request kind's latency distribution, snapshotted for metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Request kind label (see `Request::kind`).
    pub kind: &'static str,
    /// Completed calls recorded.
    pub count: u64,
    /// Median latency (bucket upper bound).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

/// Per-link statistics, created on first use of a link.
#[derive(Default)]
pub struct RpcStatsRegistry {
    links: RwLock<HashMap<(ServerId, ServerId), Arc<RpcStats>>>,
    latencies: RwLock<HashMap<&'static str, Arc<LatencyHistogram>>>,
}

impl RpcStatsRegistry {
    /// The counters for the directed link `src → dst`.
    pub fn link(&self, src: ServerId, dst: ServerId) -> Arc<RpcStats> {
        if let Some(s) = self.links.read().get(&(src, dst)) {
            return Arc::clone(s);
        }
        Arc::clone(self.links.write().entry((src, dst)).or_default())
    }

    /// Records one completed RPC's wall-clock latency under its request
    /// kind (see `Request::kind`).
    pub fn record_latency(&self, kind: &'static str, d: Duration) {
        if let Some(h) = self.latencies.read().get(kind) {
            h.record(d);
            return;
        }
        self.latencies.write().entry(kind).or_default().record(d);
    }

    /// Per-request-kind latency distributions, sorted by kind for stable
    /// rendering.
    pub fn latency_snapshot(&self) -> Vec<LatencySnapshot> {
        let mut rows: Vec<LatencySnapshot> = self
            .latencies
            .read()
            .iter()
            .map(|(&kind, h)| LatencySnapshot {
                kind,
                count: h.count(),
                p50: h.percentile(0.50),
                p95: h.percentile(0.95),
                p99: h.percentile(0.99),
            })
            .collect();
        rows.sort_by_key(|r| r.kind);
        rows
    }

    /// Snapshot of every link's counters.
    pub fn per_link(&self) -> Vec<((ServerId, ServerId), RpcTotals)> {
        self.links
            .read()
            .iter()
            .map(|(&link, s)| {
                (
                    link,
                    RpcTotals {
                        sent: s.sent.load(Ordering::Relaxed),
                        retried: s.retried.load(Ordering::Relaxed),
                        timed_out: s.timed_out.load(Ordering::Relaxed),
                        unreachable: s.unreachable.load(Ordering::Relaxed),
                        bytes: s.bytes.load(Ordering::Relaxed),
                    },
                )
            })
            .collect()
    }

    /// Totals aggregated across all links.
    pub fn totals(&self) -> RpcTotals {
        let mut t = RpcTotals::default();
        for (_, l) in self.per_link() {
            t.sent += l.sent;
            t.retried += l.retried;
            t.timed_out += l.timed_out;
            t.unreachable += l.unreachable;
            t.bytes += l.bytes;
        }
        t
    }
}

/// The in-process transport: channels-with-faults over direct handlers.
pub struct InProcTransport {
    handlers: Arc<HandlerRegistry>,
    default_profile: RwLock<LinkProfile>,
    link_profiles: RwLock<HashMap<(ServerId, ServerId), LinkProfile>>,
    /// Directed partitions: `(src, dst)` pairs that cannot communicate.
    partitions: RwLock<HashSet<(ServerId, ServerId)>>,
    /// Node-liveness hook: a destination placed on a dead cluster node is
    /// unreachable.
    cluster: Option<Cluster>,
    stats: RpcStatsRegistry,
    rng: AtomicU64,
}

impl InProcTransport {
    /// A fault-free, zero-latency transport; `cluster` enables the
    /// node-liveness hook for servers placed on simulated nodes.
    pub fn new(cluster: Option<Cluster>) -> Self {
        Self::with_registry(cluster, Arc::new(HandlerRegistry::new()))
    }

    /// A transport delivering to an externally owned registry — the same
    /// registry a TCP listener can serve, so one set of bound servers
    /// answers over both planes.
    pub fn with_registry(cluster: Option<Cluster>, handlers: Arc<HandlerRegistry>) -> Self {
        Self {
            handlers,
            default_profile: RwLock::new(LinkProfile::default()),
            link_profiles: RwLock::new(HashMap::new()),
            partitions: RwLock::new(HashSet::new()),
            cluster,
            stats: RpcStatsRegistry::default(),
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Binds (or replaces) the handler serving `dst`.
    pub fn bind(
        &self,
        dst: ServerId,
        handler: impl Fn(&Envelope) -> Result<Response> + Send + Sync + 'static,
    ) {
        self.handlers.bind(dst, handler);
    }

    /// The handler registry this transport delivers to.
    pub fn registry(&self) -> &Arc<HandlerRegistry> {
        &self.handlers
    }

    /// Installs the profile applied to links without a specific one.
    pub fn set_default_profile(&self, profile: LinkProfile) {
        *self.default_profile.write() = profile;
    }

    /// Installs a profile for one directed link, overriding the default.
    pub fn set_link_profile(&self, src: ServerId, dst: ServerId, profile: LinkProfile) {
        self.link_profiles.write().insert((src, dst), profile);
    }

    /// Cuts the directed link `src → dst` (network partition injection).
    pub fn partition(&self, src: ServerId, dst: ServerId) {
        self.partitions.write().insert((src, dst));
    }

    /// Heals a previously cut link.
    pub fn heal(&self, src: ServerId, dst: ServerId) {
        self.partitions.write().remove(&(src, dst));
    }

    /// Heals every partition and removes every fault profile.
    pub fn clear_faults(&self) {
        self.partitions.write().clear();
        self.link_profiles.write().clear();
        *self.default_profile.write() = LinkProfile::default();
    }

    fn profile_for(&self, src: ServerId, dst: ServerId) -> LinkProfile {
        match self.link_profiles.read().get(&(src, dst)) {
            Some(p) => *p,
            None => *self.default_profile.read(),
        }
    }

    /// Deterministic uniform draw in `[0, 1)` (SplitMix64).
    fn draw(&self) -> f64 {
        let mut z = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Transport for InProcTransport {
    fn send(&self, env: Envelope) -> Result<Response> {
        let link = self.stats.link(env.src, env.dst);
        let n_sent = link.sent.fetch_add(1, Ordering::Relaxed) + 1;
        // Charge the byte counter with the real encoded frame length — the
        // exact bytes TcpTransport would put on a socket for this envelope.
        link.bytes.fetch_add(
            crate::wire::encode_request(0, &env).len() as u64,
            Ordering::Relaxed,
        );

        if self.partitions.read().contains(&(env.src, env.dst)) {
            link.unreachable.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::Unreachable("link partitioned"));
        }
        if let Some(cluster) = &self.cluster {
            if let Some(node) = cluster.node_of(env.dst) {
                if !cluster.is_alive(node) {
                    link.unreachable.fetch_add(1, Ordering::Relaxed);
                    return Err(WwError::Unreachable("destination node is down"));
                }
            }
        }
        let profile = self.profile_for(env.src, env.dst);
        if profile.drop_after.is_some_and(|n| n_sent > n) {
            link.timed_out.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::Timeout("link stopped delivering (drop_after)"));
        }
        if profile.loss > 0.0 && self.draw() < profile.loss {
            link.timed_out.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::Timeout("request lost in transit"));
        }
        let mut delay = profile.latency;
        if !profile.jitter.is_zero() {
            delay += profile.jitter.mul_f64(self.draw());
        }
        // A message that would arrive past the deadline fails without
        // reaching the destination — the sender has already given up, so
        // delivering it would only risk duplicated side effects. The wait
        // itself is simulated (no sleep), keeping fault tests fast.
        if delay > env.deadline.saturating_duration_since(Instant::now()) {
            link.timed_out.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::Timeout("transit exceeded the deadline"));
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let handler = self.handlers.get(env.dst);
        match handler {
            Some(h) => {
                // Admission runs only when a handler exists (an unbound
                // destination is unreachable, not overloaded). A shed is
                // an answer from the destination — no fault counters —
                // and the permit is held for the handler's duration.
                let _permit = match self.handlers.admission() {
                    Some(a) => Some(a.admit(&env)?),
                    None => None,
                };
                let resp = h(&env)?;
                link.bytes.fetch_add(
                    crate::wire::encode_response_ok(0, &resp).len() as u64,
                    Ordering::Relaxed,
                );
                // The handler ran — its side effects are real — but the ack
                // never makes it back. The sender sees a timeout and will
                // redeliver, so only idempotent handlers survive this fault.
                if profile.response_loss > 0.0 && self.draw() < profile.response_loss {
                    link.timed_out.fetch_add(1, Ordering::Relaxed);
                    return Err(WwError::Timeout("response lost in transit"));
                }
                Ok(resp)
            }
            None => {
                link.unreachable.fetch_add(1, Ordering::Relaxed);
                Err(WwError::Unreachable("no server bound at destination"))
            }
        }
    }

    fn stats(&self) -> &RpcStatsRegistry {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Request;

    fn env(src: u32, dst: u32, timeout: Duration) -> Envelope {
        Envelope {
            src: ServerId(src),
            dst: ServerId(dst),
            rpc_id: 0,
            deadline: Instant::now() + timeout,
            payload: Request::Ping,
        }
    }

    fn pong_transport() -> InProcTransport {
        let t = InProcTransport::new(None);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t
    }

    #[test]
    fn delivers_to_bound_handler_and_counts() {
        let t = pong_transport();
        let r = t.send(env(0, 1, Duration::from_secs(1))).unwrap();
        assert!(matches!(r, Response::Pong));
        let totals = t.stats().totals();
        assert_eq!(totals.sent, 1);
        assert_eq!(totals.timed_out, 0);
        assert!(totals.bytes > 0, "request + response bytes counted");
    }

    #[test]
    fn unbound_destination_is_unreachable() {
        let t = pong_transport();
        let e = t.send(env(0, 9, Duration::from_secs(1))).unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));
        assert_eq!(
            t.stats()
                .link(ServerId(0), ServerId(9))
                .unreachable
                .load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn partition_cuts_one_direction_only() {
        let t = pong_transport();
        t.bind(ServerId(2), |_| Ok(Response::Pong));
        t.partition(ServerId(0), ServerId(1));
        assert!(matches!(
            t.send(env(0, 1, Duration::from_secs(1))),
            Err(WwError::Unreachable(_))
        ));
        // Other links unaffected.
        assert!(t.send(env(0, 2, Duration::from_secs(1))).is_ok());
        assert!(t.send(env(3, 1, Duration::from_secs(1))).is_ok());
        t.heal(ServerId(0), ServerId(1));
        assert!(t.send(env(0, 1, Duration::from_secs(1))).is_ok());
    }

    #[test]
    fn loss_drops_requests_before_the_handler_runs() {
        let t = InProcTransport::new(None);
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        t.bind(ServerId(1), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Pong)
        });
        t.set_default_profile(LinkProfile {
            loss: 0.5,
            ..LinkProfile::default()
        });
        let mut lost = 0;
        for _ in 0..400 {
            match t.send(env(0, 1, Duration::from_secs(1))) {
                Err(WwError::Timeout(_)) => lost += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!((100..300).contains(&lost), "loss way off 50%: {lost}/400");
        // Every loss happened before the handler: delivered + lost = sent.
        assert_eq!(calls.load(Ordering::Relaxed) + lost, 400);
        assert_eq!(t.stats().totals().timed_out, lost);
    }

    #[test]
    fn response_loss_drops_the_ack_after_the_handler_ran() {
        let t = InProcTransport::new(None);
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        t.bind(ServerId(1), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Pong)
        });
        t.set_default_profile(LinkProfile {
            response_loss: 1.0,
            ..LinkProfile::default()
        });
        let e = t.send(env(0, 1, Duration::from_secs(1))).unwrap_err();
        assert!(matches!(e, WwError::Timeout(_)));
        // Unlike request loss, the side effect already happened: the
        // handler ran even though the sender saw a timeout.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(t.stats().totals().timed_out, 1);
    }

    #[test]
    fn transit_longer_than_deadline_times_out_without_delivery() {
        let t = InProcTransport::new(None);
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        t.bind(ServerId(1), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Pong)
        });
        t.set_link_profile(
            ServerId(0),
            ServerId(1),
            LinkProfile {
                latency: Duration::from_millis(50),
                ..LinkProfile::default()
            },
        );
        let started = Instant::now();
        let e = t.send(env(0, 1, Duration::from_millis(1))).unwrap_err();
        assert!(matches!(e, WwError::Timeout(_)));
        assert_eq!(calls.load(Ordering::Relaxed), 0, "handler must not run");
        // The wait is simulated, not slept.
        assert!(started.elapsed() < Duration::from_millis(40));
        // A generous deadline delivers (and genuinely waits).
        assert!(t.send(env(0, 1, Duration::from_secs(5))).is_ok());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_after_cuts_the_link_deterministically() {
        let t = pong_transport();
        t.set_link_profile(
            ServerId(0),
            ServerId(1),
            LinkProfile {
                drop_after: Some(3),
                ..LinkProfile::default()
            },
        );
        for _ in 0..3 {
            assert!(t.send(env(0, 1, Duration::from_secs(1))).is_ok());
        }
        for _ in 0..5 {
            assert!(matches!(
                t.send(env(0, 1, Duration::from_secs(1))),
                Err(WwError::Timeout(_))
            ));
        }
        // Other source links keep working.
        assert!(t.send(env(7, 1, Duration::from_secs(1))).is_ok());
    }

    #[test]
    fn dead_cluster_node_makes_its_servers_unreachable() {
        let cluster = Cluster::new(2);
        cluster
            .place_server(ServerId(1), waterwheel_core::NodeId(0))
            .unwrap();
        let t = InProcTransport::new(Some(cluster.clone()));
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t.bind(ServerId(99), |_| Ok(Response::Pong)); // not placed on a node
        assert!(t.send(env(0, 1, Duration::from_secs(1))).is_ok());
        cluster.fail_node(waterwheel_core::NodeId(0)).unwrap();
        assert!(matches!(
            t.send(env(0, 1, Duration::from_secs(1))),
            Err(WwError::Unreachable(_))
        ));
        // Servers not placed on any node (meta, coordinator) are exempt.
        assert!(t.send(env(0, 99, Duration::from_secs(1))).is_ok());
        cluster.recover_node(waterwheel_core::NodeId(0)).unwrap();
        assert!(t.send(env(0, 1, Duration::from_secs(1))).is_ok());
    }

    #[test]
    fn clear_faults_restores_a_clean_plane() {
        let t = pong_transport();
        t.partition(ServerId(0), ServerId(1));
        t.set_default_profile(LinkProfile {
            loss: 1.0,
            ..LinkProfile::default()
        });
        t.clear_faults();
        for _ in 0..20 {
            assert!(t.send(env(0, 1, Duration::from_secs(1))).is_ok());
        }
    }

    #[test]
    fn bytes_counted_are_exact_encoded_frame_lengths() {
        let t = pong_transport();
        let e = env(0, 1, Duration::from_secs(1));
        let req_len = crate::wire::encode_request(0, &e).len() as u64;
        let resp_len = crate::wire::encode_response_ok(0, &Response::Pong).len() as u64;
        t.send(e).unwrap();
        assert_eq!(
            t.stats().totals().bytes,
            req_len + resp_len,
            "byte accounting must match what the wire codec would frame"
        );
    }

    #[test]
    fn registry_is_shared_across_transport_frontends() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let t = InProcTransport::with_registry(None, Arc::clone(&registry));
        assert!(t.send(env(0, 1, Duration::from_secs(1))).is_ok());
        // A handler bound later through either side is visible to both.
        t.bind(ServerId(2), |_| Ok(Response::Ack));
        assert!(registry.get(ServerId(2)).is_some());
        assert!(registry.bound().contains(&ServerId(1)));
    }

    #[test]
    fn admission_sheds_before_the_handler_runs() {
        struct ShedAll {
            released: Arc<AtomicU64>,
        }
        impl super::AdmissionControl for ShedAll {
            fn admit(&self, env: &Envelope) -> Result<super::AdmissionPermit> {
                if matches!(env.payload, Request::Ping) {
                    return Err(WwError::Overloaded {
                        retry_after: Duration::from_millis(7),
                    });
                }
                let released = Arc::clone(&self.released);
                Ok(super::AdmissionPermit::new(move || {
                    released.fetch_add(1, Ordering::Relaxed);
                }))
            }
        }

        let calls = Arc::new(AtomicU64::new(0));
        let released = Arc::new(AtomicU64::new(0));
        let t = InProcTransport::new(None);
        let c = Arc::clone(&calls);
        t.bind(ServerId(1), move |_| {
            c.fetch_add(1, Ordering::Relaxed);
            Ok(Response::Pong)
        });
        t.registry().set_admission(Arc::new(ShedAll {
            released: Arc::clone(&released),
        }));

        // Shed: typed Overloaded, handler never ran, no fault counters.
        let e = t.send(env(0, 1, Duration::from_secs(1))).unwrap_err();
        assert!(matches!(e, WwError::Overloaded { .. }), "got {e}");
        assert_eq!(e.retry_after(), Some(Duration::from_millis(7)));
        assert!(e.is_retryable());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        let totals = t.stats().totals();
        assert_eq!(totals.timed_out + totals.unreachable, 0);

        // Admitted: the permit is released after the handler completes.
        let mut admitted = env(0, 1, Duration::from_secs(1));
        admitted.payload = Request::Flush;
        // Flush is unhandled payload-wise but the bound handler accepts
        // any envelope; the permit release must have fired exactly once.
        t.send(admitted).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(released.load(Ordering::Relaxed), 1);

        // Unbound destinations shed as Unreachable, not Overloaded.
        let mut unbound = env(0, 9, Duration::from_secs(1));
        unbound.payload = Request::Flush;
        let e = t.send(unbound).unwrap_err();
        assert!(matches!(e, WwError::Unreachable(_)));
    }

    #[test]
    fn registry_dispatch_applies_admission_and_binding() {
        let registry = Arc::new(HandlerRegistry::new());
        registry.bind(ServerId(1), |_| Ok(Response::Pong));
        let e = env(0, 1, Duration::from_secs(1));
        assert!(matches!(registry.dispatch(&e), Ok(Response::Pong)));
        let missing = env(0, 5, Duration::from_secs(1));
        assert!(matches!(
            registry.dispatch(&missing),
            Err(WwError::Unreachable(_))
        ));

        struct ShedAll;
        impl super::AdmissionControl for ShedAll {
            fn admit(&self, _env: &Envelope) -> Result<super::AdmissionPermit> {
                Err(WwError::Overloaded {
                    retry_after: Duration::from_millis(1),
                })
            }
        }
        registry.set_admission(Arc::new(ShedAll));
        assert!(matches!(
            registry.dispatch(&env(0, 1, Duration::from_secs(1))),
            Err(WwError::Overloaded { .. })
        ));
        // Unbound stays unreachable even under full shed.
        assert!(matches!(
            registry.dispatch(&env(0, 5, Duration::from_secs(1))),
            Err(WwError::Unreachable(_))
        ));
    }

    #[test]
    fn latency_histogram_percentiles_bound_from_above() {
        let h = super::LatencyHistogram::default();
        assert_eq!(h.percentile(0.99), Duration::ZERO, "empty → zero");
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket ≈ 131µs
        }
        h.record(Duration::from_millis(50)); // bucket ≈ 67ms
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.50);
        assert!(p50 >= Duration::from_micros(100) && p50 < Duration::from_micros(300));
        let p99 = h.percentile(0.99);
        assert!(p99 < Duration::from_millis(1), "p99 is the 99th of 100");
        let p100 = h.percentile(1.0);
        assert!(
            p100 >= Duration::from_millis(50),
            "max captures the outlier"
        );
    }

    #[test]
    fn latency_snapshot_groups_by_request_kind() {
        let stats = RpcStatsRegistry::default();
        stats.record_latency("ping", Duration::from_micros(10));
        stats.record_latency("ping", Duration::from_micros(20));
        stats.record_latency("ingest", Duration::from_micros(5));
        let rows = stats.latency_snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, "ingest");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[1].kind, "ping");
        assert_eq!(rows[1].count, 2);
        assert!(rows[1].p99 >= rows[1].p50);
    }

    #[test]
    fn per_link_stats_are_directed() {
        let t = pong_transport();
        t.bind(ServerId(2), |_| Ok(Response::Pong));
        t.send(env(0, 1, Duration::from_secs(1))).unwrap();
        t.send(env(0, 1, Duration::from_secs(1))).unwrap();
        t.send(env(1, 2, Duration::from_secs(1))).unwrap();
        let links: HashMap<_, _> = t.stats().per_link().into_iter().collect();
        assert_eq!(links[&(ServerId(0), ServerId(1))].sent, 2);
        assert_eq!(links[&(ServerId(1), ServerId(2))].sent, 1);
        assert!(!links.contains_key(&(ServerId(1), ServerId(0))));
        assert_eq!(t.stats().totals().sent, 3);
    }
}
