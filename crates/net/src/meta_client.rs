//! Metadata access over the message plane.
//!
//! In the paper the metadata store is ZooKeeper — a separate service every
//! server talks to over the network (§II-B). The embedded deployment used
//! to hand each server a direct [`MetadataService`] handle; this module
//! restores the network boundary: [`serve_meta`] binds the service at the
//! well-known [`META_SERVER`] address, and [`MetaClient`] gives each server
//! a typed, retrying stub mirroring the service's API. Metadata traffic
//! thereby shares the plane's deadlines, retries, fault injection, and
//! per-link stats with every other hop.
//!
//! Safe to retry: every metadata mutation is idempotent or
//! conflict-checked by the service (`register_chunk` rejects duplicate
//! ids; `update_memory_region` is last-writer-wins from a single owner;
//! `allocate_chunk_id` may burn an id on a lost *response*, which only
//! leaves a gap in the sequence).

use crate::client::RpcClient;
use crate::envelope::{MetaRequest, MetaResponse, Request, Response, META_SERVER};
use crate::transport::HandlerHost;
use std::time::Duration;
use waterwheel_core::{ChunkId, NodeId, Region, Result, ServerId, WwError};
use waterwheel_index::secondary::{AttrId, AttrProbe, ChunkAttrIndex};
use waterwheel_meta::{
    ChunkInfo, MemberRole, MembershipView, MetadataService, PartitionSchema, SummaryExtent,
};

/// Binds `meta` at [`META_SERVER`] on any handler host (an in-proc
/// transport or a bare registry served over TCP), translating
/// [`MetaRequest`]s into service calls.
pub fn serve_meta<H: HandlerHost + ?Sized>(host: &H, meta: MetadataService) {
    host.bind_handler(META_SERVER, move |env| {
        let Request::Meta(req) = &env.payload else {
            return Err(WwError::InvalidState(
                "metadata server received a non-meta request".into(),
            ));
        };
        let resp = match req.clone() {
            MetaRequest::UpdateMemoryRegion { server, region } => {
                meta.update_memory_region(server, region);
                MetaResponse::Ack
            }
            MetaRequest::AllocateChunkId => MetaResponse::Allocated(meta.allocate_chunk_id()?),
            MetaRequest::RegisterChunk {
                chunk,
                info,
                durable_offset,
            } => {
                meta.register_chunk(chunk, info, durable_offset)?;
                MetaResponse::Ack
            }
            MetaRequest::RegisterSummary { chunk, extent } => {
                meta.register_summary(chunk, extent)?;
                MetaResponse::Ack
            }
            MetaRequest::RegisterAttrIndex { chunk, attr, index } => {
                meta.register_attr_index(chunk, attr, index)?;
                MetaResponse::Ack
            }
            MetaRequest::ChunksOverlapping { region } => {
                MetaResponse::Chunks(meta.chunks_overlapping(&region))
            }
            MetaRequest::MemoryRegionsOverlapping { region } => {
                MetaResponse::Regions(meta.memory_regions_overlapping(&region))
            }
            MetaRequest::AttrProbe { chunk, attr, value } => {
                MetaResponse::Probe(meta.attr_probe(chunk, attr, value))
            }
            MetaRequest::SummaryExtent { chunk } => {
                MetaResponse::Extent(meta.summary_extent(chunk))
            }
            MetaRequest::Partition => MetaResponse::Partition(meta.partition()),
            MetaRequest::DurableOffset { server } => {
                MetaResponse::Offset(meta.durable_offset(server))
            }
            MetaRequest::Join {
                server,
                role,
                node,
                ttl_ms,
            } => MetaResponse::Epoch(meta.join(
                server,
                role,
                node,
                std::time::Duration::from_millis(ttl_ms),
            )?),
            MetaRequest::Heartbeat { server, ttl_ms } => MetaResponse::Epoch(
                meta.heartbeat(server, std::time::Duration::from_millis(ttl_ms))?,
            ),
            MetaRequest::Leave { server } => MetaResponse::Epoch(meta.leave(server)?),
            MetaRequest::Membership => MetaResponse::Membership(meta.membership()),
            MetaRequest::SetPartition { schema } => {
                meta.set_partition(schema)?;
                MetaResponse::Ack
            }
        };
        Ok(Response::Meta(resp))
    });
}

/// A typed stub for the metadata server, one per sending server.
#[derive(Clone)]
pub struct MetaClient {
    rpc: RpcClient,
}

impl MetaClient {
    /// A stub sending as the client's source address.
    pub fn new(rpc: RpcClient) -> Self {
        Self { rpc }
    }

    fn call(&self, req: MetaRequest) -> Result<MetaResponse> {
        self.rpc.call(META_SERVER, Request::Meta(req))?.into_meta()
    }

    fn expect_ack(&self, req: MetaRequest) -> Result<()> {
        match self.call(req)? {
            MetaResponse::Ack => Ok(()),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::update_memory_region`].
    pub fn update_memory_region(&self, server: ServerId, region: Option<Region>) -> Result<()> {
        self.expect_ack(MetaRequest::UpdateMemoryRegion { server, region })
    }

    /// See [`MetadataService::allocate_chunk_id`].
    pub fn allocate_chunk_id(&self) -> Result<ChunkId> {
        match self.call(MetaRequest::AllocateChunkId)? {
            MetaResponse::Allocated(id) => Ok(id),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::register_chunk`].
    pub fn register_chunk(
        &self,
        chunk: ChunkId,
        info: ChunkInfo,
        durable_offset: u64,
    ) -> Result<()> {
        self.expect_ack(MetaRequest::RegisterChunk {
            chunk,
            info,
            durable_offset,
        })
    }

    /// See [`MetadataService::register_summary`].
    pub fn register_summary(&self, chunk: ChunkId, extent: SummaryExtent) -> Result<()> {
        self.expect_ack(MetaRequest::RegisterSummary { chunk, extent })
    }

    /// See [`MetadataService::register_attr_index`].
    pub fn register_attr_index(
        &self,
        chunk: ChunkId,
        attr: AttrId,
        index: ChunkAttrIndex,
    ) -> Result<()> {
        self.expect_ack(MetaRequest::RegisterAttrIndex { chunk, attr, index })
    }

    /// See [`MetadataService::chunks_overlapping`].
    pub fn chunks_overlapping(&self, region: &Region) -> Result<Vec<(ChunkId, Region)>> {
        match self.call(MetaRequest::ChunksOverlapping { region: *region })? {
            MetaResponse::Chunks(v) => Ok(v),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::memory_regions_overlapping`].
    pub fn memory_regions_overlapping(&self, region: &Region) -> Result<Vec<(ServerId, Region)>> {
        match self.call(MetaRequest::MemoryRegionsOverlapping { region: *region })? {
            MetaResponse::Regions(v) => Ok(v),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::attr_probe`].
    pub fn attr_probe(&self, chunk: ChunkId, attr: AttrId, value: u64) -> Result<AttrProbe> {
        match self.call(MetaRequest::AttrProbe { chunk, attr, value })? {
            MetaResponse::Probe(p) => Ok(p),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::summary_extent`].
    pub fn summary_extent(&self, chunk: ChunkId) -> Result<Option<SummaryExtent>> {
        match self.call(MetaRequest::SummaryExtent { chunk })? {
            MetaResponse::Extent(e) => Ok(e),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::durable_offset`] — the replay point a
    /// restarted indexing server resumes consuming from (§V).
    pub fn durable_offset(&self, server: ServerId) -> Result<u64> {
        match self.call(MetaRequest::DurableOffset { server })? {
            MetaResponse::Offset(o) => Ok(o),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::partition`].
    pub fn partition(&self) -> Result<Option<PartitionSchema>> {
        match self.call(MetaRequest::Partition)? {
            MetaResponse::Partition(p) => Ok(p),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    fn expect_epoch(&self, req: MetaRequest) -> Result<u64> {
        match self.call(req)? {
            MetaResponse::Epoch(e) => Ok(e),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }

    /// See [`MetadataService::join`].
    pub fn join(
        &self,
        server: ServerId,
        role: MemberRole,
        node: NodeId,
        ttl: Duration,
    ) -> Result<u64> {
        self.expect_epoch(MetaRequest::Join {
            server,
            role,
            node,
            ttl_ms: ttl.as_millis().min(u64::MAX as u128) as u64,
        })
    }

    /// See [`MetadataService::heartbeat`].
    pub fn heartbeat(&self, server: ServerId, ttl: Duration) -> Result<u64> {
        self.expect_epoch(MetaRequest::Heartbeat {
            server,
            ttl_ms: ttl.as_millis().min(u64::MAX as u128) as u64,
        })
    }

    /// See [`MetadataService::leave`].
    pub fn leave(&self, server: ServerId) -> Result<u64> {
        self.expect_epoch(MetaRequest::Leave { server })
    }

    /// See [`MetadataService::set_partition`].
    pub fn set_partition(&self, schema: PartitionSchema) -> Result<()> {
        self.expect_ack(MetaRequest::SetPartition { schema })
    }

    /// See [`MetadataService::membership`].
    pub fn membership(&self) -> Result<MembershipView> {
        match self.call(MetaRequest::Membership)? {
            MetaResponse::Membership(v) => Ok(v),
            _ => Err(WwError::InvalidState(
                "metadata server answered the wrong variant".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, LinkProfile, Transport};
    use std::sync::Arc;
    use waterwheel_core::SystemConfig;

    fn rig() -> (Arc<InProcTransport>, MetaClient, MetadataService) {
        let t = Arc::new(InProcTransport::new(None));
        let meta = MetadataService::in_memory();
        serve_meta(&t, meta.clone());
        let cfg = SystemConfig {
            rpc_retries: 30,
            ..SystemConfig::default()
        };
        let rpc = RpcClient::new(Arc::clone(&t) as Arc<dyn Transport>, ServerId(0), &cfg);
        (t, MetaClient::new(rpc), meta)
    }

    fn region(lo: u64, hi: u64) -> Region {
        Region::new(
            waterwheel_core::KeyInterval::new(lo, hi),
            waterwheel_core::TimeInterval::full(),
        )
    }

    #[test]
    fn stub_round_trips_every_call() {
        let (_t, client, meta) = rig();
        let id = client.allocate_chunk_id().unwrap();
        let info = ChunkInfo {
            region: region(0, 100),
            count: 10,
            bytes: 160,
            producer: ServerId(0),
        };
        client.register_chunk(id, info, 10).unwrap();
        assert_eq!(meta.chunk_count(), 1);

        client
            .update_memory_region(ServerId(0), Some(region(100, 200)))
            .unwrap();
        assert_eq!(
            client
                .memory_regions_overlapping(&region(150, 160))
                .unwrap(),
            vec![(ServerId(0), region(100, 200))]
        );
        client.update_memory_region(ServerId(0), None).unwrap();
        assert!(client
            .memory_regions_overlapping(&region(0, u64::MAX))
            .unwrap()
            .is_empty());

        let overlapping = client.chunks_overlapping(&region(50, 60)).unwrap();
        assert_eq!(overlapping, vec![(id, region(0, 100))]);

        assert!(client.summary_extent(id).unwrap().is_none());
        let extent = SummaryExtent {
            cells: 4,
            bytes: 64,
            levels: 1,
            slice_bits: 4,
            measure_range: Some((7, 99)),
        };
        client.register_summary(id, extent).unwrap();
        assert_eq!(client.summary_extent(id).unwrap(), Some(extent));

        // Probing a chunk with no attr index is Unknown, never Absent.
        assert!(matches!(
            client.attr_probe(id, 1, 42).unwrap(),
            AttrProbe::Unknown
        ));
    }

    #[test]
    fn service_errors_pass_through_untouched() {
        let (t, client, _meta) = rig();
        let info = ChunkInfo {
            region: region(0, 1),
            count: 1,
            bytes: 16,
            producer: ServerId(0),
        };
        // Registering the same id twice fails in the service, and the
        // error arrives as-is (not wrapped as a delivery failure).
        client.register_chunk(ChunkId(99), info, 0).unwrap();
        let e = client.register_chunk(ChunkId(99), info, 0).unwrap_err();
        assert!(!e.is_retryable(), "service answer must not look retryable");
        assert_eq!(t.stats().totals().retried, 0);
    }

    #[test]
    fn membership_calls_round_trip() {
        let (_t, client, meta) = rig();
        let ttl = Duration::from_secs(5);
        let e = client
            .join(ServerId(0), MemberRole::Indexing, NodeId(0), ttl)
            .unwrap();
        assert_eq!(e, 1);
        client
            .join(ServerId(1_000), MemberRole::Query, NodeId(1), ttl)
            .unwrap();
        assert_eq!(client.heartbeat(ServerId(0), ttl).unwrap(), 2);
        let view = client.membership().unwrap();
        assert_eq!(view.epoch, 2);
        assert_eq!(view.indexing_ids(), vec![ServerId(0)]);
        assert_eq!(view.query_ids(), vec![ServerId(1_000)]);
        assert_eq!(client.leave(ServerId(0)).unwrap(), 3);
        // A lapsed (left) member cannot heartbeat; the error is
        // non-retryable so the caller re-joins instead of spinning.
        let err = client.heartbeat(ServerId(0), ttl).unwrap_err();
        assert!(!err.is_retryable());
        assert_eq!(meta.membership_epoch(), 3);
    }

    #[test]
    fn metadata_calls_survive_a_lossy_link() {
        let (t, client, meta) = rig();
        t.set_default_profile(LinkProfile {
            loss: 0.4,
            ..LinkProfile::default()
        });
        for _ in 0..20 {
            let id = client.allocate_chunk_id().unwrap();
            let info = ChunkInfo {
                region: region(id.raw() * 10, id.raw() * 10 + 9),
                count: 1,
                bytes: 16,
                producer: ServerId(0),
            };
            client.register_chunk(id, info, 0).unwrap();
        }
        assert_eq!(meta.chunk_count(), 20);
        assert!(t.stats().totals().retried > 0);
    }
}
