//! Waterwheel message plane: typed RPC envelopes over a pluggable
//! [`Transport`].
//!
//! The paper deploys Waterwheel on Storm (§II-B): dispatchers, indexing
//! servers, query servers, the coordinator, and ZooKeeper are separate
//! processes exchanging messages over a real network — with latency,
//! loss, partitions, and crashed destinations. This crate is that network
//! for the embedded deployment:
//!
//! * [`envelope`] — the typed message taxonomy. Every cross-server call
//!   is a [`Request`] inside an [`Envelope`] (src, dst, rpc id, deadline);
//!   answers are typed [`Response`]s.
//! * [`transport`] — the [`Transport`] seam and [`InProcTransport`], the
//!   in-process implementation with per-link latency/jitter profiles,
//!   injectable loss/partition/cut-off faults, cluster-liveness awareness,
//!   and per-link [`RpcStats`].
//! * [`client`] — [`RpcClient`], the retrying stub: per-attempt deadlines
//!   from [`SystemConfig::rpc_timeout`](waterwheel_core::SystemConfig),
//!   bounded retry with backoff for delivery failures only.
//! * [`meta_client`] — [`MetaClient`] and [`serve_meta`], restoring the
//!   network boundary in front of the metadata service.
//! * [`wire`] — the binary frame codec: every request and response can be
//!   encoded into a length-prefixed, versioned frame and decoded back.
//! * [`reactor`] — the event loop under the TCP layer: a hand-rolled
//!   epoll poller (Linux) driving nonblocking sockets, with incremental
//!   frame assembly on read and buffered flush on write. A fixed number
//!   of shard threads multiplexes every registered socket.
//! * [`tcp`] — [`TcpTransport`] and [`TcpRpcServer`], the same [`Transport`]
//!   seam over real sockets, built on the reactor. One connection per
//!   destination address carries concurrent in-flight RPCs correlated by
//!   id; socket failures map to the same
//!   [`Timeout`](waterwheel_core::WwError::Timeout) /
//!   [`Unreachable`](waterwheel_core::WwError::Unreachable) taxonomy the
//!   in-proc fault injector uses, so the retry layer above is untouched;
//!   server-side overflow sheds with
//!   [`Overloaded`](waterwheel_core::WwError::Overloaded) answers.
//!
//! The [`HandlerRegistry`] is the hinge between the two deployments: the
//! embedded system binds its servers once, and either an
//! [`InProcTransport`] delivers to them directly or a [`TcpRpcServer`]
//! serves the identical registry to remote peers.

#![warn(missing_docs)]

pub mod client;
pub mod envelope;
pub mod meta_client;
pub mod reactor;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use client::RpcClient;
pub use envelope::{
    Envelope, MetaRequest, MetaResponse, Request, Response, COORDINATOR, META_SERVER,
};
pub use meta_client::{serve_meta, MetaClient};
pub use reactor::{ConnHandle, FrameAssembler, ListenerHandle, Reactor, Sink};
pub use tcp::{
    TcpClientOptions, TcpRpcServer, TcpServerOptions, TcpTransport, WireStats, WireTotals,
};
pub use transport::{
    AdmissionControl, AdmissionPermit, Handler, HandlerHost, HandlerRegistry, InProcTransport,
    LatencyHistogram, LatencySnapshot, LinkProfile, RpcStats, RpcStatsRegistry, RpcTotals,
    Transport,
};
