//! Waterwheel message plane: typed RPC envelopes over a pluggable
//! [`Transport`].
//!
//! The paper deploys Waterwheel on Storm (§II-B): dispatchers, indexing
//! servers, query servers, the coordinator, and ZooKeeper are separate
//! processes exchanging messages over a real network — with latency,
//! loss, partitions, and crashed destinations. This crate is that network
//! for the embedded deployment:
//!
//! * [`envelope`] — the typed message taxonomy. Every cross-server call
//!   is a [`Request`] inside an [`Envelope`] (src, dst, rpc id, deadline);
//!   answers are typed [`Response`]s.
//! * [`transport`] — the [`Transport`] seam and [`InProcTransport`], the
//!   in-process implementation with per-link latency/jitter profiles,
//!   injectable loss/partition/cut-off faults, cluster-liveness awareness,
//!   and per-link [`RpcStats`].
//! * [`client`] — [`RpcClient`], the retrying stub: per-attempt deadlines
//!   from [`SystemConfig::rpc_timeout`](waterwheel_core::SystemConfig),
//!   bounded retry with backoff for delivery failures only.
//! * [`meta_client`] — [`MetaClient`] and [`serve_meta`], restoring the
//!   network boundary in front of the metadata service.
//!
//! Swapping [`InProcTransport`] for a `TcpTransport` implementing the same
//! trait is what stands between this system and real processes.

#![warn(missing_docs)]

pub mod client;
pub mod envelope;
pub mod meta_client;
pub mod transport;

pub use client::RpcClient;
pub use envelope::{
    Envelope, MetaRequest, MetaResponse, Request, Response, COORDINATOR, META_SERVER,
};
pub use meta_client::{serve_meta, MetaClient};
pub use transport::{
    Handler, InProcTransport, LinkProfile, RpcStats, RpcStatsRegistry, RpcTotals, Transport,
};
