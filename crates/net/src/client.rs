//! Retrying RPC client: deadlines, bounded retry with backoff, stats.
//!
//! An [`RpcClient`] is one sender's handle onto the message plane. Each
//! `call` stamps a fresh per-attempt deadline from
//! [`SystemConfig::rpc_timeout`], and retries **only** delivery failures
//! ([`WwError::is_retryable`]: timeout/unreachable/overloaded) up to
//! [`SystemConfig::rpc_retries`] extra attempts, sleeping a *jittered*
//! `rpc_backoff × attempt` between them — the jitter (a uniform factor in
//! `[0.5, 1.5)`) decorrelates the retry storms of many clients that failed
//! at the same instant. When the destination shed the request with
//! [`WwError::Overloaded`], its retry-after hint becomes the floor of the
//! sleep, so retries respect the server's own estimate of when capacity
//! returns. Errors produced by the destination itself (an injected crash,
//! a missing chunk) are answers, not delivery failures, and propagate
//! immediately.
//!
//! Every completed call (answered or failed) is also recorded in the
//! transport's per-request-kind latency histograms
//! ([`RpcStatsRegistry::latency_snapshot`](crate::RpcStatsRegistry)), so
//! `SystemMetrics` can report p50/p95/p99 per RPC kind.
//!
//! A retried attempt is *usually* a fresh delivery: most injected faults
//! (loss, late transit, partitions) fail the attempt before the handler
//! ran. But [`LinkProfile::response_loss`](crate::LinkProfile) loses the
//! ack *after* the handler ran, so a retry can redeliver a request whose
//! side effects already happened — at-least-once delivery. Handlers with
//! side effects must therefore be idempotent; the ingest-batch handler
//! dedups on the batch sequence number carried in
//! [`Request::IngestBatch`](crate::Request::IngestBatch) for exactly this
//! reason.

use crate::envelope::{Envelope, Request, Response};
use crate::transport::Transport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_core::{Result, ServerId, SystemConfig};

/// A sender's handle onto the message plane; cheap to clone.
#[derive(Clone)]
pub struct RpcClient {
    transport: Arc<dyn Transport>,
    src: ServerId,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
    next_rpc_id: Arc<AtomicU64>,
}

impl RpcClient {
    /// A client sending as `src` with the config's deadline/retry policy.
    pub fn new(transport: Arc<dyn Transport>, src: ServerId, cfg: &SystemConfig) -> Self {
        Self {
            transport,
            src,
            timeout: cfg.rpc_timeout,
            retries: cfg.rpc_retries,
            backoff: cfg.rpc_backoff,
            next_rpc_id: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The address this client sends as.
    pub fn src(&self) -> ServerId {
        self.src
    }

    /// The underlying transport (for stats and fault injection).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Sends `req` to `dst`, retrying delivery failures per the policy.
    /// The whole call (retries included) is recorded in the transport's
    /// per-kind latency histogram.
    pub fn call(&self, dst: ServerId, req: Request) -> Result<Response> {
        let started = Instant::now();
        let kind = req.kind();
        let result = self.call_inner(dst, req);
        self.transport
            .stats()
            .record_latency(kind, started.elapsed());
        result
    }

    fn call_inner(&self, dst: ServerId, req: Request) -> Result<Response> {
        let rpc_id = self.next_rpc_id.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            let env = Envelope {
                src: self.src,
                dst,
                rpc_id,
                deadline: Instant::now() + self.timeout,
                payload: req.clone(),
            };
            match self.transport.send(env) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() && attempt < self.retries => {
                    attempt += 1;
                    self.transport
                        .stats()
                        .link(self.src, dst)
                        .retried
                        .fetch_add(1, Ordering::Relaxed);
                    // An overloaded destination's retry-after hint floors
                    // the backoff: never poke it sooner than it asked.
                    let base = (self.backoff * attempt).max(e.retry_after().unwrap_or_default());
                    if !base.is_zero() {
                        let seed = rpc_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt);
                        std::thread::sleep(base.mul_f64(jitter_factor(seed)));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether `dst` currently answers a liveness probe.
    pub fn ping(&self, dst: ServerId) -> bool {
        matches!(self.call(dst, Request::Ping), Ok(Response::Pong))
    }
}

/// A uniform backoff multiplier in `[0.5, 1.5)` from a SplitMix64 draw,
/// so simultaneous failures don't retry in lockstep.
fn jitter_factor(seed: u64) -> f64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, LinkProfile};
    use waterwheel_core::WwError;

    fn rig(retries: u32) -> (Arc<InProcTransport>, RpcClient) {
        let t = Arc::new(InProcTransport::new(None));
        let cfg = SystemConfig {
            rpc_retries: retries,
            ..SystemConfig::default()
        };
        let client = RpcClient::new(Arc::clone(&t) as Arc<dyn Transport>, ServerId(0), &cfg);
        (t, client)
    }

    #[test]
    fn retries_mask_transient_loss() {
        let (t, client) = rig(30);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t.set_default_profile(LinkProfile {
            loss: 0.5,
            ..LinkProfile::default()
        });
        // With 30 retries a 50% loss link still answers every call
        // (P(fail) = 0.5^31 per call).
        for _ in 0..50 {
            client.call(ServerId(1), Request::Ping).unwrap();
        }
        let totals = t.stats().totals();
        assert!(totals.retried > 0, "some attempts must have been retried");
        assert_eq!(totals.retried, totals.timed_out);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let (t, client) = rig(2);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t.set_default_profile(LinkProfile {
            loss: 1.0,
            ..LinkProfile::default()
        });
        let e = client.call(ServerId(1), Request::Ping).unwrap_err();
        assert!(matches!(e, WwError::Timeout(_)));
        let totals = t.stats().totals();
        assert_eq!(totals.sent, 3, "1 attempt + 2 retries");
        assert_eq!(totals.retried, 2);
    }

    #[test]
    fn destination_errors_are_not_retried() {
        let (t, client) = rig(5);
        t.bind(ServerId(1), |_| Err(WwError::Injected("server down")));
        let e = client.call(ServerId(1), Request::Ping).unwrap_err();
        assert!(matches!(e, WwError::Injected(_)));
        assert_eq!(t.stats().totals().sent, 1, "answers are never retried");
        assert_eq!(t.stats().totals().retried, 0);
    }

    #[test]
    fn ping_reports_liveness() {
        let (t, client) = rig(0);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t.bind(ServerId(2), |_| Err(WwError::Injected("crashed")));
        assert!(client.ping(ServerId(1)));
        assert!(!client.ping(ServerId(2)), "crashed server fails the probe");
        assert!(!client.ping(ServerId(9)), "unbound address fails the probe");
    }

    #[test]
    fn jittered_backoff_stays_within_half_to_three_halves() {
        for seed in 0..4096u64 {
            let f = jitter_factor(seed);
            assert!((0.5..1.5).contains(&f), "seed {seed} drew {f}");
        }
        // And it actually varies.
        assert_ne!(jitter_factor(1), jitter_factor(2));
    }

    #[test]
    fn overloaded_retries_wait_at_least_half_the_hint() {
        let (t, client) = rig(3);
        let calls = Arc::new(AtomicU64::new(0));
        let n = Arc::clone(&calls);
        t.bind(ServerId(1), move |_| {
            if n.fetch_add(1, Ordering::Relaxed) == 0 {
                Err(WwError::Overloaded {
                    retry_after: Duration::from_millis(80),
                })
            } else {
                Ok(Response::Pong)
            }
        });
        let started = Instant::now();
        client.call(ServerId(1), Request::Ping).unwrap();
        // The jittered sleep is at least 0.5 × the 80ms retry-after hint.
        assert!(
            started.elapsed() >= Duration::from_millis(40),
            "retry must respect the shed hint, took {:?}",
            started.elapsed()
        );
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn calls_record_latency_per_request_kind() {
        let (t, client) = rig(0);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        client.call(ServerId(1), Request::Ping).unwrap();
        client.call(ServerId(1), Request::Ping).unwrap();
        client.call(ServerId(1), Request::Flush).unwrap();
        let snap = t.stats().latency_snapshot();
        let ping = snap.iter().find(|s| s.kind == "ping").expect("ping row");
        assert_eq!(ping.count, 2);
        assert!(ping.p99 >= ping.p50);
        assert!(snap.iter().any(|s| s.kind == "flush" && s.count == 1));
    }

    #[test]
    fn rpc_ids_are_unique_but_stable_across_retries() {
        let (t, client) = rig(3);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        t.bind(ServerId(1), move |env| {
            s.lock().push(env.rpc_id);
            Ok(Response::Pong)
        });
        client.call(ServerId(1), Request::Ping).unwrap();
        client.call(ServerId(1), Request::Ping).unwrap();
        let ids = seen.lock().clone();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }
}
