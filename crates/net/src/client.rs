//! Retrying RPC client: deadlines, bounded retry with backoff, stats.
//!
//! An [`RpcClient`] is one sender's handle onto the message plane. Each
//! `call` stamps a fresh per-attempt deadline from
//! [`SystemConfig::rpc_timeout`], and retries **only** delivery failures
//! ([`WwError::is_retryable`]: timeout/unreachable) up to
//! [`SystemConfig::rpc_retries`] extra attempts, sleeping
//! `rpc_backoff × attempt` between them. Errors produced by the
//! destination itself (an injected crash, a missing chunk) are answers,
//! not delivery failures, and propagate immediately.
//!
//! A retried attempt is *usually* a fresh delivery: most injected faults
//! (loss, late transit, partitions) fail the attempt before the handler
//! ran. But [`LinkProfile::response_loss`](crate::LinkProfile) loses the
//! ack *after* the handler ran, so a retry can redeliver a request whose
//! side effects already happened — at-least-once delivery. Handlers with
//! side effects must therefore be idempotent; the ingest-batch handler
//! dedups on the batch sequence number carried in
//! [`Request::IngestBatch`](crate::Request::IngestBatch) for exactly this
//! reason.

use crate::envelope::{Envelope, Request, Response};
use crate::transport::Transport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use waterwheel_core::{Result, ServerId, SystemConfig};

/// A sender's handle onto the message plane; cheap to clone.
#[derive(Clone)]
pub struct RpcClient {
    transport: Arc<dyn Transport>,
    src: ServerId,
    timeout: Duration,
    retries: u32,
    backoff: Duration,
    next_rpc_id: Arc<AtomicU64>,
}

impl RpcClient {
    /// A client sending as `src` with the config's deadline/retry policy.
    pub fn new(transport: Arc<dyn Transport>, src: ServerId, cfg: &SystemConfig) -> Self {
        Self {
            transport,
            src,
            timeout: cfg.rpc_timeout,
            retries: cfg.rpc_retries,
            backoff: cfg.rpc_backoff,
            next_rpc_id: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The address this client sends as.
    pub fn src(&self) -> ServerId {
        self.src
    }

    /// The underlying transport (for stats and fault injection).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Sends `req` to `dst`, retrying delivery failures per the policy.
    pub fn call(&self, dst: ServerId, req: Request) -> Result<Response> {
        let rpc_id = self.next_rpc_id.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            let env = Envelope {
                src: self.src,
                dst,
                rpc_id,
                deadline: Instant::now() + self.timeout,
                payload: req.clone(),
            };
            match self.transport.send(env) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() && attempt < self.retries => {
                    attempt += 1;
                    self.transport
                        .stats()
                        .link(self.src, dst)
                        .retried
                        .fetch_add(1, Ordering::Relaxed);
                    if !self.backoff.is_zero() {
                        std::thread::sleep(self.backoff * attempt);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether `dst` currently answers a liveness probe.
    pub fn ping(&self, dst: ServerId) -> bool {
        matches!(self.call(dst, Request::Ping), Ok(Response::Pong))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, LinkProfile};
    use waterwheel_core::WwError;

    fn rig(retries: u32) -> (Arc<InProcTransport>, RpcClient) {
        let t = Arc::new(InProcTransport::new(None));
        let cfg = SystemConfig {
            rpc_retries: retries,
            ..SystemConfig::default()
        };
        let client = RpcClient::new(Arc::clone(&t) as Arc<dyn Transport>, ServerId(0), &cfg);
        (t, client)
    }

    #[test]
    fn retries_mask_transient_loss() {
        let (t, client) = rig(30);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t.set_default_profile(LinkProfile {
            loss: 0.5,
            ..LinkProfile::default()
        });
        // With 30 retries a 50% loss link still answers every call
        // (P(fail) = 0.5^31 per call).
        for _ in 0..50 {
            client.call(ServerId(1), Request::Ping).unwrap();
        }
        let totals = t.stats().totals();
        assert!(totals.retried > 0, "some attempts must have been retried");
        assert_eq!(totals.retried, totals.timed_out);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let (t, client) = rig(2);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t.set_default_profile(LinkProfile {
            loss: 1.0,
            ..LinkProfile::default()
        });
        let e = client.call(ServerId(1), Request::Ping).unwrap_err();
        assert!(matches!(e, WwError::Timeout(_)));
        let totals = t.stats().totals();
        assert_eq!(totals.sent, 3, "1 attempt + 2 retries");
        assert_eq!(totals.retried, 2);
    }

    #[test]
    fn destination_errors_are_not_retried() {
        let (t, client) = rig(5);
        t.bind(ServerId(1), |_| Err(WwError::Injected("server down")));
        let e = client.call(ServerId(1), Request::Ping).unwrap_err();
        assert!(matches!(e, WwError::Injected(_)));
        assert_eq!(t.stats().totals().sent, 1, "answers are never retried");
        assert_eq!(t.stats().totals().retried, 0);
    }

    #[test]
    fn ping_reports_liveness() {
        let (t, client) = rig(0);
        t.bind(ServerId(1), |_| Ok(Response::Pong));
        t.bind(ServerId(2), |_| Err(WwError::Injected("crashed")));
        assert!(client.ping(ServerId(1)));
        assert!(!client.ping(ServerId(2)), "crashed server fails the probe");
        assert!(!client.ping(ServerId(9)), "unbound address fails the probe");
    }

    #[test]
    fn rpc_ids_are_unique_but_stable_across_retries() {
        let (t, client) = rig(3);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        t.bind(ServerId(1), move |env| {
            s.lock().push(env.rpc_id);
            Ok(Response::Pong)
        });
        client.call(ServerId(1), Request::Ping).unwrap();
        client.call(ServerId(1), Request::Ping).unwrap();
        let ids = seen.lock().clone();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
    }
}
