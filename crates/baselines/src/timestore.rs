//! Druid-like baseline: time-partitioned segments with inverted indexes
//! (paper §VI-D, Table I).
//!
//! What the paper credits/blames Druid for, preserved here:
//!
//! * data is partitioned into **time segments**, so temporal pruning is
//!   excellent — query latency is "high but stable as the selectivity of
//!   key domain varies";
//! * per-segment **inverted indexes on exact key values** are built at
//!   ingest (Druid's bitmap indexes) — real per-tuple work, but useless for
//!   *range* predicates: "Druid only supports inverted indexes and thus
//!   cannot execute key range query efficiently". A range query scans every
//!   tuple of every temporally-qualifying segment;
//! * every write is journalled (WAL), like Druid's realtime task journal.

use crate::wal::WriteAheadLog;
use crate::StreamStore;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use waterwheel_cluster::LatencyModel;
use waterwheel_core::{Key, KeyInterval, TimeInterval, Timestamp, Tuple};

/// TimeStore tuning knobs.
#[derive(Clone, Debug)]
pub struct TimeStoreConfig {
    /// Segment width in milliseconds (Druid's `segmentGranularity`).
    pub segment_ms: u64,
    /// WAL file path.
    pub wal_path: PathBuf,
    /// Per-group-commit remote durability cost (HDFS hflush pipeline /
    /// journal hand-off); zero by default.
    pub wal_commit_latency: std::time::Duration,
    /// Storage-access model for query-time segment reads. Druid historicals
    /// read segments from deep storage / local segment cache; charging each
    /// consulted segment one access puts the baseline on the same simulated
    /// substrate as Waterwheel's chunks. Default: free.
    pub scan_latency: LatencyModel,
}

static NEXT_WAL: AtomicUsize = AtomicUsize::new(0);

impl Default for TimeStoreConfig {
    fn default() -> Self {
        Self {
            segment_ms: 60_000,
            wal_path: std::env::temp_dir().join(format!(
                "ww-timestore-{}-{}.wal",
                std::process::id(),
                NEXT_WAL.fetch_add(1, Ordering::Relaxed)
            )),
            scan_latency: LatencyModel::default(),
            wal_commit_latency: std::time::Duration::ZERO,
        }
    }
}

/// One time segment: rows plus an inverted index on exact key values.
#[derive(Default)]
struct Segment {
    rows: Vec<Tuple>,
    /// Exact-value inverted index (Druid's bitmap index analogue). Built at
    /// ingest; consulted only for point (exact-key) lookups.
    inverted: HashMap<Key, Vec<u32>>,
}

impl Segment {
    fn insert(&mut self, tuple: Tuple) {
        let row_id = self.rows.len() as u32;
        self.inverted.entry(tuple.key).or_default().push(row_id);
        self.rows.push(tuple);
    }
}

/// The Druid-like time-partitioned store.
pub struct TimeStore {
    cfg: TimeStoreConfig,
    wal: WriteAheadLog,
    segments: RwLock<HashMap<u64, Segment>>,
    count: AtomicUsize,
    /// Tuples scanned by queries (key-filter misses included).
    tuples_read: AtomicU64,
}

impl TimeStore {
    /// Creates a store with the given configuration.
    pub fn new(cfg: TimeStoreConfig) -> waterwheel_core::Result<Self> {
        let wal = WriteAheadLog::with_commit_latency(&cfg.wal_path, cfg.wal_commit_latency)?;
        Ok(Self {
            cfg,
            wal,
            segments: RwLock::new(HashMap::new()),
            count: AtomicUsize::new(0),
            tuples_read: AtomicU64::new(0),
        })
    }

    /// Creates a store with default settings.
    pub fn with_defaults() -> waterwheel_core::Result<Self> {
        Self::new(TimeStoreConfig::default())
    }

    fn segment_of(&self, ts: Timestamp) -> u64 {
        ts / self.cfg.segment_ms
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments.read().len()
    }

    /// Tuples scanned by queries so far.
    pub fn tuples_read(&self) -> u64 {
        self.tuples_read.load(Ordering::Relaxed)
    }

    /// The ids of live segments overlapping `times`, in ascending order.
    ///
    /// Enumerates the (sparse) live-segment set rather than the dense id
    /// range: a wide time constraint (e.g. the full domain) would otherwise
    /// walk ~2⁶⁴/granularity ids.
    fn qualifying_segments(segments: &HashMap<u64, Segment>, lo_seg: u64, hi_seg: u64) -> Vec<u64> {
        let mut ids: Vec<u64> = segments
            .keys()
            .copied()
            .filter(|&id| id >= lo_seg && id <= hi_seg)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Exact-key lookup through the inverted index — the query shape Druid
    /// *is* good at, provided for contrast in the benches.
    pub fn point_lookup(&self, key: Key, times: &TimeInterval) -> Vec<Tuple> {
        let segments = self.segments.read();
        let mut out = Vec::new();
        let (lo, hi) = (self.segment_of(times.lo()), self.segment_of(times.hi()));
        for seg_id in Self::qualifying_segments(&segments, lo, hi) {
            let seg = &segments[&seg_id];
            if let Some(rows) = seg.inverted.get(&key) {
                for &r in rows {
                    let t = &seg.rows[r as usize];
                    if times.contains(t.ts) {
                        out.push(t.clone());
                    }
                }
            }
        }
        out
    }
}

impl StreamStore for TimeStore {
    fn insert(&self, tuple: Tuple) {
        self.wal.append(&tuple).expect("WAL append failed");
        let seg_id = self.segment_of(tuple.ts);
        self.segments
            .write()
            .entry(seg_id)
            .or_default()
            .insert(tuple);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Range query: prune segments by time, then **full-scan** the
    /// survivors — the inverted index cannot answer range predicates.
    fn query(&self, keys: &KeyInterval, times: &TimeInterval) -> Vec<Tuple> {
        let segments = self.segments.read();
        let mut out = Vec::new();
        let mut read = 0usize;
        let (lo, hi) = (self.segment_of(times.lo()), self.segment_of(times.hi()));
        for seg_id in Self::qualifying_segments(&segments, lo, hi) {
            let seg = &segments[&seg_id];
            // One segment access per qualifying segment, plus scanned bytes.
            self.cfg.scan_latency.charge(seg.rows.len() * 50, false);
            for t in &seg.rows {
                read += 1;
                if times.contains(t.ts) && keys.contains(t.key) {
                    out.push(t.clone());
                }
            }
        }
        self.tuples_read.fetch_add(read as u64, Ordering::Relaxed);
        out
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "timestore (druid-like)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(segment_ms: u64) -> TimeStore {
        TimeStore::new(TimeStoreConfig {
            segment_ms,
            ..TimeStoreConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn insert_query_roundtrip() {
        let s = store(1_000);
        for i in 0..500u64 {
            s.insert(Tuple::bare(i, i * 10));
        }
        assert_eq!(s.len(), 500);
        let hits = s.query(&KeyInterval::full(), &TimeInterval::new(1_000, 2_000));
        assert_eq!(hits.len(), 101);
        let hits = s.query(&KeyInterval::new(0, 50), &TimeInterval::new(1_000, 2_000));
        assert_eq!(hits.len(), 0); // keys 100..=200 own that time range
    }

    #[test]
    fn segments_partition_by_time() {
        let s = store(1_000);
        for i in 0..100u64 {
            s.insert(Tuple::bare(1, i * 100));
        }
        // 100 tuples spread over ts 0..9900 → 10 segments of 1000 ms.
        assert_eq!(s.segment_count(), 10);
    }

    #[test]
    fn temporal_pruning_reads_only_qualifying_segments() {
        let s = store(1_000);
        for i in 0..1_000u64 {
            s.insert(Tuple::bare(i, i * 10));
        }
        let before = s.tuples_read();
        let hits = s.query(&KeyInterval::full(), &TimeInterval::new(0, 999));
        assert_eq!(hits.len(), 100);
        let read = s.tuples_read() - before;
        assert!(read <= 100, "read {read} tuples from pruned segments");
    }

    #[test]
    fn key_range_queries_scan_everything_in_time_range() {
        // The Druid weakness: a narrow key range still scans all
        // temporally-qualifying tuples.
        let s = store(1_000_000);
        for i in 0..1_000u64 {
            s.insert(Tuple::bare(i, 10));
        }
        let before = s.tuples_read();
        let hits = s.query(&KeyInterval::new(0, 9), &TimeInterval::new(0, 100));
        assert_eq!(hits.len(), 10);
        assert!(s.tuples_read() - before >= 1_000);
    }

    #[test]
    fn point_lookup_uses_inverted_index() {
        let s = store(1_000);
        for i in 0..300u64 {
            s.insert(Tuple::bare(i % 10, i * 10));
        }
        let hits = s.point_lookup(7, &TimeInterval::full());
        assert_eq!(hits.len(), 30);
        assert!(hits.iter().all(|t| t.key == 7));
    }

    #[test]
    fn duplicates_are_preserved() {
        let s = store(1_000);
        for i in 0..64u64 {
            s.insert(Tuple::bare(5, 100 + i));
        }
        assert_eq!(
            s.query(&KeyInterval::point(5), &TimeInterval::full()).len(),
            64
        );
    }
}
