//! Comparator systems for the overall evaluation (paper §VI-D).
//!
//! The paper compares Waterwheel against HBase and Druid. Neither can run
//! here (JVM clusters), so this crate reimplements the *mechanisms the paper
//! credits for their behaviour* — not the full systems:
//!
//! * [`LsmStore`] (HBase-like): a write-ahead log, a sorted memtable, and
//!   size-tiered compaction of sorted runs. Key-range scans are efficient;
//!   **temporal predicates are not indexed**, so a query must read every
//!   key-qualifying tuple ("all tuples satisfying the key range constraint
//!   must be read and tested against the temporal constraint"). Compaction
//!   repeatedly rewrites data, capping insert throughput ("updates still
//!   need to be merged with historical data").
//! * [`TimeStore`] (Druid-like): a WAL plus time-partitioned segments with
//!   per-segment inverted indexes built at ingest. Temporal pruning is
//!   excellent; **key ranges are not first-class** — an inverted index maps
//!   exact values, not ranges, so a range query degenerates to a full scan
//!   of the temporally-qualifying segments ("due to the lack of support of
//!   range indexes in Druid, all tuples satisfying the temporal constraint
//!   should be read and verified against the key range constraint").
//!
//! Both implement [`StreamStore`], the interface the Figure 14–16 harnesses
//! drive; the Waterwheel system facade implements it too.

#![warn(missing_docs)]

pub mod lsm;
pub mod timestore;
pub mod wal;

pub use lsm::{LsmConfig, LsmStore};
pub use timestore::{TimeStore, TimeStoreConfig};
pub use wal::WriteAheadLog;

use waterwheel_core::{KeyInterval, TimeInterval, Tuple};

/// The system-level interface of the Figure 14–16 comparison harnesses.
pub trait StreamStore: Send + Sync {
    /// Ingests one tuple.
    fn insert(&self, tuple: Tuple);

    /// Answers a key+time range query.
    fn query(&self, keys: &KeyInterval, times: &TimeInterval) -> Vec<Tuple>;

    /// Tuples ingested so far.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display name for benchmark tables.
    fn name(&self) -> &'static str;
}
