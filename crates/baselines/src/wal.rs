//! A file-backed write-ahead log shared by the baseline stores.
//!
//! HBase journals every mutation to the HDFS WAL before acknowledging it,
//! and Druid's realtime tasks journal to local disk; that per-write
//! journalling is a real component of the ingest cost the paper measures
//! against. Waterwheel itself has no WAL — it relies on the replayable
//! input queue (paper §V) — so giving the baselines their WAL (and not
//! Waterwheel) preserves the paper's cost asymmetry honestly.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::time::Duration;
use waterwheel_core::codec::{self};
use waterwheel_core::{Result, Tuple};

/// Group-commit size: records buffered before the batch is made durable.
const FLUSH_EVERY: usize = 256;

struct WalInner {
    writer: BufWriter<File>,
    pending: usize,
    appended: u64,
}

/// An append-only tuple journal.
pub struct WriteAheadLog {
    inner: Mutex<WalInner>,
    path: PathBuf,
    /// Modelled cost of making one group commit durable *remotely*: HBase's
    /// WAL hflush traverses the HDFS replica pipeline, Druid's journal +
    /// segment hand-off pay similar round trips. Charged on top of the
    /// local fdatasync. Zero by default (unit tests).
    commit_latency: Duration,
}

impl WriteAheadLog {
    /// Creates (truncating) a WAL at `path`.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self> {
        Self::with_commit_latency(path, Duration::ZERO)
    }

    /// Creates a WAL whose group commits additionally pay `commit_latency`
    /// (the remote-pipeline model used by the system-comparison benches).
    pub fn with_commit_latency(path: impl Into<PathBuf>, commit_latency: Duration) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self {
            inner: Mutex::new(WalInner {
                writer: BufWriter::new(file),
                pending: 0,
                appended: 0,
            }),
            path,
            commit_latency,
        })
    }

    /// Appends one tuple, flushing to the OS every [`FLUSH_EVERY`] records
    /// (group commit).
    pub fn append(&self, tuple: &Tuple) -> Result<()> {
        let mut inner = self.inner.lock();
        let mut buf = Vec::with_capacity(tuple.encoded_len());
        codec::encode_tuple(&mut buf, tuple);
        inner.writer.write_all(&buf)?;
        inner.pending += 1;
        inner.appended += 1;
        if inner.pending >= FLUSH_EVERY {
            inner.writer.flush()?;
            // Durability point: HBase acknowledges a batch only after the
            // WAL is hflush'd through the HDFS replica pipeline, and Druid's
            // realtime tasks fsync their journal — a real per-batch cost the
            // paper's Figure 15 baselines pay and ours must too.
            inner.writer.get_ref().sync_data()?;
            if !self.commit_latency.is_zero() {
                std::thread::sleep(self.commit_latency);
            }
            inner.pending = 0;
        }
        Ok(())
    }

    /// Forces buffered records to the OS.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        inner.pending = 0;
        Ok(())
    }

    /// Records appended since creation.
    pub fn appended(&self) -> u64 {
        self.inner.lock().appended
    }

    /// The journal's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ww-wal-{name}-{}.log", std::process::id()))
    }

    #[test]
    fn appends_are_counted_and_flushed() {
        let wal = WriteAheadLog::create(tmp("count")).unwrap();
        for i in 0..600u64 {
            wal.append(&Tuple::bare(i, i)).unwrap();
        }
        assert_eq!(wal.appended(), 600);
        wal.flush().unwrap();
        let len = std::fs::metadata(wal.path()).unwrap().len();
        assert_eq!(len, 600 * Tuple::bare(0, 0).encoded_len() as u64);
    }

    #[test]
    fn create_truncates_existing() {
        let path = tmp("truncate");
        {
            let wal = WriteAheadLog::create(&path).unwrap();
            wal.append(&Tuple::bare(1, 1)).unwrap();
            wal.flush().unwrap();
        }
        let wal = WriteAheadLog::create(&path).unwrap();
        wal.flush().unwrap();
        assert_eq!(std::fs::metadata(wal.path()).unwrap().len(), 0);
        assert_eq!(wal.appended(), 0);
    }
}
