//! HBase-like baseline: an LSM store with WAL, memtable and size-tiered
//! compaction (paper §VI-D, Table I).
//!
//! What the paper measures against HBase and what this reimplementation
//! preserves:
//!
//! * tuples are kept as a **key-sorted map**, so key-range scans are cheap;
//! * there is **no temporal index**: a query reads every tuple matching the
//!   key range and tests it against the temporal constraint, so latency
//!   grows with key selectivity (Figures 14/16: "as the selectivity of key
//!   domain increases, the performance gap … widens");
//! * every write is journalled (WAL) and periodically **merged with
//!   historical data** by compaction, which caps insert throughput
//!   (Figure 15: "updates still need to be merged with historical data,
//!   resulting in significant data merging overhead").

use crate::wal::WriteAheadLog;
use crate::StreamStore;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use waterwheel_cluster::LatencyModel;
use waterwheel_core::{Key, KeyInterval, TimeInterval, Timestamp, Tuple};

/// LSM tuning knobs.
#[derive(Clone, Debug)]
pub struct LsmConfig {
    /// Memtable flush threshold in tuples.
    pub memtable_limit: usize,
    /// Size-tiered trigger: merge when this many runs share a size tier.
    pub tier_fanout: usize,
    /// WAL file path.
    pub wal_path: PathBuf,
    /// Per-group-commit remote durability cost (HDFS hflush pipeline /
    /// journal hand-off); zero by default.
    pub wal_commit_latency: std::time::Duration,
    /// Storage-access model for query-time run reads. HBase regions read
    /// HFiles from HDFS; charging each consulted sorted run one access (plus
    /// bandwidth over the scanned bytes) puts the baseline on the same
    /// simulated substrate as Waterwheel's chunks. Default: free.
    pub scan_latency: LatencyModel,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            memtable_limit: 8_192,
            tier_fanout: 4,
            wal_path: std::env::temp_dir().join(format!(
                "ww-lsm-{}-{}.wal",
                std::process::id(),
                // Distinguish multiple stores in one process.
                NEXT_WAL.fetch_add(1, Ordering::Relaxed)
            )),
            scan_latency: LatencyModel::default(),
            wal_commit_latency: std::time::Duration::ZERO,
        }
    }
}

static NEXT_WAL: AtomicUsize = AtomicUsize::new(0);

/// A sorted immutable run: tuples ordered by `(key, ts)`.
struct SortedRun {
    tuples: Vec<Tuple>,
}

impl SortedRun {
    fn scan(&self, keys: &KeyInterval, times: &TimeInterval, out: &mut Vec<Tuple>) -> usize {
        let start = self.tuples.partition_point(|t| t.key < keys.lo());
        let mut read = 0;
        for t in &self.tuples[start..] {
            if t.key > keys.hi() {
                break;
            }
            read += 1;
            if times.contains(t.ts) {
                out.push(t.clone());
            }
        }
        read
    }
}

struct LsmState {
    /// Key-sorted memtable; the `u64` sequence disambiguates duplicates.
    memtable: BTreeMap<(Key, Timestamp, u64), Tuple>,
    seq: u64,
    runs: Vec<SortedRun>,
}

/// The HBase-like LSM store.
pub struct LsmStore {
    cfg: LsmConfig,
    wal: WriteAheadLog,
    state: RwLock<LsmState>,
    count: AtomicUsize,
    /// Tuples rewritten by compaction — the write-amplification meter.
    merged_tuples: AtomicU64,
    /// Tuples read (including temporal-filter misses) by queries.
    tuples_read: AtomicU64,
}

impl LsmStore {
    /// Creates a store with the given configuration.
    pub fn new(cfg: LsmConfig) -> waterwheel_core::Result<Self> {
        let wal = WriteAheadLog::with_commit_latency(&cfg.wal_path, cfg.wal_commit_latency)?;
        Ok(Self {
            cfg,
            wal,
            state: RwLock::new(LsmState {
                memtable: BTreeMap::new(),
                seq: 0,
                runs: Vec::new(),
            }),
            count: AtomicUsize::new(0),
            merged_tuples: AtomicU64::new(0),
            tuples_read: AtomicU64::new(0),
        })
    }

    /// Creates a store with default settings.
    pub fn with_defaults() -> waterwheel_core::Result<Self> {
        Self::new(LsmConfig::default())
    }

    /// Tuples rewritten by compaction so far (write amplification).
    pub fn merged_tuples(&self) -> u64 {
        self.merged_tuples.load(Ordering::Relaxed)
    }

    /// Tuples scanned by queries (including ones failing the time filter).
    pub fn tuples_read(&self) -> u64 {
        self.tuples_read.load(Ordering::Relaxed)
    }

    /// Current number of sorted runs (diagnostics).
    pub fn run_count(&self) -> usize {
        self.state.read().runs.len()
    }

    /// Flushes the memtable into a sorted run and compacts if needed.
    pub fn flush_memtable(&self) {
        let mut state = self.state.write();
        if state.memtable.is_empty() {
            return;
        }
        let memtable = std::mem::take(&mut state.memtable);
        let tuples: Vec<Tuple> = memtable.into_values().collect();
        state.runs.push(SortedRun { tuples });
        self.maybe_compact(&mut state);
    }

    /// Size-tiered compaction: whenever `tier_fanout` runs fall in the same
    /// size tier (powers of `tier_fanout` × memtable_limit), merge them.
    fn maybe_compact(&self, state: &mut LsmState) {
        loop {
            // Group runs by size tier.
            let tier_of = |len: usize| -> u32 {
                let base = self.cfg.memtable_limit.max(1);
                let mut tier = 0;
                let mut cap = base * self.cfg.tier_fanout;
                let mut l = len;
                while l > cap {
                    tier += 1;
                    l /= self.cfg.tier_fanout;
                    cap = cap.saturating_mul(self.cfg.tier_fanout);
                }
                tier
            };
            let mut by_tier: std::collections::HashMap<u32, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, run) in state.runs.iter().enumerate() {
                by_tier
                    .entry(tier_of(run.tuples.len()))
                    .or_default()
                    .push(i);
            }
            let Some((_, victims)) = by_tier
                .into_iter()
                .find(|(_, v)| v.len() >= self.cfg.tier_fanout)
            else {
                return;
            };
            // K-way merge of the victim runs (collect + sort is an honest
            // stand-in: the cost is dominated by rewriting every tuple).
            let mut merged: Vec<Tuple> = Vec::new();
            for &i in victims.iter().rev() {
                merged.append(&mut state.runs.remove(i).tuples);
            }
            self.merged_tuples
                .fetch_add(merged.len() as u64, Ordering::Relaxed);
            merged.sort_by_key(|a| (a.key, a.ts));
            state.runs.push(SortedRun { tuples: merged });
        }
    }
}

impl StreamStore for LsmStore {
    fn insert(&self, tuple: Tuple) {
        // 1. Journal (HBase acknowledges only after the WAL append).
        self.wal.append(&tuple).expect("WAL append failed");
        // 2. Memtable insert.
        let flush = {
            let mut state = self.state.write();
            let seq = state.seq;
            state.seq += 1;
            state.memtable.insert((tuple.key, tuple.ts, seq), tuple);
            state.memtable.len() >= self.cfg.memtable_limit
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        // 3. Flush + compact when over the threshold.
        if flush {
            self.flush_memtable();
        }
    }

    fn query(&self, keys: &KeyInterval, times: &TimeInterval) -> Vec<Tuple> {
        let state = self.state.read();
        let mut out = Vec::new();
        let mut read = 0usize;
        // Memtable range scan.
        for ((_, _, _), t) in state
            .memtable
            .range((keys.lo(), 0, 0)..=(keys.hi(), Timestamp::MAX, u64::MAX))
        {
            read += 1;
            if times.contains(t.ts) {
                out.push(t.clone());
            }
        }
        // Every sorted run must be consulted: key ranges overlap across runs.
        for run in &state.runs {
            let scanned = run.scan(keys, times, &mut out);
            // One HFile access per consulted run, plus the scanned bytes.
            self.cfg.scan_latency.charge(scanned * 50, false);
            read += scanned;
        }
        self.tuples_read.fetch_add(read as u64, Ordering::Relaxed);
        out
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn name(&self) -> &'static str {
        "lsm (hbase-like)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(memtable_limit: usize) -> LsmStore {
        LsmStore::new(LsmConfig {
            memtable_limit,
            tier_fanout: 3,
            ..LsmConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn insert_query_roundtrip() {
        let s = store(64);
        for i in 0..500u64 {
            s.insert(Tuple::bare(i, i * 2));
        }
        assert_eq!(s.len(), 500);
        let hits = s.query(&KeyInterval::new(100, 200), &TimeInterval::full());
        assert_eq!(hits.len(), 101);
        let hits = s.query(&KeyInterval::new(100, 200), &TimeInterval::new(0, 250));
        assert_eq!(hits.len(), 26);
    }

    #[test]
    fn data_survives_flushes_and_compactions() {
        let s = store(32);
        for i in 0..1_000u64 {
            s.insert(Tuple::bare(i % 97, i));
        }
        let hits = s.query(&KeyInterval::full(), &TimeInterval::full());
        assert_eq!(hits.len(), 1_000);
        assert!(s.merged_tuples() > 0, "compaction never ran");
    }

    #[test]
    fn compaction_bounds_run_count() {
        let s = store(16);
        for i in 0..2_000u64 {
            s.insert(Tuple::bare(i, i));
        }
        assert!(
            s.run_count() < 20,
            "size-tiering failed: {} runs",
            s.run_count()
        );
    }

    #[test]
    fn write_amplification_grows_with_volume() {
        let small = store(16);
        for i in 0..500u64 {
            small.insert(Tuple::bare(i, i));
        }
        let big = store(16);
        for i in 0..5_000u64 {
            big.insert(Tuple::bare(i, i));
        }
        assert!(big.merged_tuples() > small.merged_tuples() * 2);
    }

    #[test]
    fn temporal_filter_reads_everything_in_key_range() {
        // The HBase weakness: a narrow time filter still reads the whole
        // key range.
        let s = store(128);
        for i in 0..1_000u64 {
            s.insert(Tuple::bare(i % 50, i));
        }
        let before = s.tuples_read();
        let hits = s.query(&KeyInterval::full(), &TimeInterval::new(0, 9));
        assert_eq!(hits.len(), 10);
        assert!(
            s.tuples_read() - before >= 1_000,
            "read {} tuples, expected full scan",
            s.tuples_read() - before
        );
    }

    #[test]
    fn duplicates_are_preserved() {
        let s = store(8);
        for i in 0..100u64 {
            s.insert(Tuple::bare(7, i));
        }
        assert_eq!(
            s.query(&KeyInterval::point(7), &TimeInterval::full()).len(),
            100
        );
    }
}
