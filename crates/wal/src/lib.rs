//! Write-ahead/commit layer shared by the durable components (paper §V).
//!
//! Waterwheel's fault-tolerance story rests on *replayable* state: every
//! acked ingest batch sits in a durable queue partition, every meta-service
//! mutation is logged, and chunk files are sealed atomically. This crate
//! provides the two on-disk primitives those components share:
//!
//! * [`Log`] — a segmented, checksummed append log. Each segment starts
//!   with a magic/version header and holds `[len u32][crc u64][body]`
//!   frames (FNV-1a over the body). Replay distinguishes a **torn tail**
//!   (the physical truncation a `kill -9` or power cut leaves at the end
//!   of the *last* segment — tolerated: the torn frame is dropped and the
//!   file truncated back to its last good frame) from **corruption** (a
//!   bad checksum on a complete frame, a damaged header, or a torn frame
//!   in a non-final segment — surfaced as [`WwError::Corrupt`], never a
//!   panic, never a silently short read).
//! * [`write_atomic`] — unique-temp-file + `rename` commit for
//!   whole-file artifacts (meta snapshots, DFS chunk files), so a crash
//!   mid-write can never leave a partially visible file.
//!
//! Both honour a [`FsyncPolicy`]: under [`FsyncPolicy::Always`] every
//! commit point is `fsync`ed (and renames are followed by a parent-
//! directory fsync) so acked data survives power loss; under
//! [`FsyncPolicy::Never`] data is flushed to the OS page cache only,
//! which still survives process death (`kill -9`) but not machine crash.
//!
//! Decoding follows the `wire.rs` no-panic discipline: all reads are
//! bounds-checked, frame lengths are validated against the bytes actually
//! present before any allocation, and unknown versions are typed errors.

use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use waterwheel_core::codec::{fnv1a, Encoder};
use waterwheel_core::{Result, WwError};

/// Magic prefix of every log segment file (`WWWAL001`, little-endian).
pub const SEGMENT_MAGIC: u64 = u64::from_le_bytes(*b"WWWAL001");
/// On-disk format version stamped after the magic.
pub const SEGMENT_VERSION: u32 = 1;
/// Segment header: magic (8) + version (4).
pub const SEGMENT_HEADER_LEN: usize = 12;
/// Frame header: body length (4) + FNV-1a checksum of the body (8).
pub const FRAME_HEADER_LEN: usize = 12;
/// Upper bound on a single frame body; larger lengths are rejected as
/// corrupt before any allocation is attempted.
pub const MAX_FRAME_LEN: u32 = 256 << 20;

/// When durable writes are pushed past the OS page cache to the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` at every commit point — acked data survives power loss.
    Always,
    /// Flush to the page cache only — survives `kill -9`, not power loss.
    Never,
}

impl FsyncPolicy {
    /// Maps the `durability_fsync` config flag onto a policy.
    pub fn from_flag(fsync: bool) -> Self {
        if fsync {
            Self::Always
        } else {
            Self::Never
        }
    }

    /// Whether commits fsync.
    pub fn is_always(self) -> bool {
        matches!(self, Self::Always)
    }
}

/// Shared durability counters (exposed through `SystemMetrics`).
#[derive(Debug, Default)]
pub struct WalStats {
    /// Bytes appended to logs (frame headers included).
    pub bytes: AtomicU64,
    /// `fsync`/`fdatasync` calls issued (logs, atomic writes, directories).
    pub fsyncs: AtomicU64,
    /// Torn tails dropped during replay plus torn/damaged whole-file
    /// artifacts detected by footer or checksum verification.
    pub torn: AtomicU64,
    /// Records replayed from disk at recovery, in caller-defined units
    /// (the message queue counts tuples; the meta service counts
    /// mutation records).
    pub replayed: AtomicU64,
}

impl WalStats {
    /// A fresh zeroed counter set behind an `Arc`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

/// What [`Log::open`] recovered from disk.
pub struct Replay {
    /// Frame bodies in append order, checksum-verified.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn tail was dropped (and the segment truncated back to
    /// its last complete frame).
    pub torn_tail: bool,
}

struct LogInner {
    dir: PathBuf,
    name: String,
    policy: FsyncPolicy,
    segment_bytes: usize,
    stats: Arc<WalStats>,
    writer: BufWriter<File>,
    /// Sequence number of the segment `writer` appends to.
    seq: u64,
    /// Bytes written to the current segment (header included).
    cur_bytes: usize,
    /// Appends since the last `commit` (so `commit` can skip the fsync
    /// when nothing new was written).
    dirty: bool,
}

/// A segmented, checksummed append log.
///
/// Writes are buffered; [`Log::commit`] makes everything appended so far
/// durable per the [`FsyncPolicy`]. Thread-safe behind an internal mutex —
/// an `append` + `commit` pair from one thread may interleave with other
/// appenders, so callers needing atomic multi-record commits should encode
/// them as a single frame.
pub struct Log {
    inner: Mutex<LogInner>,
}

impl Log {
    /// Opens (or creates) the log `dir/name.NNNNNNNN.wal`, replaying every
    /// existing segment in sequence order. A torn tail on the final
    /// segment is dropped and truncated away; any other damage is a typed
    /// [`WwError::Corrupt`]. Appends go to a fresh segment after the last
    /// recovered one.
    pub fn open(
        dir: impl Into<PathBuf>,
        name: &str,
        policy: FsyncPolicy,
        segment_bytes: usize,
        stats: Arc<WalStats>,
    ) -> Result<(Self, Replay)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir, name)?;
        segments.sort_by_key(|(seq, _)| *seq);
        let mut records = Vec::new();
        let mut torn_tail = false;
        let last = segments.len().wrapping_sub(1);
        for (i, (_, path)) in segments.iter().enumerate() {
            let torn = replay_segment(path, i == last, &mut records)?;
            if torn {
                torn_tail = true;
                stats.torn.fetch_add(1, Ordering::Relaxed);
            }
        }
        let next_seq = segments.last().map(|(s, _)| s + 1).unwrap_or(0);
        let inner = LogInner::create_segment(
            dir,
            name.to_string(),
            policy,
            segment_bytes,
            stats,
            next_seq,
        )?;
        Ok((
            Self {
                inner: Mutex::new(inner),
            },
            Replay { records, torn_tail },
        ))
    }

    /// Appends one checksummed frame (buffered; call [`Log::commit`] to
    /// make it durable). Rotates to a new segment when the current one
    /// has reached the configured size.
    pub fn append(&self, body: &[u8]) -> Result<()> {
        let mut g = self.inner.lock();
        if g.cur_bytes >= g.segment_bytes {
            g.rotate()?;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
        frame.put_u32(body.len() as u32);
        frame.put_u64(fnv1a(body));
        frame.extend_from_slice(body);
        g.writer.write_all(&frame)?;
        g.cur_bytes += frame.len();
        g.dirty = true;
        g.stats
            .bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes buffered frames to the OS and, under
    /// [`FsyncPolicy::Always`], fsyncs the segment. No-op when nothing
    /// was appended since the last commit.
    pub fn commit(&self) -> Result<()> {
        self.inner.lock().commit()
    }

    /// Deletes every segment and starts over at sequence 0 (meta-service
    /// snapshot compaction). Segments are removed oldest-first so a crash
    /// mid-reset leaves only newer segments, whose records must therefore
    /// be idempotent to re-apply over the compacted snapshot.
    pub fn reset(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.commit()?;
        let mut segments = list_segments(&g.dir, &g.name)?;
        segments.sort_by_key(|(seq, _)| *seq);
        for (_, path) in segments {
            fs::remove_file(path)?;
        }
        let fresh = LogInner::create_segment(
            g.dir.clone(),
            g.name.clone(),
            g.policy,
            g.segment_bytes,
            Arc::clone(&g.stats),
            0,
        )?;
        *g = fresh;
        Ok(())
    }

    /// Shared durability counters.
    pub fn stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.inner.lock().stats)
    }
}

impl LogInner {
    fn create_segment(
        dir: PathBuf,
        name: String,
        policy: FsyncPolicy,
        segment_bytes: usize,
        stats: Arc<WalStats>,
        seq: u64,
    ) -> Result<Self> {
        let path = segment_path(&dir, &name, seq);
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
        header.put_u64(SEGMENT_MAGIC);
        header.put_u32(SEGMENT_VERSION);
        let mut writer = BufWriter::new(file);
        writer.write_all(&header)?;
        let mut inner = Self {
            dir,
            name,
            policy,
            segment_bytes,
            stats,
            writer,
            seq,
            cur_bytes: SEGMENT_HEADER_LEN,
            dirty: true,
        };
        // Make the (empty) segment header durable so a later replay never
        // mistakes a half-written header for foreign bytes.
        inner.commit()?;
        Ok(inner)
    }

    fn commit(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.writer.flush()?;
        if self.policy.is_always() {
            self.writer.get_ref().sync_data()?;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.dirty = false;
        Ok(())
    }

    fn rotate(&mut self) -> Result<()> {
        self.commit()?;
        let next = Self::create_segment(
            self.dir.clone(),
            self.name.clone(),
            self.policy,
            self.segment_bytes,
            Arc::clone(&self.stats),
            self.seq + 1,
        )?;
        *self = next;
        Ok(())
    }
}

fn segment_path(dir: &Path, name: &str, seq: u64) -> PathBuf {
    dir.join(format!("{name}.{seq:08}.wal"))
}

/// Lists `name.NNNNNNNN.wal` segments under `dir`.
fn list_segments(dir: &Path, name: &str) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let prefix = format!("{name}.");
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let fname = entry.file_name();
        let Some(fname) = fname.to_str() else {
            continue;
        };
        let Some(mid) = fname.strip_prefix(&prefix) else {
            continue;
        };
        let Some(seq) = mid.strip_suffix(".wal") else {
            continue;
        };
        if let Ok(seq) = seq.parse::<u64>() {
            out.push((seq, entry.path()));
        }
    }
    Ok(out)
}

/// Replays one segment into `records`. Returns whether a torn tail was
/// dropped (only legal on the final segment). The file is truncated back
/// to its last complete frame so subsequent opens see a clean log.
fn replay_segment(path: &Path, is_last: bool, records: &mut Vec<Vec<u8>>) -> Result<bool> {
    let bytes = fs::read(path)?;
    if bytes.is_empty() {
        // A previous recovery truncated this segment to zero; nothing in it.
        return Ok(false);
    }
    if bytes.len() < SEGMENT_HEADER_LEN {
        // The header write itself was torn. Only believable at the end of
        // the log; anywhere else the file is damaged.
        if is_last {
            truncate_to(path, 0)?;
            return Ok(true);
        }
        return Err(WwError::corrupt(
            "wal segment",
            format!("{}: truncated header in non-final segment", path.display()),
        ));
    }
    let magic = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    if magic != SEGMENT_MAGIC {
        return Err(WwError::corrupt(
            "wal segment",
            format!("{}: bad magic {magic:#018x}", path.display()),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(WwError::corrupt(
            "wal segment",
            format!("{}: unsupported version {version}", path.display()),
        ));
    }
    let mut pos = SEGMENT_HEADER_LEN;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(false);
        }
        let torn_at = |what: &str| -> Result<bool> {
            if is_last {
                truncate_to(path, pos as u64)?;
                Ok(true)
            } else {
                Err(WwError::corrupt(
                    "wal segment",
                    format!(
                        "{}: {what} at offset {pos} in non-final segment",
                        path.display()
                    ),
                ))
            }
        };
        if remaining < FRAME_HEADER_LEN {
            return torn_at("torn frame header");
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(WwError::corrupt(
                "wal segment",
                format!(
                    "{}: implausible frame length {len} at offset {pos}",
                    path.display()
                ),
            ));
        }
        let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if (len as usize) > remaining - FRAME_HEADER_LEN {
            return torn_at("torn frame body");
        }
        let body = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len as usize];
        if fnv1a(body) != crc {
            return Err(WwError::corrupt(
                "wal segment",
                format!("{}: checksum mismatch at offset {pos}", path.display()),
            ));
        }
        records.push(body.to_vec());
        pos += FRAME_HEADER_LEN + len as usize;
    }
}

fn truncate_to(path: &Path, len: u64) -> Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_data()?;
    Ok(())
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: a uniquely named dot-prefixed
/// `.…tmp` sibling is written (and fsynced under
/// [`FsyncPolicy::Always`]), then renamed over `path`, then the parent
/// directory is fsynced so the rename itself is durable. A crash at any
/// point leaves either the old file or the new file — never a partial
/// one. Stray temps from crashed writers are cleared by [`sweep_tmp`].
pub fn write_atomic(
    path: &Path,
    bytes: &[u8],
    policy: FsyncPolicy,
    stats: &WalStats,
) -> Result<()> {
    let dir = path.parent().ok_or_else(|| {
        WwError::InvalidState(format!("{} has no parent directory", path.display()))
    })?;
    let base = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| WwError::InvalidState(format!("{} has no file name", path.display())))?;
    let tmp = dir.join(format!(
        ".{base}.{}.{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        if policy.is_always() {
            f.sync_all()?;
            stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if policy.is_always() {
        fsync_dir(dir)?;
        stats.fsyncs.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// Fsyncs a directory so renames/creates within it are durable.
pub fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Removes stray `.…tmp` files left by writers that crashed between
/// temp-file creation and rename. Returns how many were removed.
pub fn sweep_tmp(dir: &Path) -> Result<u64> {
    let mut removed = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with('.') && name.ends_with(".tmp") {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ww-wal-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, seg: usize) -> (Log, Replay) {
        Log::open(dir, "log", FsyncPolicy::Never, seg, WalStats::shared()).unwrap()
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let (log, replay) = open(&dir, 1 << 20);
        assert!(replay.records.is_empty());
        log.append(b"alpha").unwrap();
        log.append(b"beta").unwrap();
        log.commit().unwrap();
        drop(log);
        let (_, replay) = open(&dir, 1 << 20);
        assert_eq!(replay.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = tmp_dir("rotate");
        let (log, _) = open(&dir, 64);
        for i in 0..50u32 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        log.commit().unwrap();
        drop(log);
        assert!(list_segments(&dir, "log").unwrap().len() > 1);
        let (_, replay) = open(&dir, 64);
        let got: Vec<u32> = replay
            .records
            .iter()
            .map(|r| u32::from_le_bytes(r[..4].try_into().unwrap()))
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = tmp_dir("torn");
        let (log, _) = open(&dir, 1 << 20);
        log.append(b"keep me").unwrap();
        log.append(b"torn away").unwrap();
        log.commit().unwrap();
        drop(log);
        // Chop bytes off the end of the (single non-empty) segment,
        // landing mid-frame — what kill -9 during a buffered write leaves.
        let (_, path) = list_segments(&dir, "log")
            .unwrap()
            .into_iter()
            .min_by_key(|(s, _)| *s)
            .unwrap();
        let len = fs::metadata(&path).unwrap().len();
        truncate_to(&path, len - 5).unwrap();
        let stats = WalStats::shared();
        let (_, replay) =
            Log::open(&dir, "log", FsyncPolicy::Never, 1 << 20, Arc::clone(&stats)).unwrap();
        assert_eq!(replay.records, vec![b"keep me".to_vec()]);
        assert!(replay.torn_tail);
        assert_eq!(stats.torn.load(Ordering::Relaxed), 1);
        // The truncation removed the torn frame: reopening again is clean.
        let (_, replay) = open(&dir, 1 << 20);
        assert_eq!(replay.records, vec![b"keep me".to_vec()]);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn checksum_mismatch_is_a_typed_error() {
        let dir = tmp_dir("crc");
        let (log, _) = open(&dir, 1 << 20);
        log.append(b"payload bytes here").unwrap();
        log.commit().unwrap();
        drop(log);
        let (_, path) = list_segments(&dir, "log")
            .unwrap()
            .into_iter()
            .min_by_key(|(s, _)| *s)
            .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = SEGMENT_HEADER_LEN + FRAME_HEADER_LEN + 4;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = Log::open(&dir, "log", FsyncPolicy::Never, 1 << 20, WalStats::shared())
            .err()
            .expect("bit flip must be detected");
        assert!(matches!(err, WwError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let dir = tmp_dir("magic");
        drop(open(&dir, 1 << 20));
        let path = segment_path(&dir, "log", 0);
        fs::write(&path, b"NOTAWAL!....").unwrap();
        let err = Log::open(&dir, "log", FsyncPolicy::Never, 1 << 20, WalStats::shared())
            .err()
            .unwrap();
        assert!(matches!(err, WwError::Corrupt { .. }));
        let mut hdr = Vec::new();
        hdr.put_u64(SEGMENT_MAGIC);
        hdr.put_u32(99);
        fs::write(&path, &hdr).unwrap();
        let err = Log::open(&dir, "log", FsyncPolicy::Never, 1 << 20, WalStats::shared())
            .err()
            .unwrap();
        assert!(matches!(err, WwError::Corrupt { .. }));
    }

    #[test]
    fn torn_frame_in_non_final_segment_is_corruption() {
        let dir = tmp_dir("mid-torn");
        let (log, _) = open(&dir, 32);
        for _ in 0..8 {
            log.append(&[7u8; 24]).unwrap();
        }
        log.commit().unwrap();
        drop(log);
        let mut segs = list_segments(&dir, "log").unwrap();
        segs.sort_by_key(|(s, _)| *s);
        assert!(segs.len() >= 2);
        let (_, first) = &segs[0];
        let len = fs::metadata(first).unwrap().len();
        truncate_to(first, len - 3).unwrap();
        let err = Log::open(&dir, "log", FsyncPolicy::Never, 32, WalStats::shared())
            .err()
            .expect("mid-log truncation is not a tolerable torn tail");
        assert!(matches!(err, WwError::Corrupt { .. }));
    }

    #[test]
    fn reset_clears_history() {
        let dir = tmp_dir("reset");
        let (log, _) = open(&dir, 1 << 20);
        log.append(b"old").unwrap();
        log.commit().unwrap();
        log.reset().unwrap();
        log.append(b"new").unwrap();
        log.commit().unwrap();
        drop(log);
        let (_, replay) = open(&dir, 1 << 20);
        assert_eq!(replay.records, vec![b"new".to_vec()]);
    }

    #[test]
    fn fsync_policy_counts_fsyncs() {
        let dir = tmp_dir("fsync");
        let stats = WalStats::shared();
        let (log, _) = Log::open(
            &dir,
            "log",
            FsyncPolicy::Always,
            1 << 20,
            Arc::clone(&stats),
        )
        .unwrap();
        let base = stats.fsyncs.load(Ordering::Relaxed);
        assert!(base > 0, "segment creation commits durably");
        log.append(b"x").unwrap();
        log.commit().unwrap();
        log.commit().unwrap(); // clean: no extra fsync
        assert_eq!(stats.fsyncs.load(Ordering::Relaxed), base + 1);
    }

    #[test]
    fn write_atomic_commits_whole_files_and_sweeps_strays() {
        let dir = tmp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let stats = WalStats::default();
        let target = dir.join("artifact.bin");
        write_atomic(&target, b"v1", FsyncPolicy::Always, &stats).unwrap();
        write_atomic(&target, b"v2", FsyncPolicy::Never, &stats).unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"v2");
        // Simulate a writer that died between temp creation and rename.
        fs::write(dir.join(".artifact.bin.999.0.tmp"), b"partial").unwrap();
        assert_eq!(sweep_tmp(&dir).unwrap(), 1);
        assert_eq!(fs::read(&target).unwrap(), b"v2");
        assert!(stats.fsyncs.load(Ordering::Relaxed) >= 2);
    }
}
