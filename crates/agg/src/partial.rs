//! The mergeable partial aggregate stored in every wheel cell.

use waterwheel_core::codec::{Decoder, Encoder};
use waterwheel_core::Result;

/// A mergeable partial aggregate over a set of measured tuples.
///
/// One `PartialAgg` answers COUNT, SUM, MIN, MAX and AVG (kept as
/// sum + count, the classic decomposable form) at once, so the wheel does
/// not need per-kind cells. Merging is associative and commutative, which
/// is what lets the combiner stitch together cells from different
/// granularities, chunks, and in-memory wheels in any order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartialAgg {
    /// Number of tuples folded in.
    pub count: u64,
    /// Sum of measures; u128 so u64 measures cannot overflow in practice.
    pub sum: u128,
    /// Minimum measure (`u64::MAX` when empty).
    pub min: u64,
    /// Maximum measure (`0` when empty).
    pub max: u64,
}

impl Default for PartialAgg {
    fn default() -> Self {
        Self::empty()
    }
}

impl PartialAgg {
    /// The identity element: aggregates nothing.
    pub const fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Whether any tuple has been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds one measured value in.
    pub fn insert(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another partial aggregate in.
    pub fn merge(&mut self, other: &PartialAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Minimum measure, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Maximum measure, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Mean measure, `None` when empty. Computed from the exact sum and
    /// count, so two paths that agree on those agree on the average bit for
    /// bit.
    pub fn avg(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.sum as f64 / self.count as f64)
    }

    /// Serialized size in bytes (five u64 words: count, sum lo/hi, min, max).
    pub const ENCODED_LEN: usize = 40;

    /// Appends the fixed-layout encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64(self.count);
        out.put_u64(self.sum as u64);
        out.put_u64((self.sum >> 64) as u64);
        out.put_u64(self.min);
        out.put_u64(self.max);
    }

    /// Decodes an aggregate written by [`PartialAgg::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let count = dec.get_u64()?;
        let sum_lo = dec.get_u64()?;
        let sum_hi = dec.get_u64()?;
        let min = dec.get_u64()?;
        let max = dec.get_u64()?;
        Ok(Self {
            count,
            sum: (sum_hi as u128) << 64 | sum_lo as u128,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_tracks_all_kinds() {
        let mut a = PartialAgg::empty();
        for v in [5u64, 1, 9, 3] {
            a.insert(v);
        }
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 18);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(9));
        assert_eq!(a.avg(), Some(4.5));
    }

    #[test]
    fn empty_is_merge_identity() {
        let mut a = PartialAgg::empty();
        a.insert(7);
        let before = a;
        a.merge(&PartialAgg::empty());
        assert_eq!(a, before);

        let mut e = PartialAgg::empty();
        e.merge(&before);
        assert_eq!(e, before);
        assert_eq!(PartialAgg::empty().min(), None);
        assert_eq!(PartialAgg::empty().avg(), None);
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let vals = [3u64, 99, 0, 42, 17, 8];
        let mut whole = PartialAgg::empty();
        for v in vals {
            whole.insert(v);
        }
        let (mut left, mut right) = (PartialAgg::empty(), PartialAgg::empty());
        for v in &vals[..3] {
            left.insert(*v);
        }
        for v in &vals[3..] {
            right.insert(*v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn codec_roundtrip() {
        let mut a = PartialAgg::empty();
        a.insert(u64::MAX);
        a.insert(u64::MAX);
        a.insert(3);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        assert_eq!(buf.len(), PartialAgg::ENCODED_LEN);
        let mut dec = Decoder::new(&buf, "test");
        assert_eq!(PartialAgg::decode(&mut dec).unwrap(), a);
    }
}
