//! Query-range planning: splitting an arbitrary `⟨K_q, T_q⟩` rectangle into
//! a wheel-coverable interior plus scannable fringes, and decomposing a
//! covered time interval into the minimal run of wheel slots.

use crate::wheel::Granularity;
use waterwheel_core::{KeyInterval, TimeInterval};

/// How a query time interval splits against second-aligned wheel buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimePlan {
    /// The largest second-aligned sub-interval (closed, `lo % 1000 == 0`,
    /// `(hi + 1) % 1000 == 0`); `None` when the query spans no whole second.
    pub covered: Option<TimeInterval>,
    /// At most two sub-second edges that must be answered by tuple scan.
    pub fringes: Vec<TimeInterval>,
}

/// How a query key interval splits against the wheel's key slices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyPlan {
    /// Inclusive range of fully-covered slice ids; `None` when the query
    /// covers no whole slice.
    pub slices: Option<(u16, u16)>,
    /// At most two partial-slice edges that must be answered by tuple scan.
    pub fringes: Vec<KeyInterval>,
}

const MS_PER_SECOND: u128 = 1_000;

/// Splits `times` into the wheel-covered interior and sub-second fringes.
///
/// The three parts are pairwise disjoint and their union is exactly
/// `times`, which is what makes combining summary cells with fringe scans
/// exact rather than approximate.
pub fn plan_time(times: &TimeInterval) -> TimePlan {
    let lo = times.lo() as u128;
    let end = times.hi() as u128 + 1; // exclusive; u128 so MAX cannot overflow
    let lo_aligned = lo.div_ceil(MS_PER_SECOND) * MS_PER_SECOND;
    let end_aligned = end / MS_PER_SECOND * MS_PER_SECOND;
    if lo_aligned >= end_aligned {
        return TimePlan {
            covered: None,
            fringes: vec![*times],
        };
    }
    let mut fringes = Vec::new();
    if lo < lo_aligned {
        fringes.push(TimeInterval::new(times.lo(), (lo_aligned - 1) as u64));
    }
    if end_aligned < end {
        fringes.push(TimeInterval::new(end_aligned as u64, times.hi()));
    }
    TimePlan {
        covered: Some(TimeInterval::new(
            lo_aligned as u64,
            (end_aligned - 1) as u64,
        )),
        fringes,
    }
}

/// Width of one key slice for the given `slice_bits` (1..=16).
fn slice_span(slice_bits: u8) -> u128 {
    debug_assert!((1..=16).contains(&slice_bits));
    1u128 << (64 - slice_bits as u32)
}

/// The slice id a key falls in: its top `slice_bits` bits.
pub fn slice_of(key: u64, slice_bits: u8) -> u16 {
    (key >> (64 - slice_bits as u32)) as u16
}

/// The exact key interval covered by the inclusive slice range.
pub fn slices_to_keys(lo_slice: u16, hi_slice: u16, slice_bits: u8) -> KeyInterval {
    let span = slice_span(slice_bits);
    let lo = lo_slice as u128 * span;
    let hi = (hi_slice as u128 + 1) * span - 1;
    KeyInterval::new(lo as u64, hi as u64)
}

/// Splits `keys` into fully-covered slices and partial-slice fringes, the
/// key-domain analogue of [`plan_time`].
pub fn plan_keys(keys: &KeyInterval, slice_bits: u8) -> KeyPlan {
    let span = slice_span(slice_bits);
    let lo = keys.lo() as u128;
    let end = keys.hi() as u128 + 1;
    let lo_aligned = lo.div_ceil(span) * span;
    let end_aligned = end / span * span;
    if lo_aligned >= end_aligned {
        return KeyPlan {
            slices: None,
            fringes: vec![*keys],
        };
    }
    let mut fringes = Vec::new();
    if lo < lo_aligned {
        fringes.push(KeyInterval::new(keys.lo(), (lo_aligned - 1) as u64));
    }
    if end_aligned < end {
        fringes.push(KeyInterval::new(end_aligned as u64, keys.hi()));
    }
    KeyPlan {
        slices: Some(((lo_aligned / span) as u16, (end_aligned / span - 1) as u16)),
        fringes,
    }
}

/// Decomposes a second-aligned closed interval into the minimal run of
/// wheel slots, greedily taking the coarsest granularity that is aligned at
/// the current position and fits in the remainder — the calendar-style
/// O(fringe · granularities + interior / coarsest-span) decomposition.
pub fn plan_slots(covered: &TimeInterval) -> Vec<(Granularity, u64)> {
    let mut pos = covered.lo() as u128;
    let end = covered.hi() as u128 + 1;
    debug_assert!(pos.is_multiple_of(MS_PER_SECOND) && end.is_multiple_of(MS_PER_SECOND));
    let mut slots = Vec::new();
    while pos < end {
        let mut chosen = Granularity::Second;
        for g in [Granularity::Day, Granularity::Hour, Granularity::Minute] {
            let span = g.span_ms() as u128;
            if pos.is_multiple_of(span) && pos + span <= end {
                chosen = g;
                break;
            }
        }
        slots.push((chosen, (pos / chosen.span_ms() as u128) as u64));
        pos += chosen.span_ms() as u128;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot_union(slots: &[(Granularity, u64)]) -> Vec<(u128, u128)> {
        slots
            .iter()
            .map(|(g, b)| {
                let span = g.span_ms() as u128;
                (*b as u128 * span, (*b as u128 + 1) * span)
            })
            .collect()
    }

    #[test]
    fn time_plan_partitions_the_interval() {
        for (lo, hi) in [
            (0u64, 999),
            (0, 1_000),
            (337, 12_741),
            (1_000, 59_999),
            (999, 1_000),
            (5_000, 5_000),
            (0, u64::MAX),
            (u64::MAX - 3, u64::MAX),
        ] {
            let times = TimeInterval::new(lo, hi);
            let plan = plan_time(&times);
            // Total width is preserved and pieces stay inside the query.
            let mut width: u128 = 0;
            for f in &plan.fringes {
                assert!(times.covers(&TimeInterval::new(f.lo(), f.hi())));
                width += f.hi() as u128 - f.lo() as u128 + 1;
            }
            if let Some(cov) = plan.covered {
                assert_eq!(cov.lo() % 1_000, 0);
                assert_eq!((cov.hi() as u128 + 1) % 1_000, 0);
                width += cov.hi() as u128 - cov.lo() as u128 + 1;
            }
            assert_eq!(width, hi as u128 - lo as u128 + 1, "[{lo}, {hi}]");
        }
    }

    #[test]
    fn sub_second_query_is_all_fringe() {
        let plan = plan_time(&TimeInterval::new(1_200, 1_700));
        assert_eq!(plan.covered, None);
        assert_eq!(plan.fringes, vec![TimeInterval::new(1_200, 1_700)]);
    }

    #[test]
    fn key_plan_full_domain_covers_every_slice() {
        let plan = plan_keys(&KeyInterval::full(), 4);
        assert_eq!(plan.slices, Some((0, 15)));
        assert!(plan.fringes.is_empty());
        assert_eq!(slices_to_keys(0, 15, 4), KeyInterval::new(0, u64::MAX));
    }

    #[test]
    fn key_plan_narrow_range_is_all_fringe() {
        let plan = plan_keys(&KeyInterval::new(100, 10_000), 4);
        assert_eq!(plan.slices, None);
        assert_eq!(plan.fringes, vec![KeyInterval::new(100, 10_000)]);
    }

    #[test]
    fn key_plan_half_domain() {
        let half = 1u64 << 63;
        let plan = plan_keys(&KeyInterval::new(half, u64::MAX), 4);
        assert_eq!(plan.slices, Some((8, 15)));
        assert!(plan.fringes.is_empty());
        assert_eq!(slices_to_keys(8, 15, 4).lo(), half);
    }

    #[test]
    fn slice_of_matches_slice_intervals() {
        for bits in [1u8, 4, 8, 16] {
            for key in [0u64, 1, u64::MAX / 3, u64::MAX - 1, u64::MAX] {
                let s = slice_of(key, bits);
                let iv = slices_to_keys(s, s, bits);
                assert!(iv.contains(key), "bits {bits} key {key}");
            }
        }
    }

    #[test]
    fn slots_tile_the_covered_interval_exactly() {
        for (lo, hi) in [
            (0u64, 999),
            (0, 86_400_000 - 1),
            (59_000, 3_721_999),
            (86_395_000, 90_005_999),
            (1_000, 1_999),
        ] {
            let slots = plan_slots(&TimeInterval::new(lo, hi));
            let ivs = slot_union(&slots);
            // Contiguous, in order, exactly covering [lo, hi + 1).
            assert_eq!(ivs.first().unwrap().0, lo as u128);
            assert_eq!(ivs.last().unwrap().1, hi as u128 + 1);
            for w in ivs.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn interior_uses_coarse_slots() {
        // One full day plus a minute each side: the interior must collapse
        // into a single day slot, not 86 400 second slots.
        let day = Granularity::Day.span_ms();
        let min = Granularity::Minute.span_ms();
        let slots = plan_slots(&TimeInterval::new(day - min, 2 * day + min - 1));
        assert!(slots.contains(&(Granularity::Day, 1)));
        assert_eq!(
            slots.iter().filter(|(g, _)| *g == Granularity::Day).count(),
            1
        );
        assert!(slots.len() <= 3);
    }
}
