//! Sealed, immutable aggregate summaries: the compact form of a wheel that
//! rides in a flushed chunk's footer and in metadata extents.

use crate::partial::PartialAgg;
use crate::plan::plan_slots;
use crate::wheel::{clip_to_hull, AggWheel, FoldOutcome, Granularity, Ring};
use waterwheel_core::codec::{fnv1a, Decoder, Encoder};
use waterwheel_core::{Result, TimeInterval, WwError};

/// Magic prefix of an encoded summary (`WWAGGSU1`).
pub const SUMMARY_MAGIC: u64 = u64::from_le_bytes(*b"WWAGGSU1");

/// A sealed aggregate wheel.
///
/// Unlike the live [`AggWheel`], rings whose cell count exceeded the
/// configured cap are *dropped* — finest first, which is safe because a
/// finer ring always has at least as many cells as a coarser one over the
/// same data. A fold over a summary therefore reports the time ranges it
/// could not answer as residues for the caller to tuple-scan, instead of
/// silently approximating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WheelSummary {
    slice_bits: u8,
    rings: [Option<Ring>; 4],
    hull: Option<TimeInterval>,
}

impl WheelSummary {
    /// Seals a live wheel, dropping any ring with more than
    /// `max_cells_per_ring` cells.
    pub fn seal(wheel: &AggWheel, max_cells_per_ring: usize) -> Self {
        let mut rings: [Option<Ring>; 4] = Default::default();
        for gran in Granularity::ALL {
            let ring = wheel.ring(gran);
            if ring.len() <= max_cells_per_ring {
                rings[gran.index()] = Some(ring.clone());
            }
        }
        Self {
            slice_bits: wheel.slice_bits(),
            rings,
            hull: wheel.hull(),
        }
    }

    /// Builds a summary directly from measured tuples (used at flush time,
    /// where the sealed chunk's tuples are in hand).
    pub fn build(
        tuples: impl IntoIterator<Item = (u64, u64, u64)>,
        slice_bits: u8,
        max_cells_per_ring: usize,
    ) -> Self {
        let mut wheel = AggWheel::new(slice_bits);
        for (key, ts, value) in tuples {
            wheel.insert(key, ts, value);
        }
        Self::seal(&wheel, max_cells_per_ring)
    }

    /// Key-slice width exponent.
    pub fn slice_bits(&self) -> u8 {
        self.slice_bits
    }

    /// Raw time extent of the summarized data.
    pub fn hull(&self) -> Option<TimeInterval> {
        self.hull
    }

    /// Whether the ring at `gran` survived the cap.
    pub fn has_ring(&self, gran: Granularity) -> bool {
        self.rings[gran.index()].is_some()
    }

    /// Bitmask of surviving rings, bit i = `Granularity::ALL[i]`.
    pub fn levels(&self) -> u8 {
        let mut mask = 0u8;
        for gran in Granularity::ALL {
            if self.has_ring(gran) {
                mask |= 1 << gran.index();
            }
        }
        mask
    }

    /// Total cells across surviving rings.
    pub fn cell_count(&self) -> usize {
        self.rings.iter().flatten().map(|r| r.len()).sum()
    }

    /// Whether no data was summarized.
    pub fn is_empty(&self) -> bool {
        self.hull.is_none()
    }

    /// MIN/MAX of the measure over *every* summarized tuple, from any
    /// surviving ring. Each ring covers the full tuple set (sealing keeps
    /// or drops rings whole), so merging one ring's cells yields exact
    /// chunk-level bounds. `None` when empty or no ring survived the cap.
    pub fn measure_bounds(&self) -> Option<(u64, u64)> {
        // Coarsest surviving ring = fewest cells to merge.
        let ring = self.rings.iter().rev().flatten().next()?;
        let mut acc = PartialAgg::empty();
        for cell in ring.values() {
            acc.merge(cell);
        }
        Some((acc.min()?, acc.max()?))
    }

    /// Merges every answerable cell inside `slices × covered` and reports
    /// unanswerable time sub-ranges as coalesced residues. `covered` must
    /// be second-aligned (see `plan::plan_time`).
    pub fn fold(&self, slices: (u16, u16), covered: &TimeInterval) -> FoldOutcome {
        let mut out = FoldOutcome::default();
        let Some(covered) = clip_to_hull(covered, self.hull) else {
            return out;
        };
        let mut residues: Vec<TimeInterval> = Vec::new();
        for (gran, bucket) in plan_slots(&covered) {
            self.fold_slot(gran, bucket, slices, &mut out, &mut residues);
        }
        out.residues = coalesce(residues);
        out
    }

    fn fold_slot(
        &self,
        gran: Granularity,
        bucket: u64,
        slices: (u16, u16),
        out: &mut FoldOutcome,
        residues: &mut Vec<TimeInterval>,
    ) {
        if let Some(ring) = &self.rings[gran.index()] {
            for (_, cell) in ring.range((bucket, slices.0)..=(bucket, slices.1)) {
                out.agg.merge(cell);
                out.cells_merged += 1;
            }
            return;
        }
        // Ring capped away: refine into the next finer granularity if any
        // finer ring survived, else hand the whole slot back as a residue.
        let has_finer = (0..gran.index()).any(|i| self.rings[i].is_some());
        match gran.finer() {
            Some(finer) if has_finer => {
                let ratio = gran.span_ms() / finer.span_ms();
                for sub in bucket * ratio..(bucket + 1) * ratio {
                    self.fold_slot(finer, sub, slices, out, residues);
                }
            }
            _ => {
                let span = gran.span_ms();
                residues.push(TimeInterval::new(bucket * span, (bucket + 1) * span - 1));
            }
        }
    }

    /// Encodes the summary with a trailing FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_u64(SUMMARY_MAGIC);
        out.put_u16(self.slice_bits as u16);
        match self.hull {
            Some(h) => {
                out.put_u16(1);
                out.put_u64(h.lo());
                out.put_u64(h.hi());
            }
            None => {
                out.put_u16(0);
                out.put_u64(0);
                out.put_u64(0);
            }
        }
        for gran in Granularity::ALL {
            match &self.rings[gran.index()] {
                None => out.put_u32(u32::MAX),
                Some(ring) => {
                    out.put_u32(ring.len() as u32);
                    for ((bucket, slice), cell) in ring {
                        out.put_u64(*bucket);
                        out.put_u16(*slice);
                        cell.encode(&mut out);
                    }
                }
            }
        }
        let checksum = fnv1a(&out);
        out.put_u64(checksum);
        out
    }

    /// Decodes a summary written by [`WheelSummary::encode`], verifying the
    /// magic and checksum.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 8 + 8 {
            return Err(WwError::corrupt("summary", "too short"));
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(WwError::corrupt("summary", "checksum mismatch"));
        }
        let mut dec = Decoder::new(body, "summary");
        if dec.get_u64()? != SUMMARY_MAGIC {
            return Err(WwError::corrupt("summary", "bad magic"));
        }
        let slice_bits = dec.get_u16()? as u8;
        if !(1..=16).contains(&slice_bits) {
            return Err(WwError::corrupt("summary", "slice_bits out of range"));
        }
        let has_hull = dec.get_u16()? != 0;
        let (h_lo, h_hi) = (dec.get_u64()?, dec.get_u64()?);
        let hull = if has_hull {
            Some(
                TimeInterval::checked(h_lo, h_hi)
                    .ok_or_else(|| WwError::corrupt("summary", "inverted hull"))?,
            )
        } else {
            None
        };
        let mut rings: [Option<Ring>; 4] = Default::default();
        for gran in Granularity::ALL {
            let n = dec.get_u32()?;
            if n == u32::MAX {
                continue;
            }
            let mut ring = Ring::new();
            for _ in 0..n {
                let bucket = dec.get_u64()?;
                let slice = dec.get_u16()?;
                let cell = PartialAgg::decode(&mut dec)?;
                ring.insert((bucket, slice), cell);
            }
            rings[gran.index()] = Some(ring);
        }
        Ok(Self {
            slice_bits,
            rings,
            hull,
        })
    }
}

/// Sorts and merges overlapping or adjacent intervals.
fn coalesce(mut ivs: Vec<TimeInterval>) -> Vec<TimeInterval> {
    if ivs.len() <= 1 {
        return ivs;
    }
    ivs.sort_by_key(|iv| iv.lo());
    let mut out: Vec<TimeInterval> = Vec::with_capacity(ivs.len());
    for iv in ivs {
        match out.last_mut() {
            Some(last) if iv.lo() <= last.hi().saturating_add(1) => {
                *last = TimeInterval::new(last.lo(), last.hi().max(iv.hi()));
            }
            _ => out.push(iv),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(n: u64) -> Vec<(u64, u64, u64)> {
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x, x % 500_000, x % 997)
            })
            .collect()
    }

    fn naive(data: &[(u64, u64, u64)], covered: &TimeInterval) -> PartialAgg {
        let mut agg = PartialAgg::empty();
        for (_, ts, v) in data.iter().filter(|(_, ts, _)| covered.contains(*ts)) {
            let _ = ts;
            agg.insert(*v);
        }
        agg
    }

    #[test]
    fn uncapped_summary_matches_wheel() {
        let data = workload(2_000);
        let summary = WheelSummary::build(data.iter().copied(), 4, usize::MAX);
        assert_eq!(summary.levels(), 0b1111);
        for (lo_s, hi_s) in [(0u64, 499), (10, 30), (120, 360)] {
            let covered = TimeInterval::new(lo_s * 1_000, (hi_s + 1) * 1_000 - 1);
            let out = summary.fold((0, 15), &covered);
            assert!(out.residues.is_empty());
            assert_eq!(out.agg, naive(&data, &covered));
        }
    }

    #[test]
    fn measure_bounds_are_exact_over_all_tuples() {
        let data = workload(2_000);
        let want_min = data.iter().map(|&(_, _, v)| v).min().unwrap();
        let want_max = data.iter().map(|&(_, _, v)| v).max().unwrap();
        // Exact whether every ring survives or only the coarsest does:
        // each surviving ring covers the full tuple set.
        let full = WheelSummary::build(data.iter().copied(), 4, usize::MAX);
        assert_eq!(full.measure_bounds(), Some((want_min, want_max)));
        let capped = WheelSummary::build(data.iter().copied(), 4, 64);
        if !capped.is_empty() && capped.levels() != 0 {
            assert_eq!(capped.measure_bounds(), Some((want_min, want_max)));
        }
        assert_eq!(
            WheelSummary::build(std::iter::empty(), 4, usize::MAX).measure_bounds(),
            None
        );
    }

    #[test]
    fn capped_summary_reports_residues_not_wrong_answers() {
        let data = workload(2_000);
        // Cap low enough to drop the seconds ring (and likely minutes).
        let summary = WheelSummary::build(data.iter().copied(), 4, 64);
        assert!(!summary.has_ring(Granularity::Second));
        let covered = TimeInterval::new(0, 499_999); // not minute-aligned at top
        let out = summary.fold((0, 15), &covered);
        // Whatever was answered from coarse rings plus a naive fold over the
        // residues must equal the naive fold over everything.
        let mut together = out.agg;
        for r in &out.residues {
            together.merge(&naive(&data, r));
        }
        assert_eq!(together, naive(&data, &covered));
        // Residues stay inside the covered range.
        for r in &out.residues {
            assert!(covered.covers(r), "{r:?}");
        }
    }

    #[test]
    fn fully_capped_summary_is_all_residue() {
        let data = workload(200);
        let summary = WheelSummary::build(data.iter().copied(), 4, 0);
        assert_eq!(summary.levels(), 0);
        let covered = TimeInterval::new(0, 499_999);
        let out = summary.fold((0, 15), &covered);
        assert!(out.agg.is_empty());
        assert_eq!(out.residues.len(), 1);
        let mut got = PartialAgg::empty();
        for r in &out.residues {
            got.merge(&naive(&data, r));
        }
        assert_eq!(got, naive(&data, &covered));
    }

    #[test]
    fn codec_roundtrip_and_corruption_detection() {
        let data = workload(500);
        let summary = WheelSummary::build(data.iter().copied(), 4, 128);
        let bytes = summary.encode();
        assert_eq!(WheelSummary::decode(&bytes).unwrap(), summary);

        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(WheelSummary::decode(&bad).is_err());
        assert!(WheelSummary::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn empty_summary_roundtrip() {
        let summary = WheelSummary::build(std::iter::empty(), 4, 1_024);
        assert!(summary.is_empty());
        let bytes = summary.encode();
        let back = WheelSummary::decode(&bytes).unwrap();
        assert!(back.is_empty());
        let out = back.fold((0, 15), &TimeInterval::new(0, 999_999));
        assert!(out.agg.is_empty() && out.residues.is_empty());
    }

    #[test]
    fn coalesce_merges_adjacent() {
        let merged = coalesce(vec![
            TimeInterval::new(2_000, 2_999),
            TimeInterval::new(0, 999),
            TimeInterval::new(1_000, 1_999),
            TimeInterval::new(10_000, 10_999),
        ]);
        assert_eq!(
            merged,
            vec![
                TimeInterval::new(0, 2_999),
                TimeInterval::new(10_000, 10_999)
            ]
        );
    }
}
