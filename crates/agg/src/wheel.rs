//! The live hierarchical aggregate wheel maintained per in-memory region.

use crate::partial::PartialAgg;
use crate::plan::{plan_slots, slice_of};
use std::collections::BTreeMap;
use waterwheel_core::TimeInterval;

/// A wheel ring granularity, finest to coarsest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Granularity {
    /// 1-second buckets.
    Second,
    /// 1-minute buckets.
    Minute,
    /// 1-hour buckets.
    Hour,
    /// 1-day buckets.
    Day,
}

impl Granularity {
    /// All granularities, finest first (ring array order).
    pub const ALL: [Granularity; 4] = [
        Granularity::Second,
        Granularity::Minute,
        Granularity::Hour,
        Granularity::Day,
    ];

    /// Bucket width in milliseconds.
    pub fn span_ms(self) -> u64 {
        match self {
            Granularity::Second => 1_000,
            Granularity::Minute => 60_000,
            Granularity::Hour => 3_600_000,
            Granularity::Day => 86_400_000,
        }
    }

    /// Ring index, 0 = finest.
    pub fn index(self) -> usize {
        match self {
            Granularity::Second => 0,
            Granularity::Minute => 1,
            Granularity::Hour => 2,
            Granularity::Day => 3,
        }
    }

    /// The next finer granularity, `None` for [`Granularity::Second`].
    pub fn finer(self) -> Option<Granularity> {
        match self {
            Granularity::Second => None,
            Granularity::Minute => Some(Granularity::Second),
            Granularity::Hour => Some(Granularity::Minute),
            Granularity::Day => Some(Granularity::Hour),
        }
    }
}

/// One ring: partial aggregates keyed by `(time bucket, key slice)`.
/// Bucket-major order makes one slot's slice range a contiguous map range.
pub type Ring = BTreeMap<(u64, u16), PartialAgg>;

/// The result of folding wheel cells over a covered rectangle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FoldOutcome {
    /// Merged aggregate over every cell the wheel could answer.
    pub agg: PartialAgg,
    /// Number of non-empty cells merged.
    pub cells_merged: u64,
    /// Sub-intervals of the covered time range the wheel could *not*
    /// answer (rings dropped by the summary cap); the caller must tuple-scan
    /// these. Coalesced and disjoint. Always empty for a live wheel.
    pub residues: Vec<TimeInterval>,
}

impl FoldOutcome {
    fn merge_cell(&mut self, cell: &PartialAgg) {
        self.agg.merge(cell);
        self.cells_merged += 1;
    }
}

/// A live hierarchical aggregate wheel: one ring per granularity, every
/// ring always present (capping only happens when sealing a summary).
///
/// Inserts update all four rings; a query fold touches the covered
/// interval's slot decomposition, so wide ranges hit the coarse rings and
/// stay cheap.
#[derive(Debug)]
pub struct AggWheel {
    slice_bits: u8,
    rings: [Ring; 4],
    hull: Option<TimeInterval>,
}

impl AggWheel {
    /// Creates an empty wheel slicing keys by their top `slice_bits` bits
    /// (clamped to 1..=16).
    pub fn new(slice_bits: u8) -> Self {
        Self {
            slice_bits: slice_bits.clamp(1, 16),
            rings: Default::default(),
            hull: None,
        }
    }

    /// Key-slice width exponent this wheel was built with.
    pub fn slice_bits(&self) -> u8 {
        self.slice_bits
    }

    /// The raw time extent of inserted data, `None` when empty.
    pub fn hull(&self) -> Option<TimeInterval> {
        self.hull
    }

    /// Cells currently held by the ring at `gran`.
    pub fn ring_len(&self, gran: Granularity) -> usize {
        self.rings[gran.index()].len()
    }

    /// Read access to one ring (used when sealing a summary).
    pub(crate) fn ring(&self, gran: Granularity) -> &Ring {
        &self.rings[gran.index()]
    }

    /// Whether any tuple has been folded in.
    pub fn is_empty(&self) -> bool {
        self.hull.is_none()
    }

    /// Folds one measured tuple into every ring.
    pub fn insert(&mut self, key: u64, ts: u64, value: u64) {
        let slice = slice_of(key, self.slice_bits);
        for gran in Granularity::ALL {
            let bucket = ts / gran.span_ms();
            self.rings[gran.index()]
                .entry((bucket, slice))
                .or_default()
                .insert(value);
        }
        self.hull = Some(match self.hull {
            None => TimeInterval::point(ts),
            Some(mut h) => {
                h.extend_to(ts);
                h
            }
        });
    }

    /// Drops every cell (called after the owning region flushes; the data
    /// now lives in a chunk with its own sealed summary).
    pub fn clear(&mut self) {
        for ring in &mut self.rings {
            ring.clear();
        }
        self.hull = None;
    }

    /// Merges every cell inside `slices × covered`. `covered` must be
    /// second-aligned (see `plan::plan_time`). A live wheel has every ring,
    /// so the outcome never carries residues.
    pub fn fold(&self, slices: (u16, u16), covered: &TimeInterval) -> FoldOutcome {
        let mut out = FoldOutcome::default();
        let Some(covered) = clip_to_hull(covered, self.hull) else {
            return out;
        };
        for (gran, bucket) in plan_slots(&covered) {
            let ring = &self.rings[gran.index()];
            for (_, cell) in ring.range((bucket, slices.0)..=(bucket, slices.1)) {
                out.merge_cell(cell);
            }
        }
        out
    }
}

/// Clips a covered interval to the (second-expanded) hull of the data.
///
/// Outside the hull there is provably no data, so skipping it keeps the
/// slot decomposition proportional to the *data* span rather than the
/// query span — a `[0, u64::MAX]` dashboard query stays O(data seconds).
pub(crate) fn clip_to_hull(
    covered: &TimeInterval,
    hull: Option<TimeInterval>,
) -> Option<TimeInterval> {
    let hull = hull?;
    let lo = hull.lo() / 1_000 * 1_000;
    let hi = ((hull.hi() as u128 / 1_000 + 1) * 1_000 - 1).min(u64::MAX as u128) as u64;
    covered.intersect(&TimeInterval::new(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_order_is_fine_to_coarse() {
        for w in Granularity::ALL.windows(2) {
            assert!(w[0].span_ms() < w[1].span_ms());
            assert_eq!(w[1].finer(), Some(w[0]));
        }
        assert_eq!(Granularity::Second.finer(), None);
    }

    #[test]
    fn insert_populates_every_ring() {
        let mut w = AggWheel::new(4);
        w.insert(0, 5_500, 10);
        w.insert(0, 6_500, 20);
        assert_eq!(w.ring_len(Granularity::Second), 2);
        assert_eq!(w.ring_len(Granularity::Minute), 1);
        assert_eq!(w.ring_len(Granularity::Day), 1);
        assert_eq!(w.hull(), Some(TimeInterval::new(5_500, 6_500)));
    }

    #[test]
    fn fold_matches_naive_over_random_data() {
        // Deterministic LCG workload; compare the wheel fold against a
        // naive filter over the raw inserts for many covered ranges.
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut w = AggWheel::new(4);
        let mut raw = Vec::new();
        for _ in 0..3_000 {
            let key = step();
            let ts = step() % 200_000; // ~3 minutes of data
            let v = step() % 1_000;
            w.insert(key, ts, v);
            raw.push((key, ts, v));
        }
        for (lo_s, hi_s) in [(0u64, 199), (3, 17), (60, 119), (0, 0), (150, 199)] {
            let covered = TimeInterval::new(lo_s * 1_000, (hi_s + 1) * 1_000 - 1);
            let got = w.fold((0, 15), &covered);
            assert!(got.residues.is_empty());
            let mut want = PartialAgg::empty();
            for (_, ts, v) in raw.iter().filter(|(_, ts, _)| covered.contains(*ts)) {
                let _ = ts;
                want.insert(*v);
            }
            assert_eq!(got.agg, want, "seconds [{lo_s}, {hi_s}]");
        }
    }

    #[test]
    fn fold_restricts_key_slices() {
        let mut w = AggWheel::new(1); // two slices: [0, 2^63), [2^63, MAX]
        w.insert(0, 1_000, 5);
        w.insert(u64::MAX, 1_000, 7);
        let lo = w.fold((0, 0), &TimeInterval::new(1_000, 1_999));
        assert_eq!(lo.agg.sum, 5);
        let hi = w.fold((1, 1), &TimeInterval::new(1_000, 1_999));
        assert_eq!(hi.agg.sum, 7);
        let both = w.fold((0, 1), &TimeInterval::new(1_000, 1_999));
        assert_eq!(both.agg.sum, 12);
        assert_eq!(both.cells_merged, 2);
    }

    #[test]
    fn wide_query_clips_to_data_hull() {
        let mut w = AggWheel::new(4);
        w.insert(42, 5_000, 1);
        // Covering the whole u64 time domain must not enumerate it.
        let out = w.fold((0, 15), &TimeInterval::full());
        assert_eq!(out.agg.count, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut w = AggWheel::new(4);
        w.insert(1, 1_000, 1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.ring_len(Granularity::Second), 0);
        let out = w.fold((0, 15), &TimeInterval::new(0, 999_999));
        assert!(out.agg.is_empty());
    }
}
