//! Hierarchical aggregate wheel for Waterwheel (extension beyond the
//! paper's evaluation; see DESIGN.md §4b).
//!
//! Waterwheel's native query path ships raw tuples out of B+ tree leaves;
//! analytics workloads (dashboards, rate monitors, fleet counts) would
//! re-scan and re-fold tuples on every query. This crate adds the
//! pre-folded form, following the time-wheel layout of `datafusion-uwheel`
//! and hierarchical time indexing à la Timehash:
//!
//! * [`PartialAgg`] — a mergeable partial aggregate (COUNT, SUM, MIN, MAX,
//!   AVG-as-sum+count) — the cell type.
//! * [`AggWheel`] — the live wheel an indexing server maintains next to its
//!   in-memory tree: per-granularity rings (second → minute → hour → day)
//!   of cells keyed by `(time bucket, key slice)`.
//! * [`WheelSummary`] — the sealed wheel written into a flushed chunk's
//!   footer; over-cap rings are dropped finest-first and show up as
//!   *residue* time ranges at query time, never as wrong answers.
//! * [`plan`] — splits an arbitrary `⟨K_q, T_q⟩` into a wheel-covered
//!   interior plus tuple-scan fringes, and decomposes the interior into the
//!   minimal run of wheel slots (coarsest granularity first).
//!
//! Exactness contract: for a rectangle decomposed by [`plan::plan_keys`] /
//! [`plan::plan_time`], summary cells over the interior plus tuple scans
//! over fringes and residues partition the query's tuple set — so the
//! merged [`PartialAgg`] equals a naive fold over a full scan, bit for bit.

#![warn(missing_docs)]

pub mod partial;
pub mod plan;
pub mod summary;
pub mod wheel;

pub use partial::PartialAgg;
pub use summary::{WheelSummary, SUMMARY_MAGIC};
pub use wheel::{AggWheel, FoldOutcome, Granularity};

use waterwheel_core::aggregate::AggregateKind;
use waterwheel_core::QueryId;

/// The answer to an aggregate query, assembled by the coordinator.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateAnswer {
    /// The query this answers.
    pub query_id: QueryId,
    /// Which aggregate the caller asked for.
    pub kind: AggregateKind,
    /// The merged partial aggregate; all five kinds are readable, `kind`
    /// records the caller's intent.
    pub agg: PartialAgg,
    /// Wheel/summary cells merged into the answer.
    pub cells_merged: u64,
    /// Tuples folded through the scan path (fringes, residues, fallbacks).
    pub scanned_tuples: u64,
}

impl AggregateAnswer {
    /// The requested aggregate as a float (COUNT/SUM/MIN/MAX are exact
    /// integers widened; MIN/MAX/AVG of an empty set are `None`).
    pub fn value(&self) -> Option<f64> {
        match self.kind {
            AggregateKind::Count => Some(self.agg.count as f64),
            AggregateKind::Sum => Some(self.agg.sum as f64),
            AggregateKind::Min => self.agg.min().map(|v| v as f64),
            AggregateKind::Max => self.agg.max().map(|v| v as f64),
            AggregateKind::Avg => self.agg.avg(),
        }
    }
}
