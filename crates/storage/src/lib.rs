//! Chunk storage for Waterwheel: the immutable on-disk chunk format, a
//! simulated distributed file system (the HDFS substitute), and the query
//! servers' LRU block cache.
//!
//! An indexing server seals its in-memory tree into a [`SealedTree`]
//! (one per chunk-size threshold crossing, paper §III-A) which
//! [`chunk::write_chunk`] serializes into a self-describing immutable blob:
//!
//! ```text
//! ┌────────┬──────────────────────────────┬──────────────────────────┐
//! │ header │ index block:                 │ leaf pages:              │
//! │ magic  │  separators, per-leaf        │  tuples of leaf 0,       │
//! │ region │  directory (offsets, time    │  tuples of leaf 1, …     │
//! │ counts │  bounds, bloom filters)      │                          │
//! └────────┴──────────────────────────────┴──────────────────────────┘
//! ```
//!
//! The index block is the persisted *template*: loading it alone lets a
//! query server route a subquery to exactly the leaf pages it needs ("the
//! data layout in our data chunks allows the system to read only the needed
//! leaf nodes for the given key range", §VI-B). Templates and leaf pages are
//! the two cache-unit kinds of the paper's LRU cache (§IV-B).
//!
//! [`SealedTree`]: waterwheel_index::SealedTree

#![warn(missing_docs)]

pub mod cache;
pub mod chunk;
pub mod dfs;
pub mod singleflight;

pub use cache::{Block, BlockCache, BlockKey, CacheStats};
pub use chunk::{
    write_chunk, write_chunk_opts, write_chunk_with_summary, ChunkFooter, ChunkIndex, ChunkReader,
    ChunkWriteOptions, LeafMeta, RangedRead, VERSION_V1, VERSION_V2,
};
pub use dfs::{DfsFile, SimDfs};
pub use singleflight::Singleflight;
