//! The query servers' LRU block cache (paper §IV-B).
//!
//! "We regard a template or a leaf node as the basic caching unit and employ
//! LRU policy to evict the old caching units." The two unit kinds map to
//! [`Block::Index`] (a chunk's parsed index block — the persisted template)
//! and [`Block::Leaf`] (one decoded leaf page). Eviction is by byte budget,
//! matching the paper's per-server cache capacity (1 GB in §VI).

use crate::chunk::ChunkIndex;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use waterwheel_agg::WheelSummary;
use waterwheel_core::{ChunkId, Tuple};

/// Cache key: which unit of which chunk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockKey {
    /// The chunk's index block (template + directory + blooms).
    Index(ChunkId),
    /// One decoded leaf page.
    Leaf(ChunkId, u32),
    /// The chunk's sealed aggregate summary (footer).
    Summary(ChunkId),
}

/// Cached value.
#[derive(Clone, Debug)]
pub enum Block {
    /// A parsed chunk index.
    Index(Arc<ChunkIndex>),
    /// A decoded leaf page.
    Leaf(Arc<Vec<Tuple>>),
    /// A decoded aggregate summary.
    Summary(Arc<WheelSummary>),
}

impl Block {
    fn byte_size(&self) -> usize {
        match self {
            Block::Index(idx) => idx.approx_size(),
            Block::Leaf(tuples) => tuples
                .iter()
                .map(|t| t.encoded_len() + std::mem::size_of::<Tuple>())
                .sum(),
            // Per cell: (bucket u64, slice u16) key + 40-byte PartialAgg,
            // plus BTreeMap node overhead.
            Block::Summary(summary) => summary.cell_count() * 64 + 64,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// Blocks evicted under byte pressure.
    pub evictions: AtomicU64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

struct CacheInner {
    /// key → (block, size, LRU stamp)
    map: HashMap<BlockKey, (Block, usize, u64)>,
    /// LRU order: stamp → key.
    order: BTreeMap<u64, BlockKey>,
    next_stamp: u64,
    used: usize,
}

/// A byte-budgeted LRU cache of chunk blocks.
pub struct BlockCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    stats: CacheStats,
}

impl BlockCache {
    /// Creates a cache with a `capacity`-byte budget.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                next_stamp: 0,
                used: 0,
            }),
            stats: CacheStats::default(),
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a block, refreshing its LRU position on hit.
    pub fn get(&self, key: &BlockKey) -> Option<Block> {
        let mut inner = self.inner.lock();
        let next = inner.next_stamp;
        inner.next_stamp += 1;
        match inner.map.get_mut(key) {
            Some((block, _, stamp)) => {
                let old = *stamp;
                *stamp = next;
                let block = block.clone();
                inner.order.remove(&old);
                inner.order.insert(next, *key);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(block)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a block, evicting least-recently-used blocks past the byte
    /// budget. A block larger than the whole budget is not cached at all.
    pub fn put(&self, key: BlockKey, block: Block) {
        let size = block.byte_size().max(1);
        if size > self.capacity {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some((_, old_size, old_stamp)) = inner.map.remove(&key) {
            inner.order.remove(&old_stamp);
            inner.used -= old_size;
        }
        while inner.used + size > self.capacity {
            let (&stamp, &victim) = inner.order.iter().next().expect("over budget but empty");
            inner.order.remove(&stamp);
            let (_, victim_size, _) = inner.map.remove(&victim).expect("order/map desync");
            inner.used -= victim_size;
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        inner.order.insert(stamp, key);
        inner.map.insert(key, (block, size, stamp));
        inner.used += size;
    }

    /// Drops every cached block (tests, server restart simulation).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_block(n: usize) -> Block {
        Block::Leaf(Arc::new((0..n as u64).map(|i| Tuple::bare(i, i)).collect()))
    }

    #[test]
    fn get_put_and_hit_accounting() {
        let cache = BlockCache::new(1 << 20);
        let key = BlockKey::Leaf(ChunkId(1), 0);
        assert!(cache.get(&key).is_none());
        cache.put(key, leaf_block(10));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 1);
        assert!((cache.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Each 10-tuple leaf block ≈ 10 * (20 + sizeof(Tuple)) bytes; pick a
        // budget that fits exactly two.
        let one = leaf_block(10).byte_size();
        let cache = BlockCache::new(one * 2 + 1);
        for i in 0..3u64 {
            cache.put(BlockKey::Leaf(ChunkId(i), 0), leaf_block(10));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&BlockKey::Leaf(ChunkId(0), 0)).is_none());
        assert!(cache.get(&BlockKey::Leaf(ChunkId(2), 0)).is_some());
        assert_eq!(cache.stats().evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn get_refreshes_lru_position() {
        let one = leaf_block(10).byte_size();
        let cache = BlockCache::new(one * 2 + 1);
        cache.put(BlockKey::Leaf(ChunkId(0), 0), leaf_block(10));
        cache.put(BlockKey::Leaf(ChunkId(1), 0), leaf_block(10));
        // Touch chunk 0 so chunk 1 becomes the LRU victim.
        cache.get(&BlockKey::Leaf(ChunkId(0), 0));
        cache.put(BlockKey::Leaf(ChunkId(2), 0), leaf_block(10));
        assert!(cache.get(&BlockKey::Leaf(ChunkId(0), 0)).is_some());
        assert!(cache.get(&BlockKey::Leaf(ChunkId(1), 0)).is_none());
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let cache = BlockCache::new(64);
        cache.put(BlockKey::Leaf(ChunkId(0), 0), leaf_block(100));
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let cache = BlockCache::new(1 << 20);
        let key = BlockKey::Leaf(ChunkId(1), 0);
        cache.put(key, leaf_block(10));
        let used_small = cache.used_bytes();
        cache.put(key, leaf_block(100));
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() > used_small);
    }

    #[test]
    fn clear_empties_everything() {
        let cache = BlockCache::new(1 << 20);
        cache.put(BlockKey::Leaf(ChunkId(1), 0), leaf_block(10));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }
}
