//! The query servers' sharded LRU block cache (paper §IV-B).
//!
//! "We regard a template or a leaf node as the basic caching unit and employ
//! LRU policy to evict the old caching units." The two unit kinds map to
//! [`Block::Index`] (a chunk's parsed index block — the persisted template)
//! and [`Block::Leaf`] (one decoded leaf page). Eviction is by byte budget,
//! matching the paper's per-server cache capacity (1 GB in §VI).
//!
//! The cache is sharded N ways by key hash: each shard owns an independent
//! LRU list under its own mutex and `capacity / N` of the byte budget, so
//! concurrent subqueries touching different blocks never contend on a
//! shared lock. LRU recency is therefore *per shard* — an eviction victim
//! is the least-recently-used block of the shard under pressure, not
//! necessarily of the whole cache — which is the standard trade
//! (cf. RocksDB's `LRUCache` shards) and costs nothing in correctness.

use crate::chunk::ChunkIndex;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use waterwheel_agg::WheelSummary;
use waterwheel_core::{ChunkId, Tuple};
use waterwheel_index::columnar::DecodedLeaf;

/// Cache key: which unit of which chunk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockKey {
    /// The chunk's index block (template + directory + blooms).
    Index(ChunkId),
    /// One decoded leaf page.
    Leaf(ChunkId, u32),
    /// The chunk's sealed aggregate summary (footer).
    Summary(ChunkId),
}

/// Cached value.
#[derive(Clone, Debug)]
pub enum Block {
    /// A parsed chunk index.
    Index(Arc<ChunkIndex>),
    /// A decoded leaf page.
    Leaf(Arc<Vec<Tuple>>),
    /// A still-encoded v2 columnar leaf image: cached compact, rows are
    /// late-materialized per subquery.
    Column(Arc<Vec<u8>>),
    /// A v2 leaf with its key/timestamp columns held decoded (the payload
    /// tail stays compressed): the hot tier — repeated scans skip the
    /// varint decode entirely. Charged at actual resident bytes, which can
    /// be several times the encoded image.
    ColumnDecoded(Arc<DecodedLeaf>),
    /// A decoded aggregate summary.
    Summary(Arc<WheelSummary>),
}

impl Block {
    fn byte_size(&self) -> usize {
        match self {
            Block::Index(idx) => idx.approx_size(),
            Block::Leaf(tuples) => tuples
                .iter()
                .map(|t| t.encoded_len() + std::mem::size_of::<Tuple>())
                .sum(),
            // Columnar images are cached compressed — that is the point —
            // but are charged at their allocation, not just their logical
            // length, so the budget reflects what is actually resident.
            Block::Column(image) => image.capacity() + std::mem::size_of::<Vec<u8>>(),
            // Decoded columns report their own residency: column vectors at
            // allocated width plus the encoded payload tail.
            Block::ColumnDecoded(leaf) => leaf.resident_bytes(),
            // Per cell: (bucket u64, slice u16) key + 40-byte PartialAgg,
            // plus BTreeMap node overhead.
            Block::Summary(summary) => summary.cell_count() * 64 + 64,
        }
    }
}

/// Hit/miss counters, aggregated across all shards.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// Blocks evicted under byte pressure.
    pub evictions: AtomicU64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Zeroes every counter (server restart simulation: a fresh cache must
    /// not report its predecessor's hit ratio).
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Shard {
    /// key → (block, size, LRU stamp)
    map: HashMap<BlockKey, (Block, usize, u64)>,
    /// LRU order: stamp → key.
    order: BTreeMap<u64, BlockKey>,
    next_stamp: u64,
    used: usize,
}

/// A byte-budgeted, sharded LRU cache of chunk blocks.
pub struct BlockCache {
    /// Per-shard byte budget (`capacity / shards`).
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    stats: CacheStats,
}

impl BlockCache {
    /// Creates a single-shard cache with a `capacity`-byte budget —
    /// byte-for-byte the classic global-LRU behavior.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// Creates a cache with a `capacity`-byte budget split evenly across
    /// `shards` independent LRU shards (each at least 1 byte).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shard_capacity: (capacity / shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            stats: CacheStats::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total byte budget across all shards.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    fn shard_of(&self, key: &BlockKey) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Bytes currently cached, summed over shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    /// Number of cached blocks, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a block, refreshing its LRU position on hit.
    pub fn get(&self, key: &BlockKey) -> Option<Block> {
        let mut shard = self.shard_of(key).lock();
        let next = shard.next_stamp;
        shard.next_stamp += 1;
        match shard.map.get_mut(key) {
            Some((block, _, stamp)) => {
                let old = *stamp;
                *stamp = next;
                let block = block.clone();
                shard.order.remove(&old);
                shard.order.insert(next, *key);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(block)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a block, evicting least-recently-used blocks of its shard
    /// past the shard's byte budget. A block larger than one shard's whole
    /// budget is not cached at all.
    pub fn put(&self, key: BlockKey, block: Block) {
        let size = block.byte_size().max(1);
        if size > self.shard_capacity {
            return;
        }
        let mut shard = self.shard_of(&key).lock();
        if let Some((_, old_size, old_stamp)) = shard.map.remove(&key) {
            shard.order.remove(&old_stamp);
            shard.used -= old_size;
        }
        while shard.used + size > self.shard_capacity {
            let (&stamp, &victim) = shard.order.iter().next().expect("over budget but empty");
            shard.order.remove(&stamp);
            let (_, victim_size, _) = shard.map.remove(&victim).expect("order/map desync");
            shard.used -= victim_size;
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = shard.next_stamp;
        shard.next_stamp += 1;
        shard.order.insert(stamp, key);
        shard.map.insert(key, (block, size, stamp));
        shard.used += size;
    }

    /// Drops every cached block and resets the hit/miss/eviction counters
    /// (tests, server restart simulation — a restarted server's stats must
    /// describe the fresh cache, not its predecessor's).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.order.clear();
            shard.used = 0;
        }
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_block(n: usize) -> Block {
        Block::Leaf(Arc::new((0..n as u64).map(|i| Tuple::bare(i, i)).collect()))
    }

    #[test]
    fn get_put_and_hit_accounting() {
        let cache = BlockCache::new(1 << 20);
        let key = BlockKey::Leaf(ChunkId(1), 0);
        assert!(cache.get(&key).is_none());
        cache.put(key, leaf_block(10));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 1);
        assert!((cache.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Each 10-tuple leaf block ≈ 10 * (20 + sizeof(Tuple)) bytes; pick a
        // budget that fits exactly two.
        let one = leaf_block(10).byte_size();
        let cache = BlockCache::new(one * 2 + 1);
        for i in 0..3u64 {
            cache.put(BlockKey::Leaf(ChunkId(i), 0), leaf_block(10));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&BlockKey::Leaf(ChunkId(0), 0)).is_none());
        assert!(cache.get(&BlockKey::Leaf(ChunkId(2), 0)).is_some());
        assert_eq!(cache.stats().evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn get_refreshes_lru_position() {
        let one = leaf_block(10).byte_size();
        let cache = BlockCache::new(one * 2 + 1);
        cache.put(BlockKey::Leaf(ChunkId(0), 0), leaf_block(10));
        cache.put(BlockKey::Leaf(ChunkId(1), 0), leaf_block(10));
        // Touch chunk 0 so chunk 1 becomes the LRU victim.
        cache.get(&BlockKey::Leaf(ChunkId(0), 0));
        cache.put(BlockKey::Leaf(ChunkId(2), 0), leaf_block(10));
        assert!(cache.get(&BlockKey::Leaf(ChunkId(0), 0)).is_some());
        assert!(cache.get(&BlockKey::Leaf(ChunkId(1), 0)).is_none());
    }

    #[test]
    fn decoded_columns_charge_resident_bytes_and_respect_budget() {
        use waterwheel_index::columnar::{encode_leaf, DecodedLeaf, ScanScratch};
        // Highly compressible leaves: the encoded image is much smaller
        // than the decoded columns, so charging encoded length would let
        // the cache hold far more bytes than its budget.
        let entries: Vec<Tuple> = (0..512u64)
            .map(|i| Tuple::new(1 + i / 64, 1_000 + i, vec![7u8; 32]))
            .collect();
        let image = encode_leaf(&entries, true);
        let mut scratch = ScanScratch::new();
        let mut decode = || {
            Arc::new(DecodedLeaf::decode(&image, entries.len() as u32, true, &mut scratch).unwrap())
        };
        let decoded = decode();
        let resident = decoded.resident_bytes();
        assert!(
            resident > image.len() * 2,
            "decoded residency {resident} should dwarf the {}-byte image",
            image.len()
        );
        assert_eq!(
            Block::ColumnDecoded(Arc::clone(&decoded)).byte_size(),
            resident
        );

        // A budget that fits exactly two decoded leaves must hold after
        // decode-and-cache of many more — honest charging forces eviction.
        let cache = BlockCache::new(resident * 2 + 1);
        let mut scratch = ScanScratch::new();
        for i in 0..8u64 {
            let decoded = Arc::new(
                DecodedLeaf::decode(&image, entries.len() as u32, true, &mut scratch).unwrap(),
            );
            cache.put(BlockKey::Leaf(ChunkId(i), 0), Block::ColumnDecoded(decoded));
        }
        assert!(
            cache.used_bytes() <= cache.capacity(),
            "decode-and-cache blew the byte budget: {} > {}",
            cache.used_bytes(),
            cache.capacity()
        );
        assert_eq!(cache.len(), 2);
        assert!(cache.stats().evictions.load(Ordering::Relaxed) >= 6);
        // Upgrading an encoded entry to its decoded form re-charges it.
        cache.clear();
        let key = BlockKey::Leaf(ChunkId(0), 0);
        cache.put(key, Block::Column(Arc::new(image.clone())));
        let encoded_used = cache.used_bytes();
        cache.put(key, Block::ColumnDecoded(decode()));
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() > encoded_used);
        assert_eq!(cache.used_bytes(), resident);
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let cache = BlockCache::new(64);
        cache.put(BlockKey::Leaf(ChunkId(0), 0), leaf_block(100));
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let cache = BlockCache::new(1 << 20);
        let key = BlockKey::Leaf(ChunkId(1), 0);
        cache.put(key, leaf_block(10));
        let used_small = cache.used_bytes();
        cache.put(key, leaf_block(100));
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() > used_small);
    }

    #[test]
    fn clear_empties_everything_and_resets_stats() {
        let cache = BlockCache::with_shards(1 << 20, 4);
        let key = BlockKey::Leaf(ChunkId(1), 0);
        cache.put(key, leaf_block(10));
        cache.get(&key);
        cache.get(&BlockKey::Leaf(ChunkId(9), 0));
        assert!(cache.stats().hits.load(Ordering::Relaxed) > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        // Restart simulation: the fresh cache must not report pre-crash
        // hit ratios.
        assert_eq!(cache.stats().hits.load(Ordering::Relaxed), 0);
        assert_eq!(cache.stats().misses.load(Ordering::Relaxed), 0);
        assert_eq!(cache.stats().evictions.load(Ordering::Relaxed), 0);
        assert_eq!(cache.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn sharded_cache_spreads_keys_and_caps_every_shard() {
        let one = leaf_block(10).byte_size();
        let shards = 4;
        let cache = BlockCache::with_shards(one * 2 * shards, shards);
        assert_eq!(cache.shard_count(), shards);
        for i in 0..64u64 {
            cache.put(BlockKey::Leaf(ChunkId(i), 0), leaf_block(10));
        }
        // Budget holds globally because it holds per shard.
        assert!(cache.used_bytes() <= cache.capacity());
        // More than one shard ended up occupied.
        let occupied = cache
            .shards
            .iter()
            .filter(|s| !s.lock().map.is_empty())
            .count();
        assert!(occupied > 1, "all keys hashed to one shard");
    }

    #[test]
    fn concurrent_put_get_never_exceeds_budget_or_loses_blocks() {
        // Property test (no proptest in `storage`): hammer a small sharded
        // cache from several threads, then verify the two invariants the
        // read path depends on — the byte budget holds per shard, and a
        // block that was just `put` without byte pressure is retrievable.
        let one = leaf_block(10).byte_size();
        let shards = 8;
        let cache = Arc::new(BlockCache::with_shards(one * 4 * shards, shards));
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for round in 0..500u64 {
                        let key = BlockKey::Leaf(ChunkId((w * 500 + round) % 97), round as u32 % 3);
                        cache.put(key, leaf_block(10));
                        cache.get(&key);
                        cache.get(&BlockKey::Leaf(ChunkId(round % 97), 0));
                    }
                });
            }
        });
        for shard in cache.shards.iter() {
            let shard = shard.lock();
            assert!(shard.used <= cache.shard_capacity, "shard over budget");
            // No lost blocks: map and order stay in lockstep, and the
            // accounted bytes equal the sum of resident block sizes.
            assert_eq!(shard.map.len(), shard.order.len(), "order/map desync");
            let resident: usize = shard.map.values().map(|(_, size, _)| *size).sum();
            assert_eq!(shard.used, resident, "byte accounting drifted");
            for (stamp, key) in shard.order.iter() {
                assert_eq!(shard.map.get(key).map(|(_, _, s)| *s), Some(*stamp));
            }
        }
        // A fresh put with plenty of headroom in every shard must stick.
        cache.clear();
        let key = BlockKey::Leaf(ChunkId(1_000), 0);
        cache.put(key, leaf_block(10));
        assert!(cache.get(&key).is_some(), "unpressured block was lost");
    }

    #[test]
    fn single_shard_cache_matches_classic_capacity() {
        let cache = BlockCache::new(1 << 20);
        assert_eq!(cache.shard_count(), 1);
        assert_eq!(cache.capacity(), 1 << 20);
    }
}
