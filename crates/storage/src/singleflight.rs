//! Singleflight de-duplication of identical in-flight loads.
//!
//! When several concurrent subqueries miss the cache on the same chunk's
//! template (or summary) at the same instant, each would issue its own DFS
//! read of the same bytes. [`Singleflight`] collapses them: the first
//! caller becomes the *leader* and performs the load; followers arriving
//! while it is in flight block until the leader finishes and share its
//! result. Errors are propagated to every waiter of that flight but are
//! **not** cached — the next caller starts a fresh flight, so transient
//! failures stay retryable.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use waterwheel_core::{Result, WwError};

/// One in-flight load: waiters park on the condvar until `slot` is filled.
struct Flight<V> {
    slot: Mutex<Option<Result<V, String>>>,
    done: Condvar,
}

/// Poison-free lock: a panicked holder does not wedge the flight.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Collapses concurrent loads of the same key into one execution.
pub struct Singleflight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    /// Loads actually executed (leaders).
    led: std::sync::atomic::AtomicU64,
    /// Loads answered by joining another caller's flight.
    shared: std::sync::atomic::AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Singleflight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Singleflight<K, V> {
    /// Creates an empty singleflight group.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
            led: std::sync::atomic::AtomicU64::new(0),
            shared: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Loads executed as the leader.
    pub fn led(&self) -> u64 {
        self.led.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Loads de-duplicated by joining an existing flight.
    pub fn shared(&self) -> u64 {
        self.shared.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Runs `load` for `key`, unless an identical load is already in
    /// flight — in that case blocks until it completes and returns its
    /// result. Errors are stringified for sharing (waiters receive
    /// [`WwError::InvalidState`] carrying the leader's message; the leader
    /// itself returns the original error).
    pub fn load(&self, key: K, load: impl FnOnce() -> Result<V>) -> Result<V> {
        let (flight, leader) = {
            let mut inflight = lock(&self.inflight);
            match inflight.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            self.shared
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut slot = lock(&flight.slot);
            while slot.is_none() {
                slot = flight.done.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
            return match slot.as_ref().expect("flight finished") {
                Ok(v) => Ok(v.clone()),
                Err(msg) => Err(WwError::InvalidState(format!("shared load failed: {msg}"))),
            };
        }
        self.led.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let result = load();
        // Unregister first so callers arriving after completion start a
        // fresh flight (important for errors), then wake the waiters.
        lock(&self.inflight).remove(&key);
        let mut slot = lock(&flight.slot);
        *slot = Some(match &result {
            Ok(v) => Ok(v.clone()),
            Err(e) => Err(e.to_string()),
        });
        flight.done.notify_all();
        drop(slot);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn sequential_loads_each_execute() {
        let sf: Singleflight<u64, u64> = Singleflight::new();
        assert_eq!(sf.load(1, || Ok(10)).unwrap(), 10);
        assert_eq!(sf.load(1, || Ok(20)).unwrap(), 20);
        assert_eq!(sf.led(), 2);
        assert_eq!(sf.shared(), 0);
    }

    #[test]
    fn concurrent_loads_of_one_key_execute_once() {
        let sf: Arc<Singleflight<u64, u64>> = Arc::new(Singleflight::new());
        let executions = AtomicU64::new(0);
        let gate = Arc::new(std::sync::Barrier::new(8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let sf = Arc::clone(&sf);
                let gate = Arc::clone(&gate);
                let executions = &executions;
                scope.spawn(move || {
                    gate.wait();
                    let v = sf
                        .load(7, || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // other threads to join it.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(42u64)
                        })
                        .unwrap();
                    assert_eq!(v, 42);
                });
            }
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "load ran twice");
        assert_eq!(sf.led(), 1);
        assert_eq!(sf.shared(), 7);
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let sf: Arc<Singleflight<u64, u64>> = Arc::new(Singleflight::new());
        std::thread::scope(|scope| {
            for k in 0..4u64 {
                let sf = Arc::clone(&sf);
                scope.spawn(move || {
                    assert_eq!(sf.load(k, || Ok(k * 2)).unwrap(), k * 2);
                });
            }
        });
        assert_eq!(sf.led(), 4);
    }

    #[test]
    fn errors_reach_waiters_but_are_not_cached() {
        let sf: Singleflight<u64, u64> = Singleflight::new();
        assert!(sf.load(1, || Err(WwError::Injected("boom"))).is_err());
        // The failed flight is gone: the next load runs fresh and succeeds.
        assert_eq!(sf.load(1, || Ok(5)).unwrap(), 5);
    }
}
