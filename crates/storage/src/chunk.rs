//! The immutable chunk format (paper §III-A) and its selective reader.
//!
//! A chunk is the flushed image of one in-memory template B+ tree. Its
//! layout is split so that the cheap-to-cache metadata (the "template": key
//! separators, per-leaf directory, temporal bloom filters) can be loaded
//! without touching tuple data, and each leaf page can then be fetched
//! individually — a subquery selective on the key domain reads only the leaf
//! pages overlapping its key range (§VI-B).

use std::sync::Arc;
use waterwheel_agg::{WheelSummary, SUMMARY_MAGIC};
use waterwheel_core::codec::{self, Decoder, Encoder};
use waterwheel_core::{Key, KeyInterval, Region, Result, TimeInterval, Tuple, WwError};
use waterwheel_index::{SealedTree, TimeBloom};

/// `"WWCHUNK1"` interpreted as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"WWCHUNK1");
const VERSION: u32 = 1;
/// Fixed byte length of the header that precedes the index block.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 4 + 8 + 8 + 32;
/// Fixed byte length of the aggregate-summary trailer at the end of a chunk
/// that carries one: `[summary_len u64][SUMMARY_MAGIC u64]`.
pub const SUMMARY_TRAILER_LEN: usize = 16;

/// Per-leaf directory entry: everything a query needs to decide whether to
/// fetch the leaf page, and where to find it.
#[derive(Clone, Debug)]
pub struct LeafMeta {
    /// Number of tuples in the leaf.
    pub count: u32,
    /// Absolute byte offset of the leaf page within the chunk file.
    pub offset: u64,
    /// Byte length of the leaf page.
    pub len: u64,
    /// Min/max timestamp of the leaf's tuples (`None` for an empty leaf).
    pub time_range: Option<TimeInterval>,
    /// Temporal bloom filter (paper §IV-B), when enabled at seal time.
    pub bloom: Option<TimeBloom>,
}

/// The parsed header + index block of a chunk — the persisted template.
///
/// This is the "template" caching unit of the paper's LRU cache: once
/// loaded, all leaf routing decisions are local.
#[derive(Clone, Debug)]
pub struct ChunkIndex {
    /// The key–time rectangle covered by the chunk.
    pub region: Region,
    /// Total tuple count.
    pub count: u64,
    /// Key separators between adjacent leaves (strictly increasing).
    pub separators: Vec<Key>,
    /// Per-leaf directory, in key order.
    pub leaves: Vec<LeafMeta>,
    /// Total chunk file size in bytes.
    pub file_len: u64,
}

impl ChunkIndex {
    /// The inclusive range of leaf indices whose key ranges may intersect
    /// `keys`.
    pub fn leaf_range(&self, keys: &KeyInterval) -> (usize, usize) {
        let lo = self.separators.partition_point(|&s| s <= keys.lo());
        let hi = self.separators.partition_point(|&s| s <= keys.hi());
        (lo, hi)
    }

    /// Whether leaf `i` can be skipped for a query with time constraint
    /// `times`: either its min/max bounds miss, or its bloom filter proves
    /// no mini-range overlaps.
    pub fn leaf_prunable(&self, i: usize, times: &TimeInterval) -> bool {
        let meta = &self.leaves[i];
        match meta.time_range {
            None => return true, // empty leaf
            Some(tr) if !tr.overlaps(times) => return true,
            _ => {}
        }
        if let Some(bloom) = &meta.bloom {
            if !bloom.may_overlap(times) {
                return true;
            }
        }
        false
    }

    /// Approximate heap size for cache accounting.
    pub fn approx_size(&self) -> usize {
        let blooms: usize = self
            .leaves
            .iter()
            .filter_map(|l| l.bloom.as_ref().map(TimeBloom::encoded_len))
            .sum();
        self.separators.len() * 8 + self.leaves.len() * std::mem::size_of::<LeafMeta>() + blooms
    }
}

/// Serializes a sealed tree into the chunk byte format (no aggregate
/// summary — see [`write_chunk_with_summary`]).
pub fn write_chunk(sealed: &SealedTree) -> Vec<u8> {
    write_chunk_with_summary(sealed, None)
}

/// Serializes a sealed tree into the chunk byte format, optionally
/// appending a sealed aggregate [`WheelSummary`] after the leaf pages.
///
/// The summary rides behind the data section, discovered through a
/// fixed-size trailer at EOF, so the header, index block, and every leaf
/// offset are byte-identical to a summary-less chunk — readers that never
/// ask for the summary are unaffected, and old chunks simply report `None`.
pub fn write_chunk_with_summary(sealed: &SealedTree, summary: Option<&WheelSummary>) -> Vec<u8> {
    debug_assert_eq!(sealed.check_invariants(), Ok(()));
    // Leaf pages first (into a scratch buffer) so the directory can record
    // final offsets once the index-block length is known.
    let mut pages: Vec<Vec<u8>> = Vec::with_capacity(sealed.leaves.len());
    for leaf in &sealed.leaves {
        let mut page = Vec::with_capacity(leaf.byte_size());
        for t in &leaf.entries {
            codec::encode_tuple(&mut page, t);
        }
        pages.push(page);
    }

    // Index block, with offsets provisionally relative to the data section.
    let mut index = Vec::new();
    index.put_u32(sealed.separators.len() as u32);
    for s in &sealed.separators {
        index.put_u64(*s);
    }
    index.put_u32(sealed.leaves.len() as u32);
    let mut rel_offset = 0u64;
    for (leaf, page) in sealed.leaves.iter().zip(&pages) {
        index.put_u32(leaf.entries.len() as u32);
        index.put_u64(rel_offset);
        index.put_u64(page.len() as u64);
        match leaf.time_range {
            Some(tr) => {
                index.put_u32(1);
                index.put_u64(tr.lo());
                index.put_u64(tr.hi());
            }
            None => index.put_u32(0),
        }
        match &leaf.bloom {
            Some(b) => {
                index.put_u32(1);
                b.encode(&mut index);
            }
            None => index.put_u32(0),
        }
        rel_offset += page.len() as u64;
    }

    let data_start = HEADER_LEN as u64 + index.len() as u64;
    let mut out = Vec::with_capacity(data_start as usize + rel_offset as usize);
    out.put_u64(MAGIC);
    out.put_u32(VERSION);
    out.put_u32(0); // flags, reserved
    out.put_u64(sealed.count as u64);
    out.put_u32(sealed.leaves.len() as u32);
    out.put_u64(index.len() as u64);
    out.put_u64(codec::fnv1a(&index));
    codec::encode_region(&mut out, &sealed.region);
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&index);
    for page in &pages {
        out.extend_from_slice(page);
    }
    if let Some(summary) = summary {
        let encoded = summary.encode();
        out.extend_from_slice(&encoded);
        out.put_u64(encoded.len() as u64);
        out.put_u64(SUMMARY_MAGIC);
    }
    out
}

/// Parses the header + index block. `prefix` must contain at least the
/// first `HEADER_LEN + index_len` bytes of the chunk; `file_len` is the
/// total chunk size (for sanity checks).
pub fn parse_index(prefix: &[u8], file_len: u64) -> Result<ChunkIndex> {
    let mut dec = Decoder::new(prefix, "chunk");
    if dec.get_u64()? != MAGIC {
        return Err(WwError::corrupt("chunk", "bad magic"));
    }
    let version = dec.get_u32()?;
    if version != VERSION {
        return Err(WwError::corrupt(
            "chunk",
            format!("unknown version {version}"),
        ));
    }
    let _flags = dec.get_u32()?;
    let count = dec.get_u64()?;
    let leaf_count = dec.get_u32()? as usize;
    let index_len = dec.get_u64()? as usize;
    let checksum = dec.get_u64()?;
    let region = codec::decode_region(&mut dec)?;
    if prefix.len() < HEADER_LEN + index_len {
        return Err(WwError::corrupt("chunk", "index block truncated"));
    }
    let index_bytes = &prefix[HEADER_LEN..HEADER_LEN + index_len];
    if codec::fnv1a(index_bytes) != checksum {
        return Err(WwError::corrupt("chunk", "index checksum mismatch"));
    }
    let mut dec = Decoder::new(index_bytes, "chunk");
    let sep_count = dec.get_u32()? as usize;
    let mut separators = Vec::with_capacity(sep_count);
    for _ in 0..sep_count {
        separators.push(dec.get_u64()?);
    }
    if !separators.windows(2).all(|w| w[0] < w[1]) {
        return Err(WwError::corrupt("chunk", "separators not increasing"));
    }
    let dir_leaves = dec.get_u32()? as usize;
    if dir_leaves != leaf_count || sep_count + 1 != leaf_count {
        return Err(WwError::corrupt("chunk", "leaf/separator count mismatch"));
    }
    let data_start = HEADER_LEN as u64 + index_len as u64;
    let mut leaves = Vec::with_capacity(leaf_count);
    for _ in 0..leaf_count {
        let entry_count = dec.get_u32()?;
        let offset = data_start + dec.get_u64()?;
        let len = dec.get_u64()?;
        if offset + len > file_len {
            return Err(WwError::corrupt("chunk", "leaf page beyond file end"));
        }
        let time_range = if dec.get_u32()? == 1 {
            let lo = dec.get_u64()?;
            let hi = dec.get_u64()?;
            Some(
                TimeInterval::checked(lo, hi)
                    .ok_or_else(|| WwError::corrupt("chunk", "inverted leaf time range"))?,
            )
        } else {
            None
        };
        let bloom = if dec.get_u32()? == 1 {
            Some(TimeBloom::decode(&mut dec)?)
        } else {
            None
        };
        leaves.push(LeafMeta {
            count: entry_count,
            offset,
            len,
            time_range,
            bloom,
        });
    }
    Ok(ChunkIndex {
        region,
        count,
        separators,
        leaves,
        file_len,
    })
}

/// Decodes the tuples of one leaf page.
pub fn decode_leaf_page(bytes: &[u8], expected: u32) -> Result<Vec<Tuple>> {
    let mut dec = Decoder::new(bytes, "leaf page");
    let mut out = Vec::with_capacity(expected as usize);
    while dec.remaining() > 0 {
        out.push(codec::decode_tuple(&mut dec)?);
    }
    if out.len() != expected as usize {
        return Err(WwError::corrupt(
            "leaf page",
            format!("expected {expected} tuples, decoded {}", out.len()),
        ));
    }
    Ok(out)
}

/// How many leading bytes to fetch when first touching a chunk. Large
/// enough to cover the header and typical index blocks in one access;
/// the reader falls back to a second ranged read for oversized indexes.
pub const INDEX_PREFETCH: usize = 64 * 1024;

/// How many trailing bytes to fetch when reading a chunk's aggregate
/// summary: covers the trailer plus typical summary bodies in one access.
pub const SUMMARY_PREFETCH: usize = 64 * 1024;

/// Abstraction over ranged chunk reads, implemented by the simulated DFS.
///
/// Each call models one file access (and is charged the per-open latency by
/// the DFS layer underneath).
pub trait RangedRead {
    /// Reads `len` bytes at `offset`; short reads are errors.
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>>;
    /// Total file length.
    fn len(&self) -> Result<u64>;
    /// Whether the file is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A chunk reader that performs selective leaf-page reads over any
/// [`RangedRead`] source, merging adjacent page fetches into single
/// accesses.
pub struct ChunkReader<R> {
    source: R,
}

impl<R: RangedRead> ChunkReader<R> {
    /// Wraps a ranged-read source.
    pub fn new(source: R) -> Self {
        Self { source }
    }

    /// Loads the chunk's index block (one access for typical chunks, two
    /// when the index outgrows [`INDEX_PREFETCH`]).
    pub fn load_index(&self) -> Result<Arc<ChunkIndex>> {
        let file_len = self.source.len()?;
        let first = self
            .source
            .read_range(0, (INDEX_PREFETCH as u64).min(file_len))?;
        if first.len() < HEADER_LEN {
            return Err(WwError::corrupt("chunk", "file shorter than header"));
        }
        // Peek at the index length to decide whether a second read is
        // needed: it sits at offset 8+4+4+8+4 = 28.
        let mut peek = Decoder::new(&first[28..36], "chunk");
        let index_len = peek.get_u64()? as usize;
        let need = HEADER_LEN + index_len;
        let prefix = if first.len() >= need {
            first
        } else {
            let mut full = first;
            let more = self
                .source
                .read_range(full.len() as u64, (need - full.len()) as u64)?;
            full.extend_from_slice(&more);
            full
        };
        Ok(Arc::new(parse_index(&prefix, file_len)?))
    }

    /// Reads the chunk's sealed aggregate summary, if one was written.
    ///
    /// Costs one ranged access for the trailer plus the summary body (read
    /// together in a single tail fetch); leaf pages are never touched.
    /// Chunks written without a summary return `Ok(None)`.
    pub fn read_summary(&self) -> Result<Option<WheelSummary>> {
        let file_len = self.source.len()?;
        if file_len < (HEADER_LEN + SUMMARY_TRAILER_LEN) as u64 {
            return Ok(None);
        }
        // One tail read covering the trailer and (for typical summaries)
        // the whole summary body; a second read only for oversized ones.
        let tail_len = (SUMMARY_PREFETCH as u64).min(file_len);
        let tail = self.source.read_range(file_len - tail_len, tail_len)?;
        let trailer = &tail[tail.len() - SUMMARY_TRAILER_LEN..];
        let mut dec = Decoder::new(trailer, "chunk summary trailer");
        let summary_len = dec.get_u64()?;
        if dec.get_u64()? != SUMMARY_MAGIC {
            return Ok(None);
        }
        let total = summary_len + SUMMARY_TRAILER_LEN as u64;
        if total > file_len - HEADER_LEN as u64 {
            return Err(WwError::corrupt("chunk", "summary trailer length invalid"));
        }
        let body = if total <= tail.len() as u64 {
            tail[tail.len() - total as usize..tail.len() - SUMMARY_TRAILER_LEN].to_vec()
        } else {
            self.source.read_range(file_len - total, summary_len)?
        };
        WheelSummary::decode(&body).map(Some)
    }

    /// Reads and decodes the leaf pages `lo..=hi` (inclusive), coalescing
    /// them into a single ranged access. Returns one tuple vector per leaf.
    pub fn read_leaves(&self, index: &ChunkIndex, lo: usize, hi: usize) -> Result<Vec<Vec<Tuple>>> {
        assert!(lo <= hi && hi < index.leaves.len());
        let start = index.leaves[lo].offset;
        let end = index.leaves[hi].offset + index.leaves[hi].len;
        let bytes = self.source.read_range(start, end - start)?;
        let mut out = Vec::with_capacity(hi - lo + 1);
        for meta in &index.leaves[lo..=hi] {
            let page_start = (meta.offset - start) as usize;
            let page = &bytes[page_start..page_start + meta.len as usize];
            out.push(decode_leaf_page(page, meta.count)?);
        }
        Ok(out)
    }
}

/// In-memory [`RangedRead`] over a byte buffer (tests and cached chunks).
impl RangedRead for &[u8] {
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let start = offset as usize;
        let end = start + len as usize;
        if end > <[u8]>::len(self) {
            return Err(WwError::corrupt("chunk", "read past end"));
        }
        Ok(self[start..end].to_vec())
    }

    fn len(&self) -> Result<u64> {
        Ok(<[u8]>::len(self) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwheel_core::Tuple;
    use waterwheel_index::{IndexConfig, TemplateBTree, TupleIndex};

    fn sealed_tree(n: u64) -> SealedTree {
        let cfg = IndexConfig {
            leaf_capacity: 16,
            fanout: 4,
            skew_check_interval: 64,
            ..IndexConfig::default()
        };
        let tree = TemplateBTree::new(KeyInterval::full(), cfg);
        for i in 0..n {
            tree.insert(Tuple::new(i * 3, 1_000 + i, vec![(i % 251) as u8; 8]));
        }
        tree.seal().expect("non-empty tree")
    }

    #[test]
    fn chunk_roundtrip_preserves_everything() {
        let sealed = sealed_tree(500);
        let expected: Vec<Tuple> = sealed.clone().into_tuples();
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.count, 500);
        assert_eq!(index.region, sealed.region);
        assert_eq!(index.leaves.len(), sealed.leaves.len());
        let pages = reader
            .read_leaves(&index, 0, index.leaves.len() - 1)
            .unwrap();
        let got: Vec<Tuple> = pages.into_iter().flatten().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn selective_leaf_reads_equal_full_reads() {
        let sealed = sealed_tree(400);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        let keys = KeyInterval::new(100, 500);
        let (lo, hi) = index.leaf_range(&keys);
        assert!(hi < index.leaves.len());
        let selective: Vec<Tuple> = reader
            .read_leaves(&index, lo, hi)
            .unwrap()
            .into_iter()
            .flatten()
            .filter(|t| keys.contains(t.key))
            .collect();
        let full: Vec<Tuple> = reader
            .read_leaves(&index, 0, index.leaves.len() - 1)
            .unwrap()
            .into_iter()
            .flatten()
            .filter(|t| keys.contains(t.key))
            .collect();
        assert_eq!(selective, full);
        assert!(!selective.is_empty());
    }

    #[test]
    fn leaf_range_prunes_outside_keys() {
        let sealed = sealed_tree(400);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        // A narrow key range should touch a strict subset of leaves.
        let (lo, hi) = index.leaf_range(&KeyInterval::new(0, 30));
        assert!(hi - lo + 1 < index.leaves.len());
    }

    #[test]
    fn temporal_pruning_via_bounds_and_bloom() {
        let sealed = sealed_tree(400);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        // All tuples have ts ≥ 1000: every leaf prunable for times [0, 10].
        let early = TimeInterval::new(0, 10);
        for i in 0..index.leaves.len() {
            assert!(index.leaf_prunable(i, &early), "leaf {i} not pruned");
        }
        // And none prunable for the full range.
        let all = TimeInterval::full();
        assert!((0..index.leaves.len()).any(|i| !index.leaf_prunable(i, &all)));
    }

    #[test]
    fn corrupt_magic_and_checksum_detected() {
        let sealed = sealed_tree(50);
        let mut bytes = write_chunk(&sealed);
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(ChunkReader::new(bad_magic.as_slice()).load_index().is_err());
        // Flip a byte inside the index block.
        bytes[HEADER_LEN + 3] ^= 0xFF;
        let err = ChunkReader::new(bytes.as_slice()).load_index().unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_file_detected() {
        let sealed = sealed_tree(50);
        let bytes = write_chunk(&sealed);
        let truncated = &bytes[..HEADER_LEN - 4];
        assert!(ChunkReader::new(truncated).load_index().is_err());
    }

    #[test]
    fn oversized_index_blocks_need_two_reads() {
        // Enough leaves that the index block exceeds INDEX_PREFETCH.
        let cfg = IndexConfig {
            leaf_capacity: 2,
            fanout: 4,
            skew_check_interval: 100,
            ..IndexConfig::default()
        };
        let tree = TemplateBTree::new(KeyInterval::full(), cfg);
        for i in 0..6_000u64 {
            tree.insert(Tuple::bare(i * 7, 1_000 + i));
        }
        let sealed = tree.seal().unwrap();
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.count, 6_000);
        assert!(HEADER_LEN + 24 + index.approx_size() > INDEX_PREFETCH);
    }

    #[test]
    fn summary_footer_roundtrips_and_leaves_index_untouched() {
        let sealed = sealed_tree(500);
        let summary = WheelSummary::build(
            sealed
                .leaves
                .iter()
                .flat_map(|l| l.entries.iter())
                .map(|t| (t.key, t.ts, t.payload.len() as u64)),
            4,
            usize::MAX,
        );
        assert!(!summary.is_empty());
        let plain = write_chunk(&sealed);
        let with = write_chunk_with_summary(&sealed, Some(&summary));
        // The summary is purely appended: the prefix is byte-identical.
        assert_eq!(&with[..plain.len()], &plain[..]);

        let reader = ChunkReader::new(with.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.count, 500);
        let got = reader.read_summary().unwrap().expect("summary present");
        assert_eq!(got, summary);
        // Leaf pages still decode correctly past the footer.
        let pages = reader
            .read_leaves(&index, 0, index.leaves.len() - 1)
            .unwrap();
        assert_eq!(pages.iter().map(Vec::len).sum::<usize>(), 500);
    }

    #[test]
    fn chunks_without_summary_report_none() {
        let sealed = sealed_tree(50);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        assert!(reader.read_summary().unwrap().is_none());
    }

    #[test]
    fn corrupt_summary_is_an_error_not_a_wrong_answer() {
        let sealed = sealed_tree(50);
        let summary = WheelSummary::build(
            sealed
                .leaves
                .iter()
                .flat_map(|l| l.entries.iter())
                .map(|t| (t.key, t.ts, 1)),
            4,
            usize::MAX,
        );
        let mut bytes = write_chunk_with_summary(&sealed, Some(&summary));
        // Flip a byte inside the summary body (just before the trailer).
        let i = bytes.len() - SUMMARY_TRAILER_LEN - 9;
        bytes[i] ^= 0xFF;
        assert!(ChunkReader::new(bytes.as_slice()).read_summary().is_err());
    }

    #[test]
    fn empty_leaves_are_handled() {
        // Seal a tree whose template has many leaves but data in few.
        let cfg = IndexConfig {
            leaf_capacity: 4,
            fanout: 4,
            ..IndexConfig::default()
        };
        let tree =
            TemplateBTree::with_separators(KeyInterval::full(), cfg, vec![100, 200, 300, 400]);
        tree.insert(Tuple::bare(150, 1)); // only leaf 1 populated
        let sealed = tree.seal().unwrap();
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.leaves.len(), 5);
        assert!(index.leaf_prunable(0, &TimeInterval::full()));
        assert!(!index.leaf_prunable(1, &TimeInterval::full()));
        let pages = reader.read_leaves(&index, 0, 4).unwrap();
        assert_eq!(pages.iter().map(Vec::len).sum::<usize>(), 1);
    }
}
