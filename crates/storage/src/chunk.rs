//! The immutable chunk format (paper §III-A) and its selective reader.
//!
//! A chunk is the flushed image of one in-memory template B+ tree. Its
//! layout is split so that the cheap-to-cache metadata (the "template": key
//! separators, per-leaf directory, temporal bloom filters) can be loaded
//! without touching tuple data, and each leaf page can then be fetched
//! individually — a subquery selective on the key domain reads only the leaf
//! pages overlapping its key range (§VI-B).
//!
//! Two on-disk versions share the header layout and are dispatched on the
//! header's version field, so a store may mix them freely:
//!
//! * **v1** — leaf pages are row tuples (`key | ts | len | payload`); an
//!   optional aggregate summary is discovered by a magic-at-EOF trailer.
//! * **v2** — leaf pages are columnar images ([`waterwheel_index::columnar`]:
//!   delta-of-delta varint timestamps, delta/dictionary keys, optionally
//!   compressed payload blocks), the leaf directory carries per-leaf MIN/MAX
//!   measure bounds, and the file always ends in a CRC-bearing footer with
//!   chunk-level measure bounds and the summary length.

use std::sync::Arc;
use waterwheel_agg::{WheelSummary, SUMMARY_MAGIC};
use waterwheel_core::codec::{self, Decoder, Encoder};
use waterwheel_core::{Key, KeyInterval, Region, Result, TimeInterval, Tuple, WwError};
use waterwheel_index::{columnar, SealedTree, TimeBloom};

/// `"WWCHUNK1"` interpreted as a little-endian u64 (both format versions).
const MAGIC: u64 = u64::from_le_bytes(*b"WWCHUNK1");
/// Row-tuple leaf pages, magic-at-EOF summary trailer.
pub const VERSION_V1: u32 = 1;
/// Columnar leaf pages, measure bounds, mandatory CRC footer.
pub const VERSION_V2: u32 = 2;
/// Header flag bit: v2 payload blocks may be compressed.
const FLAG_COMPRESSED: u32 = 1;
/// Fixed byte length of the header that precedes the index block.
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 4 + 8 + 8 + 32;
/// Fixed byte length of the aggregate-summary trailer at the end of a v1
/// chunk that carries one: `[summary_len u64][SUMMARY_MAGIC u64]`.
pub const SUMMARY_TRAILER_LEN: usize = 16;
/// `"WWCHKFT2"` interpreted as a little-endian u64: the v2 footer magic,
/// distinct from both the chunk and summary magics.
pub const FOOTER_MAGIC: u64 = u64::from_le_bytes(*b"WWCHKFT2");
/// Fixed byte length of the mandatory v2 footer:
/// `[measure_flag u8][min u64][max u64][summary_len u64][crc u64][magic u64]`
/// where `crc` is the FNV-1a hash of the preceding 25 footer bytes.
pub const V2_FOOTER_LEN: usize = 1 + 8 + 8 + 8 + 8 + 8;

/// Per-leaf directory entry: everything a query needs to decide whether to
/// fetch the leaf page, and where to find it.
#[derive(Clone, Debug)]
pub struct LeafMeta {
    /// Number of tuples in the leaf.
    pub count: u32,
    /// Absolute byte offset of the leaf page within the chunk file.
    pub offset: u64,
    /// Byte length of the leaf page.
    pub len: u64,
    /// Min/max timestamp of the leaf's tuples (`None` for an empty leaf).
    pub time_range: Option<TimeInterval>,
    /// Temporal bloom filter (paper §IV-B), when enabled at seal time.
    pub bloom: Option<TimeBloom>,
    /// MIN/MAX of the registered measure over the leaf's tuples (v2 chunks
    /// written with a measure; `None` on v1 chunks and empty leaves). Lets
    /// executors skip leaves that cannot satisfy a `measure_range` filter.
    pub measure_range: Option<(u64, u64)>,
}

/// The parsed header + index block of a chunk — the persisted template.
///
/// This is the "template" caching unit of the paper's LRU cache: once
/// loaded, all leaf routing decisions are local.
#[derive(Clone, Debug)]
pub struct ChunkIndex {
    /// The key–time rectangle covered by the chunk.
    pub region: Region,
    /// Total tuple count.
    pub count: u64,
    /// Key separators between adjacent leaves (strictly increasing).
    pub separators: Vec<Key>,
    /// Per-leaf directory, in key order.
    pub leaves: Vec<LeafMeta>,
    /// Total chunk file size in bytes.
    pub file_len: u64,
    /// On-disk format version ([`VERSION_V1`] or [`VERSION_V2`]); decides
    /// how leaf pages decode.
    pub version: u32,
}

impl ChunkIndex {
    /// The inclusive range of leaf indices whose key ranges may intersect
    /// `keys`.
    pub fn leaf_range(&self, keys: &KeyInterval) -> (usize, usize) {
        let lo = self.separators.partition_point(|&s| s <= keys.lo());
        let hi = self.separators.partition_point(|&s| s <= keys.hi());
        (lo, hi)
    }

    /// Whether leaf `i` can be skipped for a query with time constraint
    /// `times`: either its min/max bounds miss, or its bloom filter proves
    /// no mini-range overlaps.
    pub fn leaf_prunable(&self, i: usize, times: &TimeInterval) -> bool {
        let meta = &self.leaves[i];
        match meta.time_range {
            None => return true, // empty leaf
            Some(tr) if !tr.overlaps(times) => return true,
            _ => {}
        }
        if let Some(bloom) = &meta.bloom {
            if !bloom.may_overlap(times) {
                return true;
            }
        }
        false
    }

    /// Approximate heap size for cache accounting.
    pub fn approx_size(&self) -> usize {
        let blooms: usize = self
            .leaves
            .iter()
            .filter_map(|l| l.bloom.as_ref().map(TimeBloom::encoded_len))
            .sum();
        self.separators.len() * 8 + self.leaves.len() * std::mem::size_of::<LeafMeta>() + blooms
    }
}

/// Writer knobs for [`write_chunk_opts`]; the default writes v1.
pub struct ChunkWriteOptions<'a> {
    /// On-disk format: [`VERSION_V1`] or [`VERSION_V2`].
    pub format_version: u32,
    /// Compress v2 payload blocks (ignored for v1).
    pub compression: bool,
    /// Measure used to compute per-leaf and per-chunk MIN/MAX bounds
    /// (v2 only; `None` writes no bounds).
    pub measure: Option<&'a (dyn Fn(&Tuple) -> u64 + Sync)>,
}

impl Default for ChunkWriteOptions<'_> {
    fn default() -> Self {
        Self {
            format_version: VERSION_V1,
            compression: false,
            measure: None,
        }
    }
}

/// Serializes a sealed tree into the v1 chunk byte format (no aggregate
/// summary — see [`write_chunk_with_summary`]).
pub fn write_chunk(sealed: &SealedTree) -> Vec<u8> {
    write_chunk_with_summary(sealed, None)
}

/// Serializes a sealed tree into the v1 chunk byte format, optionally
/// appending a sealed aggregate [`WheelSummary`] after the leaf pages.
///
/// The summary rides behind the data section, discovered through a
/// fixed-size trailer at EOF, so the header, index block, and every leaf
/// offset are byte-identical to a summary-less chunk — readers that never
/// ask for the summary are unaffected, and old chunks simply report `None`.
pub fn write_chunk_with_summary(sealed: &SealedTree, summary: Option<&WheelSummary>) -> Vec<u8> {
    write_chunk_opts(sealed, summary, &ChunkWriteOptions::default())
}

/// Serializes a sealed tree in the format selected by `opts`.
///
/// v2 chunks store leaves as columnar images, record MIN/MAX measure
/// bounds per leaf in the directory, and always end in a CRC-bearing
/// footer carrying the chunk-level bounds and the summary length (zero
/// when no summary was written).
pub fn write_chunk_opts(
    sealed: &SealedTree,
    summary: Option<&WheelSummary>,
    opts: &ChunkWriteOptions<'_>,
) -> Vec<u8> {
    debug_assert_eq!(sealed.check_invariants(), Ok(()));
    assert!(
        matches!(opts.format_version, VERSION_V1 | VERSION_V2),
        "unknown chunk format version {}",
        opts.format_version
    );
    let v2 = opts.format_version == VERSION_V2;
    // Leaf pages first (into a scratch buffer) so the directory can record
    // final offsets once the index-block length is known.
    let mut pages: Vec<Vec<u8>> = Vec::with_capacity(sealed.leaves.len());
    for leaf in &sealed.leaves {
        if v2 {
            pages.push(columnar::encode_leaf(&leaf.entries, opts.compression));
        } else {
            let mut page = Vec::with_capacity(leaf.byte_size());
            for t in &leaf.entries {
                codec::encode_tuple(&mut page, t);
            }
            pages.push(page);
        }
    }

    let leaf_bounds = |leaf: &waterwheel_index::SealedLeaf| -> Option<(u64, u64)> {
        let measure = opts.measure?;
        let mut it = leaf.entries.iter().map(measure);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), m| (lo.min(m), hi.max(m))))
    };

    // Index block, with offsets provisionally relative to the data section.
    let mut index = Vec::new();
    index.put_u32(sealed.separators.len() as u32);
    for s in &sealed.separators {
        index.put_u64(*s);
    }
    index.put_u32(sealed.leaves.len() as u32);
    let mut rel_offset = 0u64;
    let mut chunk_bounds: Option<(u64, u64)> = None;
    for (leaf, page) in sealed.leaves.iter().zip(&pages) {
        index.put_u32(leaf.entries.len() as u32);
        index.put_u64(rel_offset);
        index.put_u64(page.len() as u64);
        match leaf.time_range {
            Some(tr) => {
                index.put_u32(1);
                index.put_u64(tr.lo());
                index.put_u64(tr.hi());
            }
            None => index.put_u32(0),
        }
        match &leaf.bloom {
            Some(b) => {
                index.put_u32(1);
                b.encode(&mut index);
            }
            None => index.put_u32(0),
        }
        if v2 {
            match leaf_bounds(leaf) {
                Some((lo, hi)) => {
                    index.put_u32(1);
                    index.put_u64(lo);
                    index.put_u64(hi);
                    chunk_bounds = Some(match chunk_bounds {
                        Some((clo, chi)) => (clo.min(lo), chi.max(hi)),
                        None => (lo, hi),
                    });
                }
                None => index.put_u32(0),
            }
        }
        rel_offset += page.len() as u64;
    }

    let data_start = HEADER_LEN as u64 + index.len() as u64;
    let mut out = Vec::with_capacity(data_start as usize + rel_offset as usize);
    out.put_u64(MAGIC);
    out.put_u32(opts.format_version);
    out.put_u32(if v2 && opts.compression {
        FLAG_COMPRESSED
    } else {
        0
    });
    out.put_u64(sealed.count as u64);
    out.put_u32(sealed.leaves.len() as u32);
    out.put_u64(index.len() as u64);
    out.put_u64(codec::fnv1a(&index));
    codec::encode_region(&mut out, &sealed.region);
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&index);
    for page in &pages {
        out.extend_from_slice(page);
    }
    let summary_len = match summary {
        Some(summary) => {
            let encoded = summary.encode();
            out.extend_from_slice(&encoded);
            encoded.len() as u64
        }
        None => 0,
    };
    if v2 {
        let mut footer = Vec::with_capacity(V2_FOOTER_LEN);
        match chunk_bounds {
            Some((lo, hi)) => {
                footer.put_u8(1);
                footer.put_u64(lo);
                footer.put_u64(hi);
            }
            None => {
                footer.put_u8(0);
                footer.put_u64(0);
                footer.put_u64(0);
            }
        }
        footer.put_u64(summary_len);
        let crc = codec::fnv1a(&footer);
        footer.put_u64(crc);
        footer.put_u64(FOOTER_MAGIC);
        debug_assert_eq!(footer.len(), V2_FOOTER_LEN);
        out.extend_from_slice(&footer);
    } else if summary_len > 0 {
        out.put_u64(summary_len);
        out.put_u64(SUMMARY_MAGIC);
    }
    out
}

/// Parses the header + index block. `prefix` must contain at least the
/// first `HEADER_LEN + index_len` bytes of the chunk; `file_len` is the
/// total chunk size (for sanity checks).
pub fn parse_index(prefix: &[u8], file_len: u64) -> Result<ChunkIndex> {
    let mut dec = Decoder::new(prefix, "chunk");
    if dec.get_u64()? != MAGIC {
        return Err(WwError::corrupt("chunk", "bad magic"));
    }
    let version = dec.get_u32()?;
    if !matches!(version, VERSION_V1 | VERSION_V2) {
        return Err(WwError::corrupt(
            "chunk",
            format!("unknown version {version}"),
        ));
    }
    let _flags = dec.get_u32()?;
    let count = dec.get_u64()?;
    let leaf_count = dec.get_u32()? as usize;
    let index_len = dec.get_u64()? as usize;
    let checksum = dec.get_u64()?;
    let region = codec::decode_region(&mut dec)?;
    if prefix.len() < HEADER_LEN + index_len {
        return Err(WwError::corrupt("chunk", "index block truncated"));
    }
    let index_bytes = &prefix[HEADER_LEN..HEADER_LEN + index_len];
    if codec::fnv1a(index_bytes) != checksum {
        return Err(WwError::corrupt("chunk", "index checksum mismatch"));
    }
    let mut dec = Decoder::new(index_bytes, "chunk");
    let sep_count = dec.get_u32()? as usize;
    let mut separators = Vec::with_capacity(sep_count);
    for _ in 0..sep_count {
        separators.push(dec.get_u64()?);
    }
    if !separators.windows(2).all(|w| w[0] < w[1]) {
        return Err(WwError::corrupt("chunk", "separators not increasing"));
    }
    let dir_leaves = dec.get_u32()? as usize;
    if dir_leaves != leaf_count || sep_count + 1 != leaf_count {
        return Err(WwError::corrupt("chunk", "leaf/separator count mismatch"));
    }
    let data_start = HEADER_LEN as u64 + index_len as u64;
    // Leaf extents come from potentially corrupt bytes: all arithmetic is
    // checked (a forged `offset`/`len` near u64::MAX must not wrap past the
    // `file_len` bound), and pages must be non-overlapping and in file
    // order so `read_leaves`' coalesced-slice arithmetic cannot underflow.
    let mut leaves = Vec::with_capacity(leaf_count);
    let mut prev_end = data_start;
    for _ in 0..leaf_count {
        let entry_count = dec.get_u32()?;
        let offset = data_start
            .checked_add(dec.get_u64()?)
            .ok_or_else(|| WwError::corrupt("chunk", "leaf page offset overflows"))?;
        let len = dec.get_u64()?;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| WwError::corrupt("chunk", "leaf page extent overflows"))?;
        if end > file_len {
            return Err(WwError::corrupt("chunk", "leaf page beyond file end"));
        }
        if offset < prev_end {
            return Err(WwError::corrupt("chunk", "leaf pages overlap or regress"));
        }
        prev_end = end;
        let time_range = if dec.get_u32()? == 1 {
            let lo = dec.get_u64()?;
            let hi = dec.get_u64()?;
            Some(
                TimeInterval::checked(lo, hi)
                    .ok_or_else(|| WwError::corrupt("chunk", "inverted leaf time range"))?,
            )
        } else {
            None
        };
        let bloom = if dec.get_u32()? == 1 {
            Some(TimeBloom::decode(&mut dec)?)
        } else {
            None
        };
        let measure_range = if version >= VERSION_V2 {
            match dec.get_u32()? {
                0 => None,
                1 => {
                    let lo = dec.get_u64()?;
                    let hi = dec.get_u64()?;
                    if lo > hi {
                        return Err(WwError::corrupt("chunk", "inverted leaf measure range"));
                    }
                    Some((lo, hi))
                }
                _ => return Err(WwError::corrupt("chunk", "bad leaf measure flag")),
            }
        } else {
            None
        };
        leaves.push(LeafMeta {
            count: entry_count,
            offset,
            len,
            time_range,
            bloom,
            measure_range,
        });
    }
    Ok(ChunkIndex {
        region,
        count,
        separators,
        leaves,
        file_len,
        version,
    })
}

/// Smallest possible row-encoded tuple: 8-byte key, 8-byte timestamp,
/// 4-byte payload length prefix.
const MIN_TUPLE_LEN: usize = 20;

/// Decodes the tuples of one v1 (row-format) leaf page.
pub fn decode_leaf_page(bytes: &[u8], expected: u32) -> Result<Vec<Tuple>> {
    let mut dec = Decoder::new(bytes, "leaf page");
    // `expected` comes from a (checksummed but possibly forged) directory:
    // cap the pre-allocation by what the page bytes could plausibly hold
    // rather than trusting it with up to 4-billion-entry reserves.
    let plausible = (expected as usize).min(bytes.len() / MIN_TUPLE_LEN);
    let mut out = Vec::with_capacity(plausible);
    while dec.remaining() > 0 {
        out.push(codec::decode_tuple(&mut dec)?);
    }
    if out.len() != expected as usize {
        return Err(WwError::corrupt(
            "leaf page",
            format!("expected {expected} tuples, decoded {}", out.len()),
        ));
    }
    Ok(out)
}

/// How many leading bytes to fetch when first touching a chunk. Large
/// enough to cover the header and typical index blocks in one access;
/// the reader falls back to a second ranged read for oversized indexes.
pub const INDEX_PREFETCH: usize = 64 * 1024;

/// How many trailing bytes to fetch when reading a chunk's aggregate
/// summary: covers the trailer plus typical summary bodies in one access.
pub const SUMMARY_PREFETCH: usize = 64 * 1024;

/// Abstraction over ranged chunk reads, implemented by the simulated DFS.
///
/// Each call models one file access (and is charged the per-open latency by
/// the DFS layer underneath).
pub trait RangedRead {
    /// Reads `len` bytes at `offset`; short reads are errors.
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>>;
    /// Total file length.
    fn len(&self) -> Result<u64>;
    /// Whether the file is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A chunk reader that performs selective leaf-page reads over any
/// [`RangedRead`] source, merging adjacent page fetches into single
/// accesses.
pub struct ChunkReader<R> {
    source: R,
}

impl<R: RangedRead> ChunkReader<R> {
    /// Wraps a ranged-read source.
    pub fn new(source: R) -> Self {
        Self { source }
    }

    /// Loads the chunk's index block (one access for typical chunks, two
    /// when the index outgrows [`INDEX_PREFETCH`]).
    pub fn load_index(&self) -> Result<Arc<ChunkIndex>> {
        let file_len = self.source.len()?;
        let first = self
            .source
            .read_range(0, (INDEX_PREFETCH as u64).min(file_len))?;
        if first.len() < HEADER_LEN {
            return Err(WwError::corrupt("chunk", "file shorter than header"));
        }
        // Peek at the index length to decide whether a second read is
        // needed: it sits at offset 8+4+4+8+4 = 28.
        let mut peek = Decoder::new(&first[28..36], "chunk");
        let index_len = peek.get_u64()? as usize;
        let need = HEADER_LEN + index_len;
        let prefix = if first.len() >= need {
            first
        } else {
            let mut full = first;
            let more = self
                .source
                .read_range(full.len() as u64, (need - full.len()) as u64)?;
            full.extend_from_slice(&more);
            full
        };
        Ok(Arc::new(parse_index(&prefix, file_len)?))
    }

    /// Reads the chunk's sealed aggregate summary, if one was written.
    ///
    /// Costs one ranged access for typical chunks (one tail fetch covers
    /// the trailer/footer, the summary body, and — for small files — the
    /// version header); leaf pages are never touched. Chunks written
    /// without a summary return `Ok(None)`.
    ///
    /// Version dispatch: v1 summaries are *discovered* by the heuristic
    /// magic-at-EOF trailer, so implausible trailers (a data byte pattern
    /// that happens to match the magic) fail soft to `Ok(None)`; only a
    /// plausible trailer with a summary body that fails to decode is
    /// `Corrupt`. v2 chunks always carry a CRC-bearing footer, so any
    /// footer that fails validation is `Corrupt`.
    pub fn read_summary(&self) -> Result<Option<WheelSummary>> {
        let file_len = self.source.len()?;
        if file_len < (HEADER_LEN + SUMMARY_TRAILER_LEN) as u64 {
            return Ok(None);
        }
        let tail_len = (SUMMARY_PREFETCH as u64).min(file_len);
        let tail = self.source.read_range(file_len - tail_len, tail_len)?;
        match self.peek_version(file_len, &tail)? {
            VERSION_V1 => self.read_summary_v1(file_len, &tail),
            _ => {
                let footer = self.parse_v2_footer(file_len, &tail)?;
                if footer.summary_len == 0 {
                    return Ok(None);
                }
                let body = self.summary_body(file_len, &tail, footer.summary_len, V2_FOOTER_LEN)?;
                WheelSummary::decode(&body).map(Some)
            }
        }
    }

    /// Reads the v2 footer: chunk-level MIN/MAX measure bounds and summary
    /// length. Returns `None` for v1 chunks (which have no footer).
    pub fn read_footer(&self) -> Result<Option<ChunkFooter>> {
        let file_len = self.source.len()?;
        if file_len < HEADER_LEN as u64 {
            return Err(WwError::corrupt("chunk", "file shorter than header"));
        }
        let tail_len = ((V2_FOOTER_LEN + 12) as u64).min(file_len);
        let tail = self.source.read_range(file_len - tail_len, tail_len)?;
        match self.peek_version(file_len, &tail)? {
            VERSION_V1 => Ok(None),
            _ => self.parse_v2_footer(file_len, &tail).map(Some),
        }
    }

    /// Determines the chunk's format version from its header, reusing an
    /// already-fetched tail when it happens to cover offset 0 (small
    /// files), so summary reads on typical chunks stay one access.
    fn peek_version(&self, file_len: u64, tail: &[u8]) -> Result<u32> {
        let head: Vec<u8> = if tail.len() as u64 == file_len {
            tail[..12.min(tail.len())].to_vec()
        } else {
            self.source.read_range(0, 12)?
        };
        let mut dec = Decoder::new(&head, "chunk");
        if dec.get_u64()? != MAGIC {
            return Err(WwError::corrupt("chunk", "bad magic"));
        }
        let version = dec.get_u32()?;
        if !matches!(version, VERSION_V1 | VERSION_V2) {
            return Err(WwError::corrupt(
                "chunk",
                format!("unknown version {version}"),
            ));
        }
        Ok(version)
    }

    fn read_summary_v1(&self, file_len: u64, tail: &[u8]) -> Result<Option<WheelSummary>> {
        let trailer = &tail[tail.len() - SUMMARY_TRAILER_LEN..];
        let mut dec = Decoder::new(trailer, "chunk summary trailer");
        let summary_len = dec.get_u64()?;
        if dec.get_u64()? != SUMMARY_MAGIC {
            return Ok(None);
        }
        // The magic alone is heuristic — a summary-less chunk whose final
        // data bytes coincide with it must not surface a spurious error, so
        // an implausible length fails soft to "no summary".
        let Some(total) = summary_len.checked_add(SUMMARY_TRAILER_LEN as u64) else {
            return Ok(None);
        };
        if summary_len < 8 || total > file_len - HEADER_LEN as u64 {
            return Ok(None);
        }
        let body = self.summary_body(file_len, tail, summary_len, SUMMARY_TRAILER_LEN)?;
        // A real v1 summary body always begins with the summary magic; any
        // other prefix means the trailer match was a coincidence.
        let mut head = Decoder::new(&body, "chunk summary");
        if head.get_u64()? != SUMMARY_MAGIC {
            return Ok(None);
        }
        // From here the chunk plausibly carries a summary: decode failures
        // are genuine corruption, not "no summary".
        WheelSummary::decode(&body).map(Some)
    }

    /// Fetches the `summary_len` bytes that precede the `trailer_len`-byte
    /// trailer at EOF, reusing the tail fetch when it covers them.
    fn summary_body(
        &self,
        file_len: u64,
        tail: &[u8],
        summary_len: u64,
        trailer_len: usize,
    ) -> Result<Vec<u8>> {
        let total = summary_len
            .checked_add(trailer_len as u64)
            .ok_or_else(|| WwError::corrupt("chunk", "summary length overflows"))?;
        if total <= tail.len() as u64 {
            Ok(tail[tail.len() - total as usize..tail.len() - trailer_len].to_vec())
        } else {
            self.source.read_range(file_len - total, summary_len)
        }
    }

    fn parse_v2_footer(&self, file_len: u64, tail: &[u8]) -> Result<ChunkFooter> {
        if file_len < (HEADER_LEN + V2_FOOTER_LEN) as u64 || tail.len() < V2_FOOTER_LEN {
            return Err(WwError::corrupt("chunk", "v2 chunk shorter than footer"));
        }
        let footer = &tail[tail.len() - V2_FOOTER_LEN..];
        let mut dec = Decoder::new(footer, "chunk footer");
        let measure_flag = dec.get_u8()?;
        let lo = dec.get_u64()?;
        let hi = dec.get_u64()?;
        let summary_len = dec.get_u64()?;
        let crc = dec.get_u64()?;
        let magic = dec.get_u64()?;
        if magic != FOOTER_MAGIC {
            return Err(WwError::corrupt("chunk", "bad footer magic"));
        }
        if crc != codec::fnv1a(&footer[..V2_FOOTER_LEN - 16]) {
            return Err(WwError::corrupt("chunk", "footer checksum mismatch"));
        }
        let measure_range = match measure_flag {
            0 => None,
            1 if lo <= hi => Some((lo, hi)),
            _ => return Err(WwError::corrupt("chunk", "bad footer measure bounds")),
        };
        if summary_len
            .checked_add((HEADER_LEN + V2_FOOTER_LEN) as u64)
            .is_none_or(|total| total > file_len)
        {
            return Err(WwError::corrupt("chunk", "footer summary length invalid"));
        }
        Ok(ChunkFooter {
            measure_range,
            summary_len,
        })
    }

    /// Reads and decodes the leaf pages `lo..=hi` (inclusive), coalescing
    /// them into a single ranged access and dispatching the page decoder on
    /// the chunk's format version. Returns one tuple vector per leaf.
    pub fn read_leaves(&self, index: &ChunkIndex, lo: usize, hi: usize) -> Result<Vec<Vec<Tuple>>> {
        let (bytes, start) = self.fetch_page_run(index, lo, hi)?;
        let mut out = Vec::with_capacity(hi - lo + 1);
        // One scratch across the whole run: columnar pages decoded back to
        // back reuse the same column buffers.
        let mut scratch = columnar::ScanScratch::new();
        for meta in &index.leaves[lo..=hi] {
            let page = page_slice(&bytes, start, meta)?;
            out.push(match index.version {
                VERSION_V1 => decode_leaf_page(page, meta.count)?,
                _ => columnar::decode_leaf_with(page, meta.count, &mut scratch)?,
            });
        }
        Ok(out)
    }

    /// Reads the raw (still-encoded) leaf pages `lo..=hi` in one coalesced
    /// access. Used by the v2 query path, which caches the compact encoded
    /// images and late-materializes rows per subquery.
    pub fn read_leaf_pages(
        &self,
        index: &ChunkIndex,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<Vec<u8>>> {
        let (bytes, start) = self.fetch_page_run(index, lo, hi)?;
        let mut out = Vec::with_capacity(hi - lo + 1);
        for meta in &index.leaves[lo..=hi] {
            out.push(page_slice(&bytes, start, meta)?.to_vec());
        }
        Ok(out)
    }

    fn fetch_page_run(&self, index: &ChunkIndex, lo: usize, hi: usize) -> Result<(Vec<u8>, u64)> {
        assert!(lo <= hi && hi < index.leaves.len());
        let start = index.leaves[lo].offset;
        // parse_index enforced in-order, non-overlapping, in-bounds pages,
        // but keep the arithmetic checked so a logic slip surfaces as a
        // typed error rather than a wrap.
        let end = index.leaves[hi]
            .offset
            .checked_add(index.leaves[hi].len)
            .ok_or_else(|| WwError::corrupt("chunk", "leaf page extent overflows"))?;
        let span = end
            .checked_sub(start)
            .ok_or_else(|| WwError::corrupt("chunk", "leaf pages regress"))?;
        let bytes = self.source.read_range(start, span)?;
        Ok((bytes, start))
    }
}

/// Slices one leaf page out of a coalesced fetch starting at `start`.
fn page_slice<'a>(bytes: &'a [u8], start: u64, meta: &LeafMeta) -> Result<&'a [u8]> {
    let corrupt = || WwError::corrupt("chunk", "leaf page outside fetched range");
    let page_start = usize::try_from(meta.offset.checked_sub(start).ok_or_else(corrupt)?)
        .map_err(|_| corrupt())?;
    let page_end = page_start
        .checked_add(usize::try_from(meta.len).map_err(|_| corrupt())?)
        .ok_or_else(corrupt)?;
    bytes.get(page_start..page_end).ok_or_else(corrupt)
}

/// Decodes one leaf page according to the chunk's format version.
pub fn decode_page(version: u32, page: &[u8], count: u32) -> Result<Vec<Tuple>> {
    match version {
        VERSION_V1 => decode_leaf_page(page, count),
        _ => columnar::decode_leaf(page, count),
    }
}

/// The v2 chunk footer: chunk-level MIN/MAX measure bounds plus the length
/// of the trailing aggregate summary (zero when none was written).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkFooter {
    /// MIN/MAX of the registered measure over every tuple in the chunk;
    /// `None` when the chunk was written without a measure (or is empty).
    pub measure_range: Option<(u64, u64)>,
    /// Encoded byte length of the aggregate summary preceding the footer.
    pub summary_len: u64,
}

/// In-memory [`RangedRead`] over a byte buffer (tests and cached chunks).
impl RangedRead for &[u8] {
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let start = offset as usize;
        let end = start + len as usize;
        if end > <[u8]>::len(self) {
            return Err(WwError::corrupt("chunk", "read past end"));
        }
        Ok(self[start..end].to_vec())
    }

    fn len(&self) -> Result<u64> {
        Ok(<[u8]>::len(self) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waterwheel_core::Tuple;
    use waterwheel_index::{IndexConfig, TemplateBTree, TupleIndex};

    fn sealed_tree(n: u64) -> SealedTree {
        let cfg = IndexConfig {
            leaf_capacity: 16,
            fanout: 4,
            skew_check_interval: 64,
            ..IndexConfig::default()
        };
        let tree = TemplateBTree::new(KeyInterval::full(), cfg);
        for i in 0..n {
            tree.insert(Tuple::new(i * 3, 1_000 + i, vec![(i % 251) as u8; 8]));
        }
        tree.seal().expect("non-empty tree")
    }

    #[test]
    fn chunk_roundtrip_preserves_everything() {
        let sealed = sealed_tree(500);
        let expected: Vec<Tuple> = sealed.clone().into_tuples();
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.count, 500);
        assert_eq!(index.region, sealed.region);
        assert_eq!(index.leaves.len(), sealed.leaves.len());
        let pages = reader
            .read_leaves(&index, 0, index.leaves.len() - 1)
            .unwrap();
        let got: Vec<Tuple> = pages.into_iter().flatten().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn selective_leaf_reads_equal_full_reads() {
        let sealed = sealed_tree(400);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        let keys = KeyInterval::new(100, 500);
        let (lo, hi) = index.leaf_range(&keys);
        assert!(hi < index.leaves.len());
        let selective: Vec<Tuple> = reader
            .read_leaves(&index, lo, hi)
            .unwrap()
            .into_iter()
            .flatten()
            .filter(|t| keys.contains(t.key))
            .collect();
        let full: Vec<Tuple> = reader
            .read_leaves(&index, 0, index.leaves.len() - 1)
            .unwrap()
            .into_iter()
            .flatten()
            .filter(|t| keys.contains(t.key))
            .collect();
        assert_eq!(selective, full);
        assert!(!selective.is_empty());
    }

    #[test]
    fn leaf_range_prunes_outside_keys() {
        let sealed = sealed_tree(400);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        // A narrow key range should touch a strict subset of leaves.
        let (lo, hi) = index.leaf_range(&KeyInterval::new(0, 30));
        assert!(hi - lo + 1 < index.leaves.len());
    }

    #[test]
    fn temporal_pruning_via_bounds_and_bloom() {
        let sealed = sealed_tree(400);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        // All tuples have ts ≥ 1000: every leaf prunable for times [0, 10].
        let early = TimeInterval::new(0, 10);
        for i in 0..index.leaves.len() {
            assert!(index.leaf_prunable(i, &early), "leaf {i} not pruned");
        }
        // And none prunable for the full range.
        let all = TimeInterval::full();
        assert!((0..index.leaves.len()).any(|i| !index.leaf_prunable(i, &all)));
    }

    #[test]
    fn corrupt_magic_and_checksum_detected() {
        let sealed = sealed_tree(50);
        let mut bytes = write_chunk(&sealed);
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(ChunkReader::new(bad_magic.as_slice()).load_index().is_err());
        // Flip a byte inside the index block.
        bytes[HEADER_LEN + 3] ^= 0xFF;
        let err = ChunkReader::new(bytes.as_slice()).load_index().unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_file_detected() {
        let sealed = sealed_tree(50);
        let bytes = write_chunk(&sealed);
        let truncated = &bytes[..HEADER_LEN - 4];
        assert!(ChunkReader::new(truncated).load_index().is_err());
    }

    #[test]
    fn oversized_index_blocks_need_two_reads() {
        // Enough leaves that the index block exceeds INDEX_PREFETCH.
        let cfg = IndexConfig {
            leaf_capacity: 2,
            fanout: 4,
            skew_check_interval: 100,
            ..IndexConfig::default()
        };
        let tree = TemplateBTree::new(KeyInterval::full(), cfg);
        for i in 0..6_000u64 {
            tree.insert(Tuple::bare(i * 7, 1_000 + i));
        }
        let sealed = tree.seal().unwrap();
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.count, 6_000);
        assert!(HEADER_LEN + 24 + index.approx_size() > INDEX_PREFETCH);
    }

    #[test]
    fn summary_footer_roundtrips_and_leaves_index_untouched() {
        let sealed = sealed_tree(500);
        let summary = WheelSummary::build(
            sealed
                .leaves
                .iter()
                .flat_map(|l| l.entries.iter())
                .map(|t| (t.key, t.ts, t.payload.len() as u64)),
            4,
            usize::MAX,
        );
        assert!(!summary.is_empty());
        let plain = write_chunk(&sealed);
        let with = write_chunk_with_summary(&sealed, Some(&summary));
        // The summary is purely appended: the prefix is byte-identical.
        assert_eq!(&with[..plain.len()], &plain[..]);

        let reader = ChunkReader::new(with.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.count, 500);
        let got = reader.read_summary().unwrap().expect("summary present");
        assert_eq!(got, summary);
        // Leaf pages still decode correctly past the footer.
        let pages = reader
            .read_leaves(&index, 0, index.leaves.len() - 1)
            .unwrap();
        assert_eq!(pages.iter().map(Vec::len).sum::<usize>(), 500);
    }

    #[test]
    fn chunks_without_summary_report_none() {
        let sealed = sealed_tree(50);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        assert!(reader.read_summary().unwrap().is_none());
    }

    #[test]
    fn corrupt_summary_is_an_error_not_a_wrong_answer() {
        let sealed = sealed_tree(50);
        let summary = WheelSummary::build(
            sealed
                .leaves
                .iter()
                .flat_map(|l| l.entries.iter())
                .map(|t| (t.key, t.ts, 1)),
            4,
            usize::MAX,
        );
        let mut bytes = write_chunk_with_summary(&sealed, Some(&summary));
        // Flip a byte inside the summary body (just before the trailer).
        let i = bytes.len() - SUMMARY_TRAILER_LEN - 9;
        bytes[i] ^= 0xFF;
        assert!(ChunkReader::new(bytes.as_slice()).read_summary().is_err());
    }

    fn v2_opts() -> ChunkWriteOptions<'static> {
        ChunkWriteOptions {
            format_version: VERSION_V2,
            compression: true,
            measure: Some(&|t: &Tuple| t.payload.len() as u64),
        }
    }

    #[test]
    fn v2_roundtrip_matches_v1_exactly() {
        let sealed = sealed_tree(500);
        let v1 = write_chunk(&sealed);
        for compression in [false, true] {
            let opts = ChunkWriteOptions {
                compression,
                ..v2_opts()
            };
            let v2 = write_chunk_opts(&sealed, None, &opts);
            let r1 = ChunkReader::new(v1.as_slice());
            let r2 = ChunkReader::new(v2.as_slice());
            let i1 = r1.load_index().unwrap();
            let i2 = r2.load_index().unwrap();
            assert_eq!(i1.version, VERSION_V1);
            assert_eq!(i2.version, VERSION_V2);
            assert_eq!(i1.count, i2.count);
            assert_eq!(i1.separators, i2.separators);
            let p1 = r1.read_leaves(&i1, 0, i1.leaves.len() - 1).unwrap();
            let p2 = r2.read_leaves(&i2, 0, i2.leaves.len() - 1).unwrap();
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn v2_chunks_are_smaller() {
        let sealed = sealed_tree(2_000);
        let v1 = write_chunk(&sealed);
        let v2 = write_chunk_opts(&sealed, None, &v2_opts());
        assert!(
            v2.len() * 10 < v1.len() * 8,
            "v2 {} vs v1 {}: expected at least a 20% cut",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_footer_carries_bounds_and_summary_length() {
        let sealed = sealed_tree(300);
        let summary = WheelSummary::build(
            sealed
                .leaves
                .iter()
                .flat_map(|l| l.entries.iter())
                .map(|t| (t.key, t.ts, t.payload.len() as u64)),
            4,
            usize::MAX,
        );
        let bytes = write_chunk_opts(&sealed, Some(&summary), &v2_opts());
        let reader = ChunkReader::new(bytes.as_slice());
        let footer = reader.read_footer().unwrap().expect("v2 footer");
        // Measure is payload length: sealed_tree writes 8-byte payloads.
        assert_eq!(footer.measure_range, Some((8, 8)));
        assert!(footer.summary_len > 0);
        assert_eq!(reader.read_summary().unwrap().unwrap(), summary);
        // Per-leaf bounds landed in the directory too.
        let index = reader.load_index().unwrap();
        assert!(index
            .leaves
            .iter()
            .filter(|l| l.count > 0)
            .all(|l| l.measure_range == Some((8, 8))));
        // v1 chunks have no footer.
        let v1 = write_chunk(&sealed);
        assert!(ChunkReader::new(v1.as_slice())
            .read_footer()
            .unwrap()
            .is_none());
    }

    #[test]
    fn v2_without_summary_reports_none_not_corrupt() {
        let sealed = sealed_tree(100);
        let bytes = write_chunk_opts(&sealed, None, &v2_opts());
        assert!(ChunkReader::new(bytes.as_slice())
            .read_summary()
            .unwrap()
            .is_none());
    }

    #[test]
    fn v2_corrupt_footer_is_detected() {
        let sealed = sealed_tree(100);
        let bytes = write_chunk_opts(&sealed, None, &v2_opts());
        // Flip a byte inside the footer (the summary_len field): the CRC
        // must catch it.
        let mut bad = bytes.clone();
        let i = bad.len() - V2_FOOTER_LEN + 20;
        bad[i] ^= 0xFF;
        assert!(ChunkReader::new(bad.as_slice()).read_summary().is_err());
        // Truncating the footer is detected too.
        let cut = &bytes[..bytes.len() - 5];
        assert!(ChunkReader::new(cut).read_summary().is_err());
    }

    #[test]
    fn v1_magic_coincidence_in_data_fails_soft() {
        // A summary-less v1 chunk whose final 8 payload bytes equal the
        // summary magic must read as "no summary", not corrupt.
        let cfg = IndexConfig {
            leaf_capacity: 16,
            fanout: 4,
            ..IndexConfig::default()
        };
        let tree = TemplateBTree::new(KeyInterval::full(), cfg);
        let mut payload = vec![0u8; 16];
        // Tuple payload is the file suffix; make its last 16 bytes spell a
        // plausible-looking trailer: a length then the magic.
        payload[..8].copy_from_slice(&4u64.to_le_bytes());
        payload[8..].copy_from_slice(&SUMMARY_MAGIC.to_le_bytes());
        tree.insert(Tuple::new(1, 10, payload));
        let sealed = tree.seal().unwrap();
        let bytes = write_chunk(&sealed);
        assert_eq!(&bytes[bytes.len() - 8..], &SUMMARY_MAGIC.to_le_bytes());
        assert!(ChunkReader::new(bytes.as_slice())
            .read_summary()
            .unwrap()
            .is_none());
    }

    #[test]
    fn forged_directory_extents_are_typed_errors() {
        // Rebuild a chunk whose directory claims an overflowing extent:
        // rel_offset near u64::MAX so offset+len wraps. parse_index must
        // reject it rather than let read_leaves wrap.
        let sealed = sealed_tree(50);
        let bytes = write_chunk(&sealed);
        let index_len = u64::from_le_bytes(bytes[28..36].try_into().unwrap()) as usize;
        // First leaf entry sits after sep_count + seps + leaf_count.
        let reader = ChunkReader::new(bytes.as_slice());
        let parsed = reader.load_index().unwrap();
        let entry_off = HEADER_LEN + 4 + parsed.separators.len() * 8 + 4;
        let mut bad = bytes.clone();
        bad[entry_off + 4..entry_off + 12].copy_from_slice(&(u64::MAX - 8).to_le_bytes());
        // Re-stamp the index checksum so only the extent is "corrupt".
        let csum = codec::fnv1a(&bad[HEADER_LEN..HEADER_LEN + index_len]);
        bad[36..44].copy_from_slice(&csum.to_le_bytes());
        let err = ChunkReader::new(bad.as_slice()).load_index().unwrap_err();
        assert!(matches!(err, WwError::Corrupt { .. }), "got {err}");
    }

    #[test]
    fn forged_leaf_count_does_not_overallocate() {
        // A directory entry claiming u32::MAX tuples for a small page must
        // fail with a decode error after bounded allocation, not reserve
        // gigabytes. Drive decode_leaf_page directly.
        let sealed = sealed_tree(50);
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        let meta = &index.leaves[0];
        let page = &bytes[meta.offset as usize..(meta.offset + meta.len) as usize];
        assert!(decode_leaf_page(page, u32::MAX).is_err());
    }

    #[test]
    fn empty_leaves_are_handled() {
        // Seal a tree whose template has many leaves but data in few.
        let cfg = IndexConfig {
            leaf_capacity: 4,
            fanout: 4,
            ..IndexConfig::default()
        };
        let tree =
            TemplateBTree::with_separators(KeyInterval::full(), cfg, vec![100, 200, 300, 400]);
        tree.insert(Tuple::bare(150, 1)); // only leaf 1 populated
        let sealed = tree.seal().unwrap();
        let bytes = write_chunk(&sealed);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        assert_eq!(index.leaves.len(), 5);
        assert!(index.leaf_prunable(0, &TimeInterval::full()));
        assert!(!index.leaf_prunable(1, &TimeInterval::full()));
        let pages = reader.read_leaves(&index, 0, 4).unwrap();
        assert_eq!(pages.iter().map(Vec::len).sum::<usize>(), 1);
    }
}
