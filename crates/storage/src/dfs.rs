//! The simulated distributed file system (HDFS substitute).
//!
//! Chunks are stored as immutable files under a local root directory, but
//! the *distributed* aspects that Waterwheel's algorithms depend on are
//! modelled faithfully:
//!
//! * every chunk has `replication` replica nodes chosen by the shared
//!   [`Cluster`] (rendezvous hashing stands in for the HDFS block placer's
//!   "three random nodes", §IV-C);
//! * every file access pays the [`LatencyModel`] open cost — the 2–50 ms
//!   per-access delay the paper measures on HDFS (§VI-B) — with a discount
//!   for co-located (short-circuit) reads;
//! * reads are ranged, so a query server fetches the index block and only
//!   the needed leaf pages, exactly like positioned HDFS reads.

use crate::chunk::RangedRead;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use waterwheel_cluster::{Cluster, LatencyModel};
use waterwheel_core::{ChunkId, NodeId, Result, WwError};

/// Access counters, exposed for tests and the chunk-size experiments.
#[derive(Debug, Default)]
pub struct DfsStats {
    /// Number of file accesses (each charged one open latency).
    pub opens: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Accesses that hit the co-located fast path.
    pub local_opens: AtomicU64,
}

struct DfsInner {
    root: PathBuf,
    cluster: Cluster,
    replication: usize,
    latency: LatencyModel,
    /// Cached file lengths — immutable files, so lengths never change.
    lengths: Mutex<HashMap<ChunkId, u64>>,
    stats: DfsStats,
}

/// Handle to the simulated DFS; clones share state.
#[derive(Clone)]
pub struct SimDfs {
    inner: Arc<DfsInner>,
}

impl SimDfs {
    /// Creates (or reopens) a DFS rooted at `root`.
    pub fn new(
        root: impl Into<PathBuf>,
        cluster: Cluster,
        replication: usize,
        latency: LatencyModel,
    ) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self {
            inner: Arc::new(DfsInner {
                root,
                cluster,
                replication,
                latency,
                lengths: Mutex::new(HashMap::new()),
                stats: DfsStats::default(),
            }),
        })
    }

    /// A DFS with no latency model over a fresh temp-style directory —
    /// convenience for tests.
    pub fn ephemeral(root: impl Into<PathBuf>) -> Result<Self> {
        Self::new(root, Cluster::new(3), 3, LatencyModel::default())
    }

    fn path(&self, id: ChunkId) -> PathBuf {
        self.inner.root.join(format!("chunk-{}.ww", id.raw()))
    }

    /// The filesystem root (diagnostics).
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// Access statistics.
    pub fn stats(&self) -> &DfsStats {
        &self.inner.stats
    }

    /// The replica nodes of a chunk under the current cluster membership.
    pub fn replicas(&self, id: ChunkId) -> Vec<NodeId> {
        self.inner.cluster.replicas(id, self.inner.replication)
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.inner.replication
    }

    /// Writes an immutable chunk. Overwriting an existing chunk id is an
    /// error — chunks are write-once by design.
    pub fn write_chunk(&self, id: ChunkId, bytes: &[u8]) -> Result<()> {
        let path = self.path(id);
        if path.exists() {
            return Err(WwError::InvalidState(format!(
                "chunk {id} already exists — chunks are immutable"
            )));
        }
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        self.inner.lengths.lock().insert(id, bytes.len() as u64);
        Ok(())
    }

    /// Whether a chunk exists.
    pub fn exists(&self, id: ChunkId) -> bool {
        if self.inner.lengths.lock().contains_key(&id) {
            return true;
        }
        self.path(id).exists()
    }

    /// Deletes a chunk (retention/GC; not used by the core protocol).
    pub fn delete(&self, id: ChunkId) -> Result<()> {
        self.inner.lengths.lock().remove(&id);
        fs::remove_file(self.path(id)).map_err(Into::into)
    }

    /// Chunk file length in bytes.
    pub fn chunk_len(&self, id: ChunkId) -> Result<u64> {
        if let Some(len) = self.inner.lengths.lock().get(&id) {
            return Ok(*len);
        }
        let len = fs::metadata(self.path(id))
            .map_err(|_| WwError::not_found("chunk", id))?
            .len();
        self.inner.lengths.lock().insert(id, len);
        Ok(len)
    }

    /// Opens a read handle bound to the reader's node (for the co-location
    /// discount). Pass `None` for an off-cluster reader.
    pub fn open(&self, id: ChunkId, reader_node: Option<NodeId>) -> Result<DfsFile> {
        if !self.exists(id) {
            return Err(WwError::not_found("chunk", id));
        }
        let local = reader_node.is_some_and(|n| self.replicas(id).contains(&n));
        Ok(DfsFile {
            dfs: self.clone(),
            id,
            local,
        })
    }

    fn ranged_read(&self, id: ChunkId, offset: u64, len: u64, local: bool) -> Result<Vec<u8>> {
        // One access: charge the open latency (discounted when local).
        self.inner.stats.opens.fetch_add(1, Ordering::Relaxed);
        if local {
            self.inner.stats.local_opens.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.latency.charge(len as usize, local);
        let mut file =
            fs::File::open(self.path(id)).map_err(|_| WwError::not_found("chunk", id))?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)
            .map_err(|e| WwError::corrupt("chunk", format!("short read at {offset}+{len}: {e}")))?;
        self.inner
            .stats
            .bytes_read
            .fetch_add(len, Ordering::Relaxed);
        Ok(buf)
    }
}

/// A positioned-read handle over one chunk file.
pub struct DfsFile {
    dfs: SimDfs,
    id: ChunkId,
    local: bool,
}

impl DfsFile {
    /// Whether this handle gets the co-located (short-circuit) discount.
    pub fn is_local(&self) -> bool {
        self.local
    }

    /// The chunk this handle reads.
    pub fn chunk_id(&self) -> ChunkId {
        self.id
    }
}

impl RangedRead for DfsFile {
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.dfs.ranged_read(self.id, offset, len, self.local)
    }

    fn len(&self) -> Result<u64> {
        self.dfs.chunk_len(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::time::Instant;

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ww-dfs-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let dfs = SimDfs::ephemeral(tmp_root("roundtrip")).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        dfs.write_chunk(ChunkId(1), &payload).unwrap();
        assert!(dfs.exists(ChunkId(1)));
        assert_eq!(dfs.chunk_len(ChunkId(1)).unwrap(), 10_000);
        let file = dfs.open(ChunkId(1), None).unwrap();
        assert_eq!(file.read_range(0, 10_000).unwrap(), payload);
        assert_eq!(file.read_range(5_000, 16).unwrap(), &payload[5_000..5_016]);
    }

    #[test]
    fn chunks_are_write_once() {
        let dfs = SimDfs::ephemeral(tmp_root("write-once")).unwrap();
        dfs.write_chunk(ChunkId(2), b"abc").unwrap();
        assert!(dfs.write_chunk(ChunkId(2), b"xyz").is_err());
    }

    #[test]
    fn missing_chunk_errors() {
        let dfs = SimDfs::ephemeral(tmp_root("missing")).unwrap();
        assert!(!dfs.exists(ChunkId(9)));
        assert!(dfs.open(ChunkId(9), None).is_err());
        assert!(dfs.chunk_len(ChunkId(9)).is_err());
    }

    #[test]
    fn read_past_end_is_an_error() {
        let dfs = SimDfs::ephemeral(tmp_root("past-end")).unwrap();
        dfs.write_chunk(ChunkId(3), b"0123456789").unwrap();
        let file = dfs.open(ChunkId(3), None).unwrap();
        assert!(file.read_range(8, 10).is_err());
    }

    #[test]
    fn locality_detected_from_reader_node() {
        let cluster = Cluster::new(6);
        let dfs = SimDfs::new(
            tmp_root("locality"),
            cluster.clone(),
            3,
            LatencyModel::default(),
        )
        .unwrap();
        dfs.write_chunk(ChunkId(4), b"data").unwrap();
        let reps = dfs.replicas(ChunkId(4));
        assert_eq!(reps.len(), 3);
        let on = dfs.open(ChunkId(4), Some(reps[0])).unwrap();
        assert!(on.is_local());
        let off_node = cluster
            .alive_nodes()
            .into_iter()
            .find(|n| !reps.contains(n))
            .unwrap();
        let off = dfs.open(ChunkId(4), Some(off_node)).unwrap();
        assert!(!off.is_local());
    }

    #[test]
    fn open_latency_is_charged_per_access() {
        let latency = LatencyModel {
            open: std::time::Duration::from_millis(5),
            bandwidth: None,
            local_factor: 0.0,
        };
        let dfs = SimDfs::new(tmp_root("latency"), Cluster::new(3), 3, latency).unwrap();
        dfs.write_chunk(ChunkId(5), &vec![0u8; 1024]).unwrap();
        let file = dfs.open(ChunkId(5), None).unwrap();
        let t0 = Instant::now();
        for _ in 0..4 {
            file.read_range(0, 128).unwrap();
        }
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(dfs.stats().opens.load(Ordering::Relaxed), 4);
        // Local reads with local_factor 0 are free.
        let reps = dfs.replicas(ChunkId(5));
        let local = dfs.open(ChunkId(5), Some(reps[0])).unwrap();
        let t1 = Instant::now();
        local.read_range(0, 128).unwrap();
        assert!(t1.elapsed() < std::time::Duration::from_millis(5));
        assert_eq!(dfs.stats().local_opens.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn delete_removes_chunk() {
        let dfs = SimDfs::ephemeral(tmp_root("delete")).unwrap();
        dfs.write_chunk(ChunkId(6), b"bye").unwrap();
        dfs.delete(ChunkId(6)).unwrap();
        assert!(!dfs.exists(ChunkId(6)));
    }
}
