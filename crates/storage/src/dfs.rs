//! The simulated distributed file system (HDFS substitute).
//!
//! Chunks are stored as immutable files under a local root directory, but
//! the *distributed* aspects that Waterwheel's algorithms depend on are
//! modelled faithfully:
//!
//! * every chunk has `replication` replica nodes chosen by the shared
//!   [`Cluster`] (rendezvous hashing stands in for the HDFS block placer's
//!   "three random nodes", §IV-C);
//! * every file access pays the [`LatencyModel`] open cost — the 2–50 ms
//!   per-access delay the paper measures on HDFS (§VI-B) — with a discount
//!   for co-located (short-circuit) reads;
//! * reads are ranged, so a query server fetches the index block and only
//!   the needed leaf pages, exactly like positioned HDFS reads.
//!
//! Durability (paper §V): chunk files are sealed through the shared WAL
//! layer's atomic-write path (unique temp file + rename + optional fsync),
//! and every file carries a 24-byte torn-write-detecting footer:
//!
//! ```text
//! [body_len u64][fnv1a(body) u64][footer magic u64]
//! ```
//!
//! A file without a valid footer — truncated, half-written by a crashed
//! sealer, or bit-rotted — is reported as a typed
//! [`WwError::Corrupt`] error, never a panic and never a silently short
//! read. The first open of each chunk verifies the whole-body checksum;
//! subsequent opens trust the cached verdict (files are immutable).
//! All length accounting ([`SimDfs::chunk_len`], [`DfsFile::len`]) refers
//! to the *body*, so the chunk format's own end-of-file trailers keep
//! working unchanged.

use crate::chunk::RangedRead;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use waterwheel_cluster::{Cluster, LatencyModel};
use waterwheel_core::codec::fnv1a;
use waterwheel_core::{ChunkId, NodeId, Result, WwError};
use waterwheel_wal::{sweep_tmp, write_atomic, FsyncPolicy, WalStats};

/// Chunk-file footer magic (`WWCHKFT1`, little-endian).
pub const FOOTER_MAGIC: u64 = u64::from_le_bytes(*b"WWCHKFT1");
/// Footer length: body length (8) + body checksum (8) + magic (8).
pub const FOOTER_LEN: u64 = 24;

/// Access counters, exposed for tests and the chunk-size experiments.
#[derive(Debug, Default)]
pub struct DfsStats {
    /// Number of file accesses (each charged one open latency).
    pub opens: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Accesses that hit the co-located fast path.
    pub local_opens: AtomicU64,
    /// Whole-body checksum verifications performed (first open per chunk).
    pub integrity_verifies: AtomicU64,
    /// Chunks whose replica set was repaired after a node loss
    /// ([`SimDfs::re_replicate`]).
    pub re_replications: AtomicU64,
}

struct DfsInner {
    root: PathBuf,
    cluster: Cluster,
    replication: usize,
    latency: LatencyModel,
    policy: FsyncPolicy,
    /// Replica sets pinned at write time. HDFS semantics: placement is
    /// decided when the block is written and only changes when the
    /// namenode re-replicates after a datanode loss — not implicitly
    /// whenever cluster membership moves.
    pinned: Mutex<HashMap<ChunkId, Vec<NodeId>>>,
    /// Cached *body* lengths — immutable files, so lengths never change.
    lengths: Mutex<HashMap<ChunkId, u64>>,
    /// Chunks whose whole-body checksum has been verified this process.
    verified: Mutex<HashSet<ChunkId>>,
    stats: DfsStats,
    /// Durability counters (fsyncs issued, torn/corrupt files detected).
    wal: Arc<WalStats>,
}

/// Handle to the simulated DFS; clones share state.
#[derive(Clone)]
pub struct SimDfs {
    inner: Arc<DfsInner>,
}

impl SimDfs {
    /// Creates (or reopens) a DFS rooted at `root`. Stray temp files left
    /// by sealers that crashed before their atomic rename are swept away.
    pub fn new(
        root: impl Into<PathBuf>,
        cluster: Cluster,
        replication: usize,
        latency: LatencyModel,
    ) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        sweep_tmp(&root)?;
        Ok(Self {
            inner: Arc::new(DfsInner {
                root,
                cluster,
                replication,
                latency,
                policy: FsyncPolicy::Never,
                pinned: Mutex::new(HashMap::new()),
                lengths: Mutex::new(HashMap::new()),
                verified: Mutex::new(HashSet::new()),
                stats: DfsStats::default(),
                wal: WalStats::shared(),
            }),
        })
    }

    /// Sets the fsync policy for chunk sealing (builder style; call before
    /// the handle is cloned/shared).
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("with_fsync must be called before the DFS handle is shared")
            .policy = policy;
        self
    }

    /// A DFS with no latency model over a fresh temp-style directory —
    /// convenience for tests.
    pub fn ephemeral(root: impl Into<PathBuf>) -> Result<Self> {
        Self::new(root, Cluster::new(3), 3, LatencyModel::default())
    }

    fn path(&self, id: ChunkId) -> PathBuf {
        self.inner.root.join(format!("chunk-{}.ww", id.raw()))
    }

    /// The filesystem root (diagnostics).
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// Access statistics.
    pub fn stats(&self) -> &DfsStats {
        &self.inner.stats
    }

    /// Durability counters (fsyncs, torn/corrupt chunk files detected).
    pub fn wal_stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.inner.wal)
    }

    /// The replica nodes of a chunk: the set pinned when the chunk was
    /// written (and later repaired by [`SimDfs::re_replicate`]), or — for
    /// chunks sealed by an earlier process, whose pins did not survive
    /// reopen — the deterministic rendezvous placement under the current
    /// membership, which reproduces the original write-time choice.
    pub fn replicas(&self, id: ChunkId) -> Vec<NodeId> {
        if let Some(pinned) = self.inner.pinned.lock().get(&id) {
            return pinned.clone();
        }
        self.inner.cluster.replicas(id, self.inner.replication)
    }

    /// Repairs the replica sets of every pinned chunk that lived on
    /// `dead`, replacing it with the best surviving node by rendezvous
    /// rank (call after `Cluster::fail_node(dead)`, so the placement no
    /// longer offers the lost node). Returns the number of chunks
    /// repaired — the work a namenode schedules when a datanode's
    /// heartbeat lease lapses.
    pub fn re_replicate(&self, dead: NodeId) -> usize {
        let mut pinned = self.inner.pinned.lock();
        let mut repaired = 0usize;
        for (id, set) in pinned.iter_mut() {
            if !set.contains(&dead) {
                continue;
            }
            set.retain(|n| *n != dead);
            // Rendezvous stability keeps the survivors in the fresh
            // placement; whatever it adds is the HRW-best replacement.
            for candidate in self.inner.cluster.replicas(*id, self.inner.replication) {
                if set.len() >= self.inner.replication {
                    break;
                }
                if !set.contains(&candidate) {
                    set.push(candidate);
                }
            }
            repaired += 1;
        }
        self.inner
            .stats
            .re_replications
            .fetch_add(repaired as u64, Ordering::Relaxed);
        repaired
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.inner.replication
    }

    /// Writes an immutable chunk: body + torn-write footer are committed
    /// via unique temp file + atomic rename (fsynced per policy), so a
    /// crash mid-write can never leave a partially visible chunk.
    /// Overwriting an existing chunk id is an error — chunks are
    /// write-once by design.
    pub fn write_chunk(&self, id: ChunkId, bytes: &[u8]) -> Result<()> {
        let path = self.path(id);
        if path.exists() {
            return Err(WwError::InvalidState(format!(
                "chunk {id} already exists — chunks are immutable"
            )));
        }
        let mut framed = Vec::with_capacity(bytes.len() + FOOTER_LEN as usize);
        framed.extend_from_slice(bytes);
        framed.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        framed.extend_from_slice(&fnv1a(bytes).to_le_bytes());
        framed.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        write_atomic(&path, &framed, self.inner.policy, &self.inner.wal)?;
        // Pin the replica placement chosen at write time (HDFS block
        // report semantics): later membership changes do not silently
        // move the chunk — only `re_replicate` does.
        let placed = self.inner.cluster.replicas(id, self.inner.replication);
        self.inner.pinned.lock().insert(id, placed);
        self.inner.lengths.lock().insert(id, bytes.len() as u64);
        self.inner.verified.lock().insert(id);
        Ok(())
    }

    /// Whether a chunk exists.
    pub fn exists(&self, id: ChunkId) -> bool {
        if self.inner.lengths.lock().contains_key(&id) {
            return true;
        }
        self.path(id).exists()
    }

    /// Deletes a chunk (retention/GC; not used by the core protocol).
    pub fn delete(&self, id: ChunkId) -> Result<()> {
        self.inner.pinned.lock().remove(&id);
        self.inner.lengths.lock().remove(&id);
        self.inner.verified.lock().remove(&id);
        fs::remove_file(self.path(id)).map_err(Into::into)
    }

    /// Reads and validates a chunk's footer, returning
    /// `(body_len, body_crc)`. Any structural damage — file shorter than
    /// a footer, wrong magic, a body length that disagrees with the file
    /// size — is a torn or corrupt seal, surfaced as a typed error.
    fn read_footer(&self, id: ChunkId) -> Result<(u64, u64)> {
        let path = self.path(id);
        let file_len = fs::metadata(&path)
            .map_err(|_| WwError::not_found("chunk", id))?
            .len();
        let damaged = |detail: String| {
            self.inner.wal.torn.fetch_add(1, Ordering::Relaxed);
            WwError::corrupt("chunk file", detail)
        };
        if file_len < FOOTER_LEN {
            return Err(damaged(format!(
                "chunk {id}: {file_len} bytes is shorter than a footer"
            )));
        }
        let mut file = fs::File::open(&path)?;
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64)))?;
        let mut footer = [0u8; FOOTER_LEN as usize];
        file.read_exact(&mut footer)?;
        let body_len = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let crc = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let magic = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        if magic != FOOTER_MAGIC {
            return Err(damaged(format!(
                "chunk {id}: bad footer magic {magic:#018x}"
            )));
        }
        if body_len != file_len - FOOTER_LEN {
            return Err(damaged(format!(
                "chunk {id}: footer claims {body_len} body bytes, file holds {}",
                file_len - FOOTER_LEN
            )));
        }
        Ok((body_len, crc))
    }

    /// Chunk *body* length in bytes (the sealed footer is excluded).
    pub fn chunk_len(&self, id: ChunkId) -> Result<u64> {
        if let Some(len) = self.inner.lengths.lock().get(&id) {
            return Ok(*len);
        }
        let (body_len, _) = self.read_footer(id)?;
        self.inner.lengths.lock().insert(id, body_len);
        Ok(body_len)
    }

    /// Verifies the whole-body checksum once per chunk per process
    /// (immutable files make the cached verdict sound).
    fn verify_once(&self, id: ChunkId) -> Result<()> {
        if self.inner.verified.lock().contains(&id) {
            return Ok(());
        }
        let (body_len, crc) = self.read_footer(id)?;
        let bytes = fs::read(self.path(id))?;
        // read_footer proved bytes.len() == body_len + FOOTER_LEN.
        let body = &bytes[..body_len as usize];
        self.inner
            .stats
            .integrity_verifies
            .fetch_add(1, Ordering::Relaxed);
        if fnv1a(body) != crc {
            self.inner.wal.torn.fetch_add(1, Ordering::Relaxed);
            return Err(WwError::corrupt(
                "chunk file",
                format!("chunk {id}: body checksum mismatch"),
            ));
        }
        self.inner.lengths.lock().insert(id, body_len);
        self.inner.verified.lock().insert(id);
        Ok(())
    }

    /// Opens a read handle bound to the reader's node (for the co-location
    /// discount). Pass `None` for an off-cluster reader. The first open of
    /// a chunk verifies its checksummed footer end to end.
    pub fn open(&self, id: ChunkId, reader_node: Option<NodeId>) -> Result<DfsFile> {
        if !self.exists(id) {
            return Err(WwError::not_found("chunk", id));
        }
        self.verify_once(id)?;
        let local = reader_node.is_some_and(|n| self.replicas(id).contains(&n));
        Ok(DfsFile {
            dfs: self.clone(),
            id,
            local,
        })
    }

    fn ranged_read(&self, id: ChunkId, offset: u64, len: u64, local: bool) -> Result<Vec<u8>> {
        // Reads are bounded to the body: past-the-end reads must fail
        // rather than silently hand back footer bytes.
        let body_len = self.chunk_len(id)?;
        if offset.checked_add(len).is_none_or(|end| end > body_len) {
            return Err(WwError::corrupt(
                "chunk",
                format!("read {offset}+{len} past body end {body_len}"),
            ));
        }
        // One access: charge the open latency (discounted when local).
        self.inner.stats.opens.fetch_add(1, Ordering::Relaxed);
        if local {
            self.inner.stats.local_opens.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.latency.charge(len as usize, local);
        let mut file =
            fs::File::open(self.path(id)).map_err(|_| WwError::not_found("chunk", id))?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)
            .map_err(|e| WwError::corrupt("chunk", format!("short read at {offset}+{len}: {e}")))?;
        self.inner
            .stats
            .bytes_read
            .fetch_add(len, Ordering::Relaxed);
        Ok(buf)
    }
}

/// A positioned-read handle over one chunk file.
pub struct DfsFile {
    dfs: SimDfs,
    id: ChunkId,
    local: bool,
}

impl DfsFile {
    /// Whether this handle gets the co-located (short-circuit) discount.
    pub fn is_local(&self) -> bool {
        self.local
    }

    /// The chunk this handle reads.
    pub fn chunk_id(&self) -> ChunkId {
        self.id
    }
}

impl RangedRead for DfsFile {
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.dfs.ranged_read(self.id, offset, len, self.local)
    }

    fn len(&self) -> Result<u64> {
        self.dfs.chunk_len(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::time::Instant;

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ww-dfs-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let dfs = SimDfs::ephemeral(tmp_root("roundtrip")).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        dfs.write_chunk(ChunkId(1), &payload).unwrap();
        assert!(dfs.exists(ChunkId(1)));
        assert_eq!(dfs.chunk_len(ChunkId(1)).unwrap(), 10_000);
        let file = dfs.open(ChunkId(1), None).unwrap();
        assert_eq!(file.read_range(0, 10_000).unwrap(), payload);
        assert_eq!(file.read_range(5_000, 16).unwrap(), &payload[5_000..5_016]);
    }

    #[test]
    fn chunks_are_write_once() {
        let dfs = SimDfs::ephemeral(tmp_root("write-once")).unwrap();
        dfs.write_chunk(ChunkId(2), b"abc").unwrap();
        assert!(dfs.write_chunk(ChunkId(2), b"xyz").is_err());
    }

    #[test]
    fn missing_chunk_errors() {
        let dfs = SimDfs::ephemeral(tmp_root("missing")).unwrap();
        assert!(!dfs.exists(ChunkId(9)));
        assert!(dfs.open(ChunkId(9), None).is_err());
        assert!(dfs.chunk_len(ChunkId(9)).is_err());
    }

    #[test]
    fn read_past_end_is_an_error() {
        let dfs = SimDfs::ephemeral(tmp_root("past-end")).unwrap();
        dfs.write_chunk(ChunkId(3), b"0123456789").unwrap();
        let file = dfs.open(ChunkId(3), None).unwrap();
        // The footer sits past the body; a ranged read must never leak it.
        assert!(file.read_range(8, 10).is_err());
        assert!(file.read_range(u64::MAX, 2).is_err());
    }

    #[test]
    fn reopened_dfs_reads_body_length_from_footer() {
        let root = tmp_root("reopen");
        {
            let dfs = SimDfs::ephemeral(&root).unwrap();
            dfs.write_chunk(ChunkId(11), &[7u8; 4096]).unwrap();
        }
        // A fresh process has no cached lengths: body length and contents
        // must come from the sealed footer.
        let dfs = SimDfs::ephemeral(&root).unwrap();
        assert_eq!(dfs.chunk_len(ChunkId(11)).unwrap(), 4096);
        let file = dfs.open(ChunkId(11), None).unwrap();
        assert_eq!(file.len().unwrap(), 4096);
        assert_eq!(file.read_range(0, 4096).unwrap(), vec![7u8; 4096]);
        assert_eq!(dfs.stats().integrity_verifies.load(Ordering::Relaxed), 1);
        // Second open trusts the cached verification.
        dfs.open(ChunkId(11), None).unwrap();
        assert_eq!(dfs.stats().integrity_verifies.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn truncated_chunk_is_detected_as_torn() {
        let root = tmp_root("torn");
        {
            let dfs = SimDfs::ephemeral(&root).unwrap();
            dfs.write_chunk(ChunkId(12), &[1u8; 1000]).unwrap();
        }
        let path = root.join("chunk-12.ww");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let dfs = SimDfs::ephemeral(&root).unwrap();
        let err = dfs
            .open(ChunkId(12), None)
            .err()
            .expect("torn seal detected");
        assert!(matches!(err, WwError::Corrupt { .. }), "{err}");
        assert!(dfs.wal_stats().torn.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn bit_rot_fails_the_body_checksum() {
        let root = tmp_root("bitrot");
        {
            let dfs = SimDfs::ephemeral(&root).unwrap();
            dfs.write_chunk(ChunkId(13), &[9u8; 512]).unwrap();
        }
        let path = root.join("chunk-13.ww");
        let mut bytes = fs::read(&path).unwrap();
        bytes[100] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let dfs = SimDfs::ephemeral(&root).unwrap();
        // Footer is structurally fine, so the length is still readable…
        assert_eq!(dfs.chunk_len(ChunkId(13)).unwrap(), 512);
        // …but the first open verifies the body and must reject it.
        let err = dfs.open(ChunkId(13), None).err().expect("bit rot detected");
        assert!(matches!(err, WwError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn stray_temp_files_are_swept_on_open() {
        let root = tmp_root("sweep");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(".chunk-5.ww.123.0.tmp"), b"half a chunk").unwrap();
        let dfs = SimDfs::ephemeral(&root).unwrap();
        assert!(!root.join(".chunk-5.ww.123.0.tmp").exists());
        assert!(!dfs.exists(ChunkId(5)));
    }

    #[test]
    fn fsync_policy_is_counted() {
        let root = tmp_root("fsync");
        let dfs = SimDfs::ephemeral(&root)
            .unwrap()
            .with_fsync(FsyncPolicy::Always);
        dfs.write_chunk(ChunkId(14), b"durable").unwrap();
        // One for the temp file, one for the directory rename.
        assert_eq!(dfs.wal_stats().fsyncs.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn locality_detected_from_reader_node() {
        let cluster = Cluster::new(6);
        let dfs = SimDfs::new(
            tmp_root("locality"),
            cluster.clone(),
            3,
            LatencyModel::default(),
        )
        .unwrap();
        dfs.write_chunk(ChunkId(4), b"data").unwrap();
        let reps = dfs.replicas(ChunkId(4));
        assert_eq!(reps.len(), 3);
        let on = dfs.open(ChunkId(4), Some(reps[0])).unwrap();
        assert!(on.is_local());
        let off_node = cluster
            .alive_nodes()
            .into_iter()
            .find(|n| !reps.contains(n))
            .unwrap();
        let off = dfs.open(ChunkId(4), Some(off_node)).unwrap();
        assert!(!off.is_local());
    }

    #[test]
    fn open_latency_is_charged_per_access() {
        let latency = LatencyModel {
            open: std::time::Duration::from_millis(5),
            bandwidth: None,
            local_factor: 0.0,
        };
        let dfs = SimDfs::new(tmp_root("latency"), Cluster::new(3), 3, latency).unwrap();
        dfs.write_chunk(ChunkId(5), &vec![0u8; 1024]).unwrap();
        let file = dfs.open(ChunkId(5), None).unwrap();
        let t0 = Instant::now();
        for _ in 0..4 {
            file.read_range(0, 128).unwrap();
        }
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(dfs.stats().opens.load(Ordering::Relaxed), 4);
        // Local reads with local_factor 0 are free.
        let reps = dfs.replicas(ChunkId(5));
        let local = dfs.open(ChunkId(5), Some(reps[0])).unwrap();
        let t1 = Instant::now();
        local.read_range(0, 128).unwrap();
        assert!(t1.elapsed() < std::time::Duration::from_millis(5));
        assert_eq!(dfs.stats().local_opens.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn write_time_replicas_are_pinned_and_repairable() {
        let cluster = Cluster::new(8);
        let dfs = SimDfs::new(
            tmp_root("re-replicate"),
            cluster.clone(),
            3,
            LatencyModel::default(),
        )
        .unwrap();
        for i in 0..40u64 {
            dfs.write_chunk(ChunkId(i), &[i as u8; 64]).unwrap();
        }
        let before: Vec<Vec<NodeId>> = (0..40).map(|i| dfs.replicas(ChunkId(i))).collect();
        let dead = before[0][0];
        // A membership change alone does NOT move pinned chunks: reads
        // keep failing over within the write-time set.
        cluster.fail_node(dead).unwrap();
        for (i, old) in before.iter().enumerate() {
            assert_eq!(&dfs.replicas(ChunkId(i as u64)), old);
        }
        // Re-replication replaces exactly the lost node, keeps survivors.
        let affected = before.iter().filter(|set| set.contains(&dead)).count();
        assert_eq!(dfs.re_replicate(dead), affected);
        assert!(affected > 0);
        for (i, old) in before.iter().enumerate() {
            let new = dfs.replicas(ChunkId(i as u64));
            assert_eq!(new.len(), 3);
            assert!(!new.contains(&dead), "chunk {i} still on the dead node");
            for n in old.iter().filter(|n| **n != dead) {
                assert!(new.contains(n), "chunk {i}: survivor {n} moved needlessly");
            }
        }
        assert_eq!(
            dfs.stats().re_replications.load(Ordering::Relaxed),
            affected as u64
        );
        // Repairing the same loss again is a no-op.
        assert_eq!(dfs.re_replicate(dead), 0);
    }

    #[test]
    fn delete_removes_chunk() {
        let dfs = SimDfs::ephemeral(tmp_root("delete")).unwrap();
        dfs.write_chunk(ChunkId(6), b"bye").unwrap();
        dfs.delete(ChunkId(6)).unwrap();
        assert!(!dfs.exists(ChunkId(6)));
    }
}
