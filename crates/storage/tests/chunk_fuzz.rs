//! Corruption fuzzing for the chunk read path: arbitrary byte flips,
//! splices, and truncations of valid v1 and v2 chunk images must never
//! panic or over-allocate — every read either succeeds or fails with a
//! typed [`WwError::Corrupt`]-class error.
//!
//! Same deterministic-generator idiom as `crates/net/tests/
//! reactor_framing.rs`: proptest hands each case a seed, a SplitMix64
//! `Gen` derives the chunk shape, the corruption sites, and the queried
//! intervals from it.

use proptest::prelude::*;
use waterwheel_agg::WheelSummary;
use waterwheel_core::{KeyInterval, Tuple, WwError};
use waterwheel_index::{IndexConfig, SealedTree, TemplateBTree, TupleIndex};
use waterwheel_storage::{ChunkReader, ChunkWriteOptions, VERSION_V1, VERSION_V2};

/// Deterministic per-case generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn sealed_tree(g: &mut Gen) -> SealedTree {
    let cfg = IndexConfig {
        leaf_capacity: 16,
        fanout: 4,
        skew_check_interval: 64,
        ..IndexConfig::default()
    };
    let tree = TemplateBTree::new(KeyInterval::full(), cfg);
    let n = 50 + g.below(300);
    for _ in 0..n {
        let len = g.below(24) as usize;
        let payload: Vec<u8> = (0..len).map(|_| g.next() as u8).collect();
        tree.insert(Tuple::new(g.below(10_000), g.below(100_000), payload));
    }
    tree.seal().expect("non-empty tree")
}

/// A valid chunk image whose format, compression, measure bounds, and
/// summary presence all vary with the seed.
fn valid_chunk(g: &mut Gen) -> Vec<u8> {
    let sealed = sealed_tree(g);
    let version = if g.below(2) == 0 {
        VERSION_V1
    } else {
        VERSION_V2
    };
    let summary = if g.below(2) == 0 {
        let s = WheelSummary::build(
            sealed
                .leaves
                .iter()
                .flat_map(|l| l.entries.iter())
                .map(|t| (t.key, t.ts, t.payload.len() as u64)),
            4,
            256,
        );
        (!s.is_empty()).then_some(s)
    } else {
        None
    };
    let measure = |t: &Tuple| t.payload.len() as u64;
    waterwheel_storage::write_chunk_opts(
        &sealed,
        summary.as_ref(),
        &ChunkWriteOptions {
            format_version: version,
            compression: g.below(2) == 0,
            measure: (g.below(2) == 0).then_some(&measure as &(dyn Fn(&Tuple) -> u64 + Sync)),
        },
    )
}

/// Applies one of: byte flips, a truncation, a random splice, or a
/// hostile extension — always at seed-chosen sites.
fn corrupt(g: &mut Gen, bytes: &mut Vec<u8>) {
    match g.below(4) {
        0 => {
            // Flip 1..=8 bytes anywhere (header, directory, pages, footer).
            for _ in 0..=g.below(8) {
                let i = g.below(bytes.len() as u64) as usize;
                bytes[i] ^= (1 + g.below(255)) as u8;
            }
        }
        1 => {
            // Truncate to an arbitrary prefix (including zero).
            bytes.truncate(g.below(bytes.len() as u64 + 1) as usize);
        }
        2 => {
            // Splice a run of random bytes over a random window.
            let start = g.below(bytes.len() as u64) as usize;
            let end = (start + 1 + g.below(64) as usize).min(bytes.len());
            for b in &mut bytes[start..end] {
                *b = g.next() as u8;
            }
        }
        _ => {
            // Append garbage: trailing-length heuristics must not walk
            // off into it or allocate from it.
            let extra = 1 + g.below(512);
            for _ in 0..extra {
                bytes.push(g.next() as u8);
            }
        }
    }
}

/// Every error the corrupted read path may legally produce. Anything else
/// (or a panic, or an abort from an oversized allocation) fails the test.
fn is_typed_decode_error(e: &WwError) -> bool {
    matches!(e, WwError::Corrupt { .. })
}

/// Drives the full read surface over a (possibly corrupt) image.
fn exercise(g: &mut Gen, bytes: &[u8]) -> Result<(), TestCaseError> {
    let reader = ChunkReader::new(bytes);
    match reader.load_index() {
        Ok(index) => {
            if !index.leaves.is_empty() {
                let lo = g.below(index.leaves.len() as u64) as usize;
                let hi = lo + g.below((index.leaves.len() - lo) as u64) as usize;
                if let Err(e) = reader.read_leaves(&index, lo, hi) {
                    prop_assert!(is_typed_decode_error(&e), "read_leaves: {e}");
                }
                if let Err(e) = reader.read_leaf_pages(&index, lo, hi) {
                    prop_assert!(is_typed_decode_error(&e), "read_leaf_pages: {e}");
                }
            }
        }
        Err(e) => prop_assert!(is_typed_decode_error(&e), "load_index: {e}"),
    }
    if let Err(e) = reader.read_summary() {
        prop_assert!(is_typed_decode_error(&e), "read_summary: {e}");
    }
    if let Err(e) = reader.read_footer() {
        prop_assert!(is_typed_decode_error(&e), "read_footer: {e}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Uncorrupted chunks of every shape decode fully — the harness's own
    /// sanity check, so corruption failures below can't hide a broken
    /// generator.
    #[test]
    fn valid_chunks_decode_cleanly(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let bytes = valid_chunk(&mut g);
        let reader = ChunkReader::new(bytes.as_slice());
        let index = reader.load_index().unwrap();
        let n: usize = reader
            .read_leaves(&index, 0, index.leaves.len() - 1)
            .unwrap()
            .into_iter()
            .map(|p| p.len())
            .sum();
        prop_assert_eq!(n as u64, index.count);
        reader.read_summary().unwrap();
        reader.read_footer().unwrap();
    }

    /// Corrupted chunks never panic and never produce an untyped error.
    #[test]
    fn corrupted_chunks_fail_closed(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let mut bytes = valid_chunk(&mut g);
        corrupt(&mut g, &mut bytes);
        exercise(&mut g, &bytes)?;
    }

    /// Pure garbage (no valid prefix at all) is rejected just as safely.
    #[test]
    fn random_bytes_fail_closed(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let len = g.below(4_096) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| g.next() as u8).collect();
        exercise(&mut g, &bytes)?;
    }
}
