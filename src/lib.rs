//! # Waterwheel
//!
//! A Rust reproduction of **"Waterwheel: Realtime Indexing and Temporal
//! Range Query Processing over Massive Data Streams"** (Wang et al.,
//! ICDE 2018): a distributed stream store that ingests millions of tuples
//! per second while answering ad-hoc queries constrained on *both* a key
//! range and a temporal range in milliseconds.
//!
//! ## Quickstart
//!
//! ```no_run
//! use waterwheel::prelude::*;
//!
//! let ww = Waterwheel::builder("/tmp/waterwheel-data").build().unwrap();
//! ww.insert(Tuple::new(0x0A44_4900, 1_720_000_000_000, &b"packet"[..]))
//!     .unwrap();
//! ww.drain().unwrap();
//! let result = ww
//!     .query(&Query::range(
//!         KeyInterval::new(0x0A44_0000, 0x0A44_FFFF), // 10.68.0.0/16
//!         TimeInterval::new(1_719_999_700_000, 1_720_000_000_000), // last 5 min
//!     ))
//!     .unwrap();
//! println!("{} packets", result.tuples.len());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | data model: tuples, intervals, regions, queries, z-order |
//! | [`agg`] | hierarchical aggregate wheel + sealed chunk summaries (§4b) |
//! | [`index`] | template B+ tree (§III-B/C) + baseline trees |
//! | [`mq`] | replayable partitioned log (Kafka substitute, §V) |
//! | [`storage`] | chunk format, simulated DFS, LRU block cache (§III-A, §IV-B) |
//! | [`meta`] | R-tree, partition schema, metadata service (§II-B, §IV-A) |
//! | [`cluster`] | simulated node topology, replica placement (§IV-C) |
//! | [`net`] | typed RPC envelopes, wire codec, in-proc + TCP transports |
//! | [`server`] | dispatchers, indexing/query servers, LADA, coordinator |
//! | [`node`] | multi-process node runner: roles over TCP (`waterwheel-node`) |
//! | [`baselines`] | HBase-like LSM store, Druid-like time store (§VI-D) |
//! | [`workloads`] | deterministic T-Drive / Network / synthetic generators |
//!
//! See `DESIGN.md` for the substitution inventory and `EXPERIMENTS.md` for
//! the paper-vs-measured results of every table and figure.

pub use waterwheel_agg as agg;
pub use waterwheel_baselines as baselines;
pub use waterwheel_cluster as cluster;
pub use waterwheel_core as core;
pub use waterwheel_index as index;
pub use waterwheel_meta as meta;
pub use waterwheel_mq as mq;
pub use waterwheel_net as net;
pub use waterwheel_node as node;
pub use waterwheel_server as server;
pub use waterwheel_storage as storage;
pub use waterwheel_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use waterwheel_agg::AggregateAnswer;
    pub use waterwheel_core::{
        AggregateKind, AggregateQuery, Key, KeyInterval, Query, QueryResult, Region, SystemConfig,
        TimeInterval, Timestamp, Tuple,
    };
    pub use waterwheel_server::{DispatchPolicy, Waterwheel, WaterwheelBuilder};
}
